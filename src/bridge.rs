//! Conversion between the routing layer ([`muerp_core`]) and the
//! physical-layer simulator ([`qnet_sim`]).
//!
//! A routing [`Solution`] is an analytic object; converting it to a
//! [`RoutingPlan`] lets the Monte-Carlo engine *execute* it and check
//! that the measured slot success rate converges to the solution's
//! claimed Eq. 2 rate — the end-to-end validation loop used by the
//! integration tests and the `montecarlo_validation` example.

use muerp_core::model::QuantumNetwork;
use muerp_core::solver::{Solution, SolutionStyle};
use qnet_sim::plan::{ChannelSpec, RoutingPlan};
use qnet_sim::SimPhysics;

/// Converts a routing solution into an executable simulation plan.
///
/// Node ids become plain indices; fiber lengths are read back from the
/// network's edges.
pub fn solution_to_plan(net: &QuantumNetwork, solution: &Solution) -> RoutingPlan {
    let channels: Vec<ChannelSpec> = solution
        .channels
        .iter()
        .map(|c| {
            let nodes: Vec<usize> = c.path.nodes.iter().map(|n| n.index()).collect();
            let lengths: Vec<f64> = c.path.edges.iter().map(|&e| net.length(e)).collect();
            let is_switch: Vec<bool> = c
                .path
                .nodes
                .iter()
                .map(|&n| net.kind(n).is_switch())
                .collect();
            ChannelSpec::new(nodes, lengths, &is_switch)
        })
        .collect();
    match solution.style {
        SolutionStyle::BsmTree => RoutingPlan::tree(channels),
        SolutionStyle::FusionStar { center, .. } => {
            RoutingPlan::fusion_star(channels, center.index(), net.kind(center).is_switch())
        }
    }
}

/// The simulator physics matching a network's parameters (power-law
/// fusion model, i.e. `q^(n−1)`, matching
/// [`muerp_core::algorithms::baselines::FusionSuccess::PowerLaw`]).
pub fn physics_of(net: &QuantumNetwork) -> SimPhysics {
    SimPhysics {
        swap_success: net.physics().swap_success,
        attenuation: net.physics().attenuation,
        fusion_success: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::prelude::*;

    #[test]
    fn tree_solution_roundtrips_analytic_rate() {
        let net = NetworkSpec::paper_default().build(21);
        let sol = PrimBased::default().solve(&net).expect("feasible");
        let plan = solution_to_plan(&net, &sol);
        let physics = physics_of(&net);
        let analytic = plan.analytic_rate(physics.swap_success, physics.attenuation, None);
        assert!(
            (analytic - sol.rate.value()).abs() < 1e-9 * analytic,
            "plan {analytic} vs solution {}",
            sol.rate.value()
        );
        assert_eq!(plan.users().len(), net.user_count());
    }

    #[test]
    fn fusion_solution_roundtrips_analytic_rate() {
        let net = NetworkSpec::paper_default().build(22);
        let Ok(sol) = NFusion::default().solve(&net) else {
            return;
        };
        let plan = solution_to_plan(&net, &sol);
        let physics = physics_of(&net);
        let analytic = plan.analytic_rate(physics.swap_success, physics.attenuation, None);
        assert!(
            (analytic - sol.rate.value()).abs() < 1e-9 * analytic,
            "plan {analytic} vs solution {}",
            sol.rate.value()
        );
    }
}
