//! Facade crate for the MUERP reproduction (ICDCS 2024).
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`graph`] — graph substrate ([`qnet_graph`])
//! * [`topology`] — random network generators ([`qnet_topology`])
//! * [`sim`] — Monte-Carlo physical-layer simulator ([`qnet_sim`])
//! * [`core`] — the paper's algorithms and model ([`muerp_core`])
//! * [`serve`] — batched streaming admission service ([`muerp_serve`])
//! * [`experiments`] — figure-reproduction harness ([`muerp_experiments`])
//! * [`obs`] — spans, counters, and run reports behind `MUERP_OBS`
//!   ([`qnet_obs`])
//! * [`conformance`] — independent solution audit, differential and
//!   metamorphic oracles, seeded fuzz driver ([`qnet_conformance`])
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use muerp::core::prelude::*;
//!
//! let net = NetworkSpec::paper_default().build(42);
//! if let Ok(solution) = PrimBased::default().solve(&net) {
//!     validate_solution(&net, &solution)?;
//!     println!("entanglement rate: {}", solution.rate);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use muerp_core as core;
pub use muerp_experiments as experiments;
pub use muerp_serve as serve;
pub use qnet_conformance as conformance;
pub use qnet_graph as graph;
pub use qnet_obs as obs;
pub use qnet_sim as sim;
pub use qnet_topology as topology;

pub mod bridge;
