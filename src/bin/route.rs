//! `route` — one-off MUERP routing from the command line.
//!
//! ```text
//! route [--topology waxman|watts-strogatz|volchenkov] [--switches N]
//!       [--users N] [--qubits Q] [--degree D] [--swap Q] [--seed S]
//!       [--algo alg2|alg3|alg4|beam|nfusion|eqcast] [--refine] [--dot]
//! ```
//!
//! Prints the routed entanglement structure and its rate; `--dot` emits a
//! Graphviz document of the network with the tree highlighted instead.

use std::collections::HashSet;
use std::process::ExitCode;

use muerp::core::algorithms::{refine, BeamSearch, LocalSearchOptions};
use muerp::core::prelude::*;
use muerp::graph::dot::{to_dot, DotOptions};
use muerp::graph::EdgeId;
use muerp::topology::TopologyKind;

struct Args {
    spec: NetworkSpec,
    seed: u64,
    algo: String,
    refine: bool,
    dot: bool,
}

fn parse() -> Result<Args, String> {
    let mut spec = NetworkSpec::paper_default();
    let mut switches = 50usize;
    let mut users = 10usize;
    let mut seed = 0u64;
    let mut algo = "alg3".to_string();
    let mut want_refine = false;
    let mut dot = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--topology" => {
                spec.topology.kind = match value("--topology")?.as_str() {
                    "waxman" => TopologyKind::Waxman,
                    "watts-strogatz" => TopologyKind::WattsStrogatz,
                    "volchenkov" => TopologyKind::Volchenkov,
                    other => return Err(format!("unknown topology: {other}")),
                }
            }
            "--switches" => {
                switches = value("--switches")?
                    .parse()
                    .map_err(|e| format!("bad --switches: {e}"))?
            }
            "--users" => {
                users = value("--users")?
                    .parse()
                    .map_err(|e| format!("bad --users: {e}"))?
            }
            "--qubits" => {
                spec.qubits_per_switch = value("--qubits")?
                    .parse()
                    .map_err(|e| format!("bad --qubits: {e}"))?
            }
            "--degree" => {
                spec.topology.avg_degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("bad --degree: {e}"))?
            }
            "--swap" => {
                spec.physics.swap_success = value("--swap")?
                    .parse()
                    .map_err(|e| format!("bad --swap: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--algo" => algo = value("--algo")?,
            "--refine" => want_refine = true,
            "--dot" => dot = true,
            other => {
                return Err(format!(
                "unknown argument: {other}\nusage: route [--topology K] [--switches N] [--users N] \
                 [--qubits Q] [--degree D] [--swap Q] [--seed S] [--algo A] [--refine] [--dot]"
            ))
            }
        }
    }
    spec.topology.nodes = switches + users;
    spec.users = users;
    Ok(Args {
        spec,
        seed,
        algo,
        refine: want_refine,
        dot,
    })
}

fn solve(args: &Args, net: &QuantumNetwork) -> Result<Solution, String> {
    let outcome = match args.algo.as_str() {
        "alg2" => {
            let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);
            OptimalSufficient.solve(&granted)
        }
        "alg3" => ConflictFree::default().solve(net),
        "alg4" => PrimBased::with_seed(args.seed).solve(net),
        "beam" => BeamSearch::default().solve(net),
        "nfusion" => NFusion::default().solve(net),
        "eqcast" => EQCast.solve(net),
        other => return Err(format!("unknown algorithm: {other}")),
    };
    let mut sol = outcome.map_err(|e| format!("no feasible routing: {e}"))?;
    if args.refine {
        sol = refine(net, sol, LocalSearchOptions::default());
    }
    Ok(sol)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let net = args.spec.build(args.seed);
    let sol = match solve(&args, &net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.dot {
        let tree_edges: HashSet<EdgeId> = sol
            .channels
            .iter()
            .flat_map(|c| c.path.edges.iter().copied())
            .collect();
        let users: HashSet<_> = net.users().iter().copied().collect();
        let doc = to_dot(
            net.graph(),
            &DotOptions {
                name: "muerp_route",
                node_label: Box::new(|n, _| n.to_string()),
                node_attrs: Box::new(move |n, _| {
                    if users.contains(&n) {
                        "shape=box, style=filled, fillcolor=lightblue".into()
                    } else {
                        "shape=point".into()
                    }
                }),
                edge_label: Box::new(|_| String::new()),
                edge_attrs: Box::new(move |e| {
                    if tree_edges.contains(&e.id) {
                        "penwidth=3".into()
                    } else {
                        "color=gray80".into()
                    }
                }),
            },
        );
        print!("{doc}");
        return ExitCode::SUCCESS;
    }

    println!(
        "{} on {} ({} users, {} switches, Q={}, q={}, seed {})",
        args.algo,
        args.spec.topology.kind,
        net.user_count(),
        net.switch_count(),
        args.spec.qubits_per_switch,
        net.physics().swap_success,
        args.seed
    );
    println!("entanglement rate: {}", sol.rate);
    for c in &sol.channels {
        let hops: Vec<String> = c.path.nodes.iter().map(|n| n.to_string()).collect();
        println!(
            "  {} ({} links, rate {})",
            hops.join(" - "),
            c.link_count(),
            c.rate
        );
    }
    ExitCode::SUCCESS
}
