//! Offline stand-in for `crossbeam`'s scoped threads and deques.
//!
//! [`scope`] wraps `std::thread::scope` behind crossbeam's signature:
//! the closure receives a [`Scope`] handle whose `spawn` passes the scope
//! back to the spawned closure, and the call returns `Err` (instead of
//! unwinding) when any spawned thread panicked. [`deque`] provides the
//! `Worker`/`Stealer`/`Injector` work-stealing queues.

#![forbid(unsafe_code)]

pub mod deque;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A handle for spawning threads inside a [`scope`] call.
///
/// `Copy` so it can be handed by value to spawned closures (crossbeam
/// passes `&Scope`; every caller in this workspace binds it `|_|`, so
/// the by-value shape is compatible).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives this scope so it can
    /// spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(scope))
    }
}

/// Creates a scope in which spawned threads may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns; a panic
/// in any of them is reported as `Err` rather than propagated.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(Scope { inner: s }))
    }))
}

/// crossbeam exposes scoped threads under `crossbeam::thread` too.
pub mod thread_scope {
    pub use crate::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn nested_spawn_through_the_passed_scope() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
