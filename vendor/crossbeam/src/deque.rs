//! Offline stand-in for `crossbeam-deque`: work-stealing queues.
//!
//! Mirrors the subset of the `crossbeam::deque` API the workspace uses —
//! [`Worker`]/[`Stealer`] pairs plus a shared [`Injector`] — with the
//! same ownership shape (a `Worker` is `!Sync` per owner thread, its
//! `Stealer`s are cloneable and shared). The implementation is a plain
//! mutex-protected ring rather than the lock-free Chase-Lev deque: the
//! workspace steals *coarse* tasks (whole Dijkstra runs), so queue
//! traffic is a few dozen operations per batch and contention is not a
//! factor. Semantics (LIFO pop, FIFO steal, batch injection) match the
//! real crate.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks ignoring poisoning: the queues hold plain tasks, so a panicked
/// holder cannot leave them in a logically broken state.
fn lock<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The attempt lost a race; retrying may succeed. The mutex-based
    /// stand-in never produces this, but callers written against the
    /// real API must still handle it.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// `true` when the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A worker-owned queue: the owner pushes and pops LIFO at one end,
/// thieves steal FIFO from the other.
pub struct Worker<T> {
    shared: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A new FIFO worker queue (the only flavor the workspace uses; the
    /// owner's `pop` takes from the same end thieves steal from, so
    /// task order matches injection order).
    pub fn new_fifo() -> Self {
        Worker {
            shared: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A [`Stealer`] handle for this queue; clone freely across threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        lock(&self.shared).push_back(task);
    }

    /// Pops the next task in FIFO order, `None` when empty.
    pub fn pop(&self) -> Option<T> {
        lock(&self.shared).pop_front()
    }

    /// `true` when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.shared).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.shared).len()
    }
}

/// A shared handle that steals tasks from a [`Worker`]'s queue.
pub struct Stealer<T> {
    shared: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the opposite end of the owner's pops.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.shared).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// `true` when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.shared).is_empty()
    }
}

/// A shared injection queue every worker can steal from, mirroring
/// `crossbeam_deque::Injector`.
pub struct Injector<T> {
    shared: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            shared: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the global queue (FIFO).
    pub fn push(&self, task: T) {
        lock(&self.shared).push_back(task);
    }

    /// Steals one task from the global queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.shared).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks into `dest`, returning the first of them
    /// (the real crate's `steal_batch_and_pop`). The batch size is half
    /// the queue, at least one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.shared);
        let n = q.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = (n / 2).max(1);
        let first = q.pop_front().expect("checked non-empty");
        if take > 1 {
            let mut dq = lock(&dest.shared);
            for _ in 1..take {
                match q.pop_front() {
                    Some(t) => dq.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// `true` when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.shared).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.shared).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pop_and_steal_share_fifo_order() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn injector_batch_steal_moves_half() {
        let inj = Injector::new();
        for i in 0..8 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        // 8 queued: pop 1, move 3 more (half of 8 = 4 total).
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.len(), 3);
        assert_eq!(inj.len(), 4);
        assert_eq!(w.pop(), Some(1));
        // Empty injector reports Empty.
        let empty: Injector<u32> = Injector::new();
        let w2: Worker<u32> = Worker::new_fifo();
        assert!(empty.steal_batch_and_pop(&w2).is_empty());
        assert_eq!(empty.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_stealing_loses_no_tasks() {
        let inj = Injector::new();
        const N: usize = 1000;
        for i in 0..N {
            inj.push(i);
        }
        let total = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let local = Worker::new_fifo();
                    loop {
                        let task = local
                            .pop()
                            .or_else(|| match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => Some(t),
                                _ => None,
                            });
                        match task {
                            Some(_) => {
                                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), N);
    }
}
