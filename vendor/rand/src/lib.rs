//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of `rand` APIs the code actually uses are
//! reimplemented here: [`rngs::StdRng`] (xoshiro256** seeded via
//! SplitMix64), [`Rng::random_range`], [`Rng::random_bool`],
//! [`seq::SliceRandom::shuffle`] and [`seq::IndexedRandom::choose`].
//!
//! Streams are deterministic per seed but differ from upstream `rand`'s;
//! nothing in the workspace depends on upstream's exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bits source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        // 53-bit uniform in [0, 1); strict `<` gives exact 0/1 endpoints.
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits scaled into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling; span ≤ u64::MAX here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64 as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = next_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = next_f64(rng) as $t;
                // Scale over the closed interval; clamp for rounding.
                let v = lo + (hi - lo) * u;
                v.min(hi)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Fast, small, and good enough statistically for
    /// simulation workloads; **not** cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let diverges = (0..100).any(|_| {
            StdRng::seed_from_u64(42).random_range(0..u64::MAX) != c.random_range(0..u64::MAX)
        });
        assert!(diverges);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        let heads = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&heads), "got {heads}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
