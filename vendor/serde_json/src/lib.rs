//! Offline stand-in for `serde_json`, centred on [`Value`].
//!
//! Unlike the vendored `serde` marker stub, this crate is *functional*:
//! [`Value`] round-trips through [`to_string`] / [`from_str`] with full
//! string escaping, nested arrays/objects, and the usual number handling
//! (integers preserved exactly up to `u64`/`i64`, floats via shortest
//! round-trip formatting). Object keys keep insertion order.
//!
//! The `qnet-obs` run reports build [`Value`] trees explicitly instead of
//! deriving serializers, so observability output is real JSON even in a
//! hermetic build.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// The map type behind [`Value::Object`] (upstream's `serde_json::Map`).
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap) for deterministic output.
    Object(BTreeMap<String, Value>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything else.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
            && self.as_u64() == other.as_u64()
            && self.as_i64() == other.as_i64()
    }
}

impl Number {
    /// The value as `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` when it is a representable integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::PosInt(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(Number::PosInt(n as u64))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::PosInt(n as u64))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        if n >= 0 {
            Value::Number(Number::PosInt(n as u64))
        } else {
            Value::Number(Number::NegInt(n))
        }
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `self` as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `self` as an `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// `self` as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `self` as an `i64`, when it is a representable integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `self` as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `self` as an array, when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `self` as an object map, when it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member access; a missing key or non-object yields `Null`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-range or non-array yields `Null`.
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; standard serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, None, 0);
        f.write_str(&s)
    }
}

/// Serializes a [`Value`] to compact JSON.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, v, None, 0);
    Ok(s)
}

/// Serializes a [`Value`] to human-readable JSON (2-space indent).
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, v, Some(2), 0);
    Ok(s)
}

/// A parse error with byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = obj(&[
            ("name", Value::from("solver")),
            ("count", Value::from(42u64)),
            ("neg", Value::from(-7i64)),
            ("pi", Value::from(3.25)),
            ("flag", Value::from(true)),
            ("none", Value::Null),
            (
                "items",
                Value::from(vec![Value::from(1u64), Value::from("two")]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote \" backslash \\ newline \n tab \t unicode ✓ null \u{0} emoji 🚀";
        let v = Value::from(nasty);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn integers_preserved_exactly() {
        let v = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = from_str("-9223372036854775808").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
        let v = from_str("1.5e3").unwrap();
        assert_eq!(v.as_f64(), Some(1500.0));
    }

    #[test]
    fn float_reserialization_stays_float() {
        let v = Value::from(2.0f64);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str(&s).unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"\\x\"",
            "1 2",
            "\"unterminated",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn indexing_is_total() {
        let v = from_str(r#"{"a": [10, 20]}"#).unwrap();
        assert_eq!(v["a"][1].as_u64(), Some(20));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"][9], Value::Null);
        assert_eq!(v[0], Value::Null);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&Value::from(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&Value::from(f64::INFINITY)).unwrap(), "null");
    }
}
