//! No-op `Serialize`/`Deserialize` derives.
//!
//! The vendored `serde` stub blanket-implements its marker traits, so
//! these derives only need to accept the syntax (including `#[serde(..)]`
//! attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing; the vendored serde
/// crate blanket-implements the marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing; the vendored
/// serde crate blanket-implements the marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
