//! Offline stand-in for `parking_lot` built on `std::sync`.
//!
//! Matches the `parking_lot` API shape this workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`); a poisoned
//! std lock is transparently recovered, mirroring parking_lot's absence
//! of poisoning.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot has no poisoning; neither do we.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
