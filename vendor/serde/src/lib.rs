//! Offline stand-in for `serde`.
//!
//! This workspace builds hermetically (no crates.io), and nothing in it
//! drives serde's data model directly — `derive(Serialize, Deserialize)`
//! is applied to types only so downstream users *could* serialize them.
//! Here the traits are markers with blanket impls and the derives are
//! no-ops, which keeps every `#[derive(..)]` and trait bound compiling
//! unchanged. Actual JSON serialization in this workspace goes through
//! the explicit converters in `qnet-obs` and the vendored `serde_json`
//! value type.

#![forbid(unsafe_code)]

/// Marker for serializable types (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented).
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker for owned-deserializable types (blanket-implemented).
pub trait DeserializeOwned: Sized {}

impl<T> DeserializeOwned for T {}

/// Re-export of the no-op derive macros under the usual names.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
