//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! calibrated wall-clock loop: each benchmark is warmed up, then timed
//! over enough iterations to fill a short measurement window, and the
//! mean ns/iteration is printed. No statistics, plots, or baselines.
//!
//! Honors `MUERP_BENCH_QUICK=1` to shrink the measurement window (used
//! by CI smoke runs).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Option<MeasuredRun>,
    window: Duration,
}

/// One benchmark's measurement outcome.
#[derive(Clone, Copy, Debug)]
struct MeasuredRun {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Calibrates and times `routine`, recording mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: run until ~10% of the window is spent,
        // doubling the batch each time.
        let calibration_budget = self.window / 10;
        let mut batch: u64 = 1;
        let calib_start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            if calib_start.elapsed() >= calibration_budget || batch >= (1 << 20) {
                break;
            }
            batch *= 2;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / (2 * batch - 1) as f64;
        let iterations =
            ((self.window.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.measured = Some(MeasuredRun {
            iterations,
            total: start.elapsed(),
        });
    }
}

fn measurement_window() -> Duration {
    if std::env::var_os("MUERP_BENCH_QUICK").is_some_and(|v| v == *"1") {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

fn run_and_report(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        measured: None,
        window: measurement_window(),
    };
    f(&mut b);
    match b.measured {
        Some(m) => {
            let ns = m.total.as_secs_f64() * 1e9 / m.iterations as f64;
            println!("{label:<50} {:>14.1} ns/iter  ({} iters)", ns, m.iterations);
        }
        None => println!("{label:<50} (no measurement — b.iter never called)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report(&id.into().id, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub's timing loop calibrates
    /// itself, so the value is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report(&format!("{}/{}", self.name, id.into().id), f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_and_report(&format!("{}/{}", self.name, id.into().id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main()` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("MUERP_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 * 3));
        g.finish();
    }
}
