//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], the [`proptest!`] macro
//! with `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume`
//! macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's name, so failures reproduce
//! across runs) and there is **no shrinking** — a failing case reports
//! the assertion message only. That trade keeps the vendored crate tiny
//! while preserving the tests' coverage.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

// Used by macro expansions so callers need not depend on `rand`.
#[doc(hidden)]
pub use rand;

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is re-drawn, not
    /// counted as a failure.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG driving input generation.
pub type TestRng = StdRng;

/// FNV-1a, used to derive a stable per-test seed from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, builds a dependent strategy from it with `f`,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: a fixed length or a (half-open or
    /// inclusive) range of lengths.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A strategy yielding `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import for proptest tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Each test runs `config.cases` accepted cases with a
/// deterministic RNG seeded from the test's name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::proptest!(@one [$config]
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            );
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::proptest!(@one [$crate::ProptestConfig::default()]
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            );
        )*
    };
    (@one [$config:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
                let mut __rng: $crate::TestRng =
                    <$crate::TestRng as $crate::rand::SeedableRng>::seed_from_u64(
                        $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                    );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(50).saturating_add(100),
                        "too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name),
                        __accepted,
                        __config.cases,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __outcome: $crate::TestCaseResult = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} failed on case {}: {}", stringify!($name), __accepted, msg)
                        }
                    }
                }
            }
    };
}

/// `assert!` for proptest bodies: failures become `TestCaseError::Fail`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}` ({})",
                __l,
                __r,
                concat!(stringify!($left), " == ", stringify!($right)),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn and not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_compose(n in 2usize..=10, x in 0.5f64..=1.0) {
            prop_assert!((2..=10).contains(&n));
            prop_assert!((0.5..=1.0).contains(&x));
        }

        #[test]
        fn flat_map_depends_on_outer(v in (1usize..=5).prop_flat_map(|n| {
            crate::collection::vec(0..n, n..=n)
        })) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            let n = v.len();
            for item in v {
                prop_assert!(item < n);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(super::fnv1a("abc"), super::fnv1a("abc"));
        assert_ne!(super::fnv1a("abc"), super::fnv1a("abd"));
    }
}
