//! The qualitative claims of the paper's §V-B, asserted over the actual
//! experiment harness at reduced trial counts (the full 20-trial tables
//! live in EXPERIMENTS.md and `cargo run -p muerp-experiments`).

use muerp::experiments::figures;
use muerp::experiments::TrialConfig;

fn cfg() -> TrialConfig {
    TrialConfig {
        trials: 6,
        base_seed: 1000,
    }
}

fn col(t: &muerp::experiments::FigureTable, name: &str) -> usize {
    t.algos.iter().position(|a| *a == name).expect("column")
}

#[test]
fn fig5_proposed_algorithms_beat_baselines_on_every_topology() {
    let t = figures::fig5(cfg());
    let (a2, a3, a4) = (col(&t, "Alg-2"), col(&t, "Alg-3"), col(&t, "Alg-4"));
    let (nf, qc) = (col(&t, "N-Fusion"), col(&t, "E-Q-CAST"));
    for (topology, rates) in &t.rows {
        for alg in [a2, a3, a4] {
            for base in [nf, qc] {
                assert!(
                    rates[alg] > rates[base],
                    "{topology}: proposed {} ≤ baseline {}",
                    rates[alg],
                    rates[base]
                );
            }
        }
        // Alg-2's capacity-granted rate upper-bounds the heuristics.
        assert!(rates[a2] >= rates[a3] * (1.0 - 1e-9));
        assert!(rates[a2] >= rates[a4] * (1.0 - 1e-9));
    }
}

#[test]
fn fig6a_more_users_lower_rate() {
    let t = figures::fig6a(cfg());
    let a2 = col(&t, "Alg-2");
    let first = t.rows.first().unwrap().1[a2];
    let last = t.rows.last().unwrap().1[a2];
    assert!(last < first, "rate must fall from 4 to 14 users");
}

#[test]
fn fig7a_higher_degree_higher_rate() {
    let t = figures::fig7a(cfg());
    let a2 = col(&t, "Alg-2");
    let first = t.rows.first().unwrap().1[a2]; // degree 4
    let last = t.rows.last().unwrap().1[a2]; // degree 10
    assert!(
        last > first,
        "denser networks must help: degree 4 → {first}, degree 10 → {last}"
    );
}

#[test]
fn fig8a_only_alg3_survives_two_qubit_switches() {
    // The paper: "when Q = 2, Algorithm 3 is the only one capable of
    // supporting entanglement" — because Algorithm 2's *tree* channels
    // (computed capacity-free) may double-book a 2-qubit switch for
    // Alg-4's incremental growth as well. We assert the direction:
    // Alg-3 does at least as well as Alg-4 at Q = 2, and the baselines
    // do no better than the proposed methods.
    let t = figures::fig8a(cfg());
    let q2 = &t.rows.iter().find(|(x, _)| x == "2").unwrap().1;
    let (a3, a4) = (col(&t, "Alg-3"), col(&t, "Alg-4"));
    let (nf, qc) = (col(&t, "N-Fusion"), col(&t, "E-Q-CAST"));
    assert!(q2[a3] >= q2[a4], "Alg-3 handles Q=2 at least as well");
    assert!(q2[a3] >= q2[nf] && q2[a3] >= q2[qc]);
    // And capacity relief helps everyone capacity-bound.
    let q8 = &t.rows.iter().find(|(x, _)| x == "8").unwrap().1;
    assert!(q8[a4] >= q2[a4]);
}

#[test]
fn fig8b_rate_rises_with_swap_success() {
    let t = figures::fig8b(cfg());
    for name in ["Alg-2", "Alg-3", "Alg-4"] {
        let c = col(&t, name);
        let series: Vec<f64> = t.rows.iter().map(|(_, r)| r[c]).collect();
        assert!(
            series.last().unwrap() > series.first().unwrap(),
            "{name}: q=1.0 must beat q=0.6: {series:?}"
        );
    }
}

#[test]
fn headline_improvements_are_large() {
    // §V-B reports improvements "up to 5347%" (Alg-2 vs N-FUSION) and
    // "5068%" (vs E-Q-CAST). Absolute numbers depend on the generator
    // RNG; the reproduction claim is the *magnitude*: at least 3 orders
    // of ratio ≈ several-hundred-percent improvements somewhere.
    let t = figures::headline(cfg());
    let alg2 = &t.rows[0].1;
    assert!(
        alg2.iter().all(|&v| v > 300.0),
        "Alg-2 should beat both baselines by >300% somewhere: {alg2:?}"
    );
}
