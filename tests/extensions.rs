//! Integration tests for the paper's two named extensions, exercised
//! through the public facade.

use muerp::core::extensions::{route_groups, FidelityAwarePrim, FidelityModel, GroupStrategy};
use muerp::core::prelude::*;
use muerp::sim::fidelity::chain_fidelity;

#[test]
fn fidelity_floor_is_enforced_end_to_end() {
    let model = FidelityModel {
        link_fidelity: 0.99,
        min_fidelity: 0.96,
    };
    let hop_bound = model.max_links().expect("achievable floor");
    let mut solved = 0;
    for seed in 0..8u64 {
        let net = NetworkSpec::paper_default().build(seed);
        let Ok(sol) = (FidelityAwarePrim { model }).solve(&net) else {
            continue;
        };
        solved += 1;
        validate_solution(&net, &sol).unwrap();
        for c in &sol.channels {
            assert!(c.link_count() <= hop_bound, "hop bound violated");
            let f = chain_fidelity(model.link_fidelity, c.link_count());
            assert!(f >= model.min_fidelity - 1e-12, "fidelity {f} below floor");
        }
    }
    assert!(solved > 0, "the floor should be achievable on some seeds");
}

#[test]
fn impossible_floor_fails_cleanly() {
    let model = FidelityModel {
        link_fidelity: 0.8,
        min_fidelity: 0.95,
    };
    let net = NetworkSpec::paper_default().build(3);
    assert!(FidelityAwarePrim { model }.solve(&net).is_err());
}

#[test]
fn concurrent_groups_share_the_network_consistently() {
    for seed in 0..5u64 {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.nodes = 62;
        spec.users = 12;
        let net = spec.build(seed);
        let users = net.users();
        let groups = [
            users[..4].to_vec(),
            users[4..8].to_vec(),
            users[8..].to_vec(),
        ];
        for strategy in [GroupStrategy::Sequential, GroupStrategy::RoundRobin] {
            let outcomes = route_groups(&net, &groups, strategy);
            assert_eq!(outcomes.len(), 3);
            // Shared capacity must hold across ALL groups together.
            let mut demand: std::collections::HashMap<_, u32> = Default::default();
            for o in &outcomes {
                if let Ok(tree) = &o.tree {
                    assert_eq!(tree.channels.len(), o.members.len() - 1);
                    for (s, d) in tree.qubit_demand() {
                        *demand.entry(s).or_default() += d;
                    }
                }
            }
            for (s, d) in demand {
                assert!(
                    d <= net.kind(s).qubits(),
                    "seed {seed} {strategy:?}: switch {s} overbooked"
                );
            }
        }
    }
}

#[test]
fn multi_group_total_rate_trades_off_against_single_group() {
    // Splitting the same 10 users into two groups of 5 yields two trees
    // whose combined channel count (8) is lower than the single tree's
    // (9) — and the per-group products must each upper-bound the full
    // group's rate (fewer factors, feasibility permitting).
    let net = NetworkSpec::paper_default().build(9);
    let users = net.users();
    let whole = route_groups(&net, &[users.to_vec()], GroupStrategy::Sequential);
    let split = route_groups(
        &net,
        &[users[..5].to_vec(), users[5..].to_vec()],
        GroupStrategy::Sequential,
    );
    if let (Ok(w), Ok(a), Ok(b)) = (&whole[0].tree, &split[0].tree, &split[1].tree) {
        assert_eq!(w.channels.len(), 9);
        assert_eq!(a.channels.len() + b.channels.len(), 8);
        assert!(a.rate().value() >= w.rate().value());
    }
}

#[test]
fn purification_arithmetic_agrees_with_sim_crate() {
    // muerp-core's purified routing and qnet-sim's BBPSSW must implement
    // the same recurrence.
    use muerp::core::extensions::{purification_plan, FidelityModel};
    use muerp::core::rate::Rate;
    use muerp::sim::fidelity::{purify, rounds_to_reach};

    let model = FidelityModel {
        link_fidelity: 0.97,
        min_fidelity: 0.96,
    };
    for links in 2..6usize {
        let raw_f = muerp::sim::fidelity::chain_fidelity(0.97, links);
        let plan = purification_plan(model, links, Rate::from_prob(0.5));
        let sim_rounds = rounds_to_reach(raw_f, 0.96);
        match (plan, sim_rounds) {
            (Some(p), Some(r)) => {
                assert_eq!(p.rounds, r, "links {links}");
                // Replay the fidelity recurrence through qnet-sim.
                let mut f = raw_f;
                for _ in 0..r {
                    f = purify(f).fidelity;
                }
                assert!(
                    (p.delivered_fidelity - f).abs() < 1e-12,
                    "links {links}: {} vs {}",
                    p.delivered_fidelity,
                    f
                );
            }
            (None, None) => {}
            other => panic!("links {links}: crates disagree: {other:?}"),
        }
    }
}

#[test]
fn purified_routing_end_to_end() {
    use muerp::core::extensions::{FidelityModel, PurifiedPrim};
    let model = FidelityModel {
        link_fidelity: 0.97,
        min_fidelity: 0.95,
    };
    let mut solved = 0;
    for seed in 0..6u64 {
        let net = NetworkSpec::paper_default().build(seed);
        if let Ok(sol) = (PurifiedPrim { model }).solve(&net) {
            solved += 1;
            assert_eq!(sol.channels.len(), net.user_count() - 1);
            assert!(sol.rate.value() > 0.0 && sol.rate.value() <= 1.0);
        }
    }
    assert!(solved > 0);
}

#[test]
fn fidelity_model_agrees_with_sim_crate() {
    // muerp-core's Werner arithmetic and qnet-sim's closed form must be
    // the same function.
    use muerp::core::extensions::werner_swap_fidelity;
    let link = 0.97;
    for links in 1..10 {
        let mut folded = link;
        for _ in 1..links {
            folded = werner_swap_fidelity(folded, link);
        }
        let closed = chain_fidelity(link, links);
        assert!((folded - closed).abs() < 1e-12);
    }
}
