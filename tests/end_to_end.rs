//! End-to-end integration: topology generation → MUERP routing →
//! solution validation, across all generators and algorithms.

use muerp::core::prelude::*;
use muerp::topology::TopologyKind;

fn specs() -> Vec<NetworkSpec> {
    TopologyKind::ALL
        .into_iter()
        .map(|kind| {
            let mut spec = NetworkSpec::paper_default();
            spec.topology.kind = kind;
            spec
        })
        .collect()
}

#[test]
fn every_algorithm_validates_on_every_topology() {
    for spec in specs() {
        for seed in 0..5u64 {
            let net = spec.build(seed);
            let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);
            let cases: Vec<(&str, &QuantumNetwork, Result<Solution, RoutingError>)> = vec![
                ("Alg-2", &granted, OptimalSufficient.solve(&granted)),
                ("Alg-3", &net, ConflictFree::default().solve(&net)),
                ("Alg-4", &net, PrimBased::with_seed(seed).solve(&net)),
                ("N-Fusion", &net, NFusion::default().solve(&net)),
                ("E-Q-CAST", &net, EQCast.solve(&net)),
            ];
            for (name, net, outcome) in cases {
                if let Ok(sol) = outcome {
                    validate_solution(net, &sol).unwrap_or_else(|e| {
                        panic!("{name} seed {seed} {:?}: {e}", spec.topology.kind)
                    });
                }
            }
        }
    }
}

#[test]
fn alg2_upper_bounds_every_bsm_tree_method() {
    for spec in specs() {
        for seed in 0..5u64 {
            let net = spec.build(seed);
            let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);
            let Ok(bound) = OptimalSufficient.solve(&granted) else {
                continue;
            };
            let bound = bound.rate.value() * (1.0 + 1e-9);
            for (name, outcome) in [
                ("Alg-3", ConflictFree::default().solve(&net)),
                ("Alg-4", PrimBased::with_seed(seed).solve(&net)),
                ("E-Q-CAST", EQCast.solve(&net)),
            ] {
                if let Ok(sol) = outcome {
                    assert!(
                        sol.rate.value() <= bound,
                        "{name} exceeded the unconstrained optimum on seed {seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn more_capacity_never_hurts_the_heuristics() {
    let base = NetworkSpec::paper_default();
    for seed in 0..5u64 {
        let mut last_a3 = 0.0f64;
        let mut last_a4 = 0.0f64;
        for qubits in [2u32, 4, 8, 20] {
            let mut spec = base;
            spec.qubits_per_switch = qubits;
            let net = spec.build(seed);
            let a3 = ConflictFree::default()
                .solve(&net)
                .map_or(0.0, |s| s.rate.value());
            let a4 = PrimBased::with_seed(seed)
                .solve(&net)
                .map_or(0.0, |s| s.rate.value());
            // Greedy heuristics are not formally monotone in capacity,
            // but a capacity increase must never flip a feasible instance
            // infeasible.
            if last_a3 > 0.0 {
                assert!(
                    a3 > 0.0,
                    "Alg-3 lost feasibility at Q={qubits}, seed {seed}"
                );
            }
            if last_a4 > 0.0 {
                assert!(
                    a4 > 0.0,
                    "Alg-4 lost feasibility at Q={qubits}, seed {seed}"
                );
            }
            last_a3 = a3;
            last_a4 = a4;
        }
    }
}

#[test]
fn channels_share_fibers_but_never_overbook_switches() {
    // The model allows two channels on one fiber (multi-core) while
    // switch qubits stay exclusive; find a solution exhibiting fiber
    // sharing and re-validate.
    let mut found_shared_fiber = false;
    for seed in 0..20u64 {
        let net = NetworkSpec::paper_default().build(seed);
        if let Ok(sol) = ConflictFree::default().solve(&net) {
            validate_solution(&net, &sol).unwrap();
            let mut edge_uses = std::collections::HashMap::new();
            for c in &sol.channels {
                for &e in &c.path.edges {
                    *edge_uses.entry(e).or_insert(0) += 1;
                }
            }
            if edge_uses.values().any(|&n| n > 1) {
                found_shared_fiber = true;
            }
        }
    }
    assert!(
        found_shared_fiber,
        "expected at least one multi-core fiber reuse across 20 seeds"
    );
}

#[test]
fn user_count_sweep_shrinks_rate() {
    // Fig. 6(a) trend at the single-network level, averaged over seeds.
    let mean_for = |users: usize| {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.nodes = 50 + users;
        spec.users = users;
        let mut total = 0.0;
        for seed in 0..6u64 {
            let net = spec.build(seed);
            let granted = net.with_uniform_switch_qubits(2 * users as u32);
            total += OptimalSufficient
                .solve(&granted)
                .map_or(0.0, |s| s.rate.value());
        }
        total / 6.0
    };
    let small = mean_for(4);
    let large = mean_for(14);
    assert!(
        large < small,
        "entangling 14 users must be harder than 4: {large} vs {small}"
    );
}

#[test]
fn scales_to_hundreds_of_switches() {
    // 300 switches + 10 users: the algorithms stay correct (validated)
    // at 5× the paper's scale; also guards against accidental quadratic
    // blowups in the substrate.
    let mut spec = NetworkSpec::paper_default();
    spec.topology.nodes = 310;
    let net = spec.build(77);
    assert_eq!(net.switch_count(), 300);
    let granted = net.with_uniform_switch_qubits(20);
    for (name, net, outcome) in [
        ("Alg-2", &granted, OptimalSufficient.solve(&granted)),
        ("Alg-3", &net, ConflictFree::default().solve(&net)),
        ("Alg-4", &net, PrimBased::with_seed(77).solve(&net)),
    ] {
        let sol = outcome.unwrap_or_else(|e| panic!("{name} failed at scale: {e}"));
        validate_solution(net, &sol).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sol.channels.len(), 9);
    }
}

#[test]
fn lattice_topology_corner_users() {
    // The lattice setting of the paper's ref. [15]: four corner users on
    // a 5×5 grid of switches. All channels fight for the grid interior,
    // making capacity effects stark and deterministic.
    use muerp::core::model::{NodeKind, PhysicsParams};
    use muerp::graph::Graph;
    use muerp::topology::grid::{grid, grid_node};

    let lattice = grid(5, 5, 800.0);
    let corners = [
        grid_node(0, 0, 5),
        grid_node(0, 4, 5),
        grid_node(4, 0, 5),
        grid_node(4, 4, 5),
    ];
    for qubits in [2u32, 4] {
        // Rebuild with roles: corners are users, the rest switches.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        for v in lattice.node_ids() {
            if corners.contains(&v) {
                g.add_node(NodeKind::User);
            } else {
                g.add_node(NodeKind::Switch { qubits });
            }
        }
        for e in lattice.edge_refs() {
            g.add_edge(e.a, e.b, *e.payload);
        }
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());

        let a3 = ConflictFree::default().solve(&net);
        let a4 = PrimBased::default().solve(&net);
        for (name, outcome) in [("Alg-3", &a3), ("Alg-4", &a4)] {
            if let Ok(sol) = outcome {
                validate_solution(&net, sol).unwrap_or_else(|e| panic!("{name} Q={qubits}: {e}"));
                assert_eq!(sol.channels.len(), 3);
                // Corner-to-corner needs ≥ 4 links on this grid.
                for c in &sol.channels {
                    assert!(c.link_count() >= 4, "{name}: impossible shortcut");
                }
            }
        }
        // With Q = 4 the grid is roomy enough that both heuristics work.
        if qubits == 4 {
            assert!(a3.is_ok(), "Alg-3 must solve the roomy lattice");
            assert!(a4.is_ok(), "Alg-4 must solve the roomy lattice");
        }
    }
}

#[test]
fn steiner_tree_connectivity_is_not_muerp_feasibility() {
    // §III-A's central discrimination (the paper's Fig. 4): the classic
    // Steiner tree connects the users through the 2-qubit hub, yet MUERP
    // is infeasible there.
    use muerp::core::feasibility::is_feasible_exhaustive;
    use muerp::core::model::NodeKind;
    use muerp::graph::steiner::steiner_approximation;
    use muerp::graph::{Graph, NodeId};

    let mut g: Graph<NodeKind, f64> = Graph::new();
    let users: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
    let hub = g.add_node(NodeKind::Switch { qubits: 2 });
    for &u in &users {
        g.add_edge(u, hub, 500.0);
    }

    // Classic graph: a Steiner tree spans the three users.
    let steiner = steiner_approximation(&g, &users, |e| *e.payload).expect("connected");
    assert_eq!(steiner.edges.len(), 3);

    // Quantum internet: 2 qubits ⇒ one channel ⇒ infeasible.
    let net = QuantumNetwork::from_graph(g, muerp::core::model::PhysicsParams::paper_default());
    assert!(!is_feasible_exhaustive(&net, 4));
}
