//! Golden serve fixture: a pinned 16-node network, the pinned seeded
//! request script, and the pinned admission decision log, checked
//! byte-for-byte against the batched engine and replayed from the
//! committed bytes alone on every run.
//!
//! Regenerate after an intentional format or engine change with:
//!
//! ```text
//! MUERP_REGEN_FIXTURES=1 cargo test --test serve_golden
//! ```

use std::path::PathBuf;

use muerp::core::extensions::{RequestStream, StreamConfig};
use muerp::core::model::NetworkSpec;
use muerp::serve::fixture::{
    decisions_from_json, decisions_to_json, requests_from_json, requests_to_json,
};
use muerp::serve::{serve_requests, PolicyKind, ServeConfig, Verdict};
use serde_json::{Map, Value};

/// Pinned forever: the fixture seed and shape. Seed 23 on a 16-switch
/// Waxman with 5 users yields a run that exercises every verdict —
/// admissions with multi-channel trees, capacity blocks, and a shed
/// suffix from the 3-deep bounded queue — so the fixture pins all four
/// decision arms, not just the happy path.
const SEED: u64 = 23;
const NODES: usize = 16;
const USERS: usize = 5;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/serve-waxman-16.json")
}

fn fixture_net() -> muerp::core::model::QuantumNetwork {
    let mut spec = NetworkSpec::paper_default().with_users(USERS);
    spec.topology.nodes = NODES;
    spec.build(SEED)
}

fn fixture_cfg() -> ServeConfig {
    ServeConfig {
        stream: StreamConfig {
            slots: 64,
            window_slots: 16,
            base_arrival: 0.8,
            group_size: (2, 4),
            hold_slots: (4, 12),
            ..StreamConfig::default()
        },
        round_slots: 16,
        queue_capacity: 3,
        policy: PolicyKind::Fcfs,
    }
}

/// Builds the serve fixture deterministically: stream the script, run
/// the batched rounds, and pin script + decisions + headline tallies.
fn fixture_source() -> String {
    let net = fixture_net();
    let cfg = fixture_cfg();
    let requests: Vec<_> = RequestStream::new(&net, cfg.stream, SEED).collect();
    let outcome = serve_requests(&net, &cfg, &requests);
    let mut root = Map::new();
    root.insert("name".into(), Value::from("serve-waxman-16"));
    root.insert("seed".into(), Value::from(SEED));
    root.insert("nodes".into(), Value::from(NODES));
    root.insert("users".into(), Value::from(USERS));
    root.insert("round_slots".into(), Value::from(cfg.round_slots));
    root.insert("queue_capacity".into(), Value::from(cfg.queue_capacity));
    root.insert("policy".into(), Value::from(cfg.policy.name()));
    root.insert("admitted".into(), Value::from(outcome.stats.admitted));
    root.insert("shed".into(), Value::from(outcome.stats.shed));
    root.insert("requests".into(), requests_to_json(&requests));
    root.insert("decisions".into(), decisions_to_json(&outcome.decisions));
    serde_json::to_string_pretty(&Value::Object(root)).expect("Value serialization is total")
}

#[test]
fn golden_serve_fixture_matches_engine_and_replays_from_bytes() {
    let expected = fixture_source();
    let path = fixture_path();
    if std::env::var_os("MUERP_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, &expected)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return;
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with MUERP_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        on_disk, expected,
        "committed serve fixture drifted from the batched admission \
         engine; regenerate with MUERP_REGEN_FIXTURES=1 if intentional"
    );

    // Reload and replay everything from the committed bytes alone.
    let value: Value = serde_json::from_str(&on_disk).expect("fixture JSON parses");
    let net = fixture_net();
    let requests =
        requests_from_json(&net, value.get("requests").expect("requests pinned")).expect("parses");
    let pinned = decisions_from_json(&net, value.get("decisions").expect("decisions pinned"))
        .expect("parses");
    let replayed = serve_requests(&net, &fixture_cfg(), &requests);
    assert_eq!(
        replayed.decisions, pinned,
        "replaying the pinned script must reproduce the pinned decision \
         log bitwise (trees included)"
    );
    assert_eq!(
        value.get("admitted").and_then(Value::as_u64),
        Some(replayed.stats.admitted),
        "pinned admitted tally"
    );
    assert_eq!(
        value.get("shed").and_then(Value::as_u64),
        Some(replayed.stats.shed),
        "pinned shed tally"
    );

    // The fixture must actually pin something interesting: every
    // verdict arm appears, and at least one admitted tree has more than
    // one channel (so the path-pinning format is exercised).
    let admitted_trees: Vec<_> = pinned
        .iter()
        .filter_map(|d| match &d.verdict {
            Verdict::Admitted { tree } => Some(tree),
            _ => None,
        })
        .collect();
    assert!(!admitted_trees.is_empty(), "fixture admits at least once");
    assert!(
        admitted_trees.iter().any(|t| t.channels.len() > 1),
        "fixture pins a multi-channel tree"
    );
    assert!(
        pinned.iter().any(|d| matches!(d.verdict, Verdict::Shed)),
        "fixture exercises backpressure shedding"
    );
    assert!(
        pinned
            .iter()
            .any(|d| matches!(d.verdict, Verdict::BlockedBusy | Verdict::BlockedCapacity)),
        "fixture exercises a blocked verdict"
    );
}

/// Mutates the first object of the array at `root[key]`.
fn root_array<'a>(root: &'a mut Value, key: &str) -> &'a mut Vec<Value> {
    let map = match root {
        Value::Object(map) => map,
        _ => panic!("root is an object"),
    };
    match map.get_mut(key) {
        Some(Value::Array(items)) => items,
        _ => panic!("expected an array under [{key}]"),
    }
}

/// Mutates the first object of the array at `root[key]`.
fn first_obj<'a>(root: &'a mut Value, key: &str) -> &'a mut Map<String, Value> {
    match root_array(root, key).first_mut().expect("non-empty array") {
        Value::Object(obj) => obj,
        _ => panic!("expected an object"),
    }
}

#[test]
fn corrupted_serve_fixture_is_rejected_with_named_fields() {
    let text = fixture_source();
    let net = fixture_net();

    // Unknown SLO class in the request script → named rejection.
    let mut bad: Value = serde_json::from_str(&text).expect("parses");
    first_obj(&mut bad, "requests").insert("class".into(), Value::from("platinum"));
    let e = requests_from_json(&net, bad.get("requests").unwrap())
        .expect_err("unknown class must be rejected");
    assert!(e.contains("unknown SLO class [platinum]"), "{e}");

    // Out-of-range member index → named bound in the message.
    let mut bad: Value = serde_json::from_str(&text).expect("parses");
    match first_obj(&mut bad, "requests").get_mut("members") {
        Some(Value::Array(members)) => members[0] = Value::from(10_000u64),
        _ => panic!("members pinned as an array"),
    }
    let e = requests_from_json(&net, bad.get("requests").unwrap())
        .expect_err("out-of-range member must be rejected");
    assert!(e.contains("member index 10000 out of range"), "{e}");

    // Unknown verdict in the decision log → named rejection.
    let mut bad: Value = serde_json::from_str(&text).expect("parses");
    first_obj(&mut bad, "decisions").insert("verdict".into(), Value::from("vaporized"));
    let e = decisions_from_json(&net, bad.get("decisions").unwrap())
        .expect_err("unknown verdict must be rejected");
    assert!(e.contains("unknown verdict [vaporized]"), "{e}");

    // A pinned tree path that does not exist in the network → the edge
    // rebuild names the missing hop instead of fabricating a channel.
    let mut bad: Value = serde_json::from_str(&text).expect("parses");
    let tree = root_array(&mut bad, "decisions")
        .iter_mut()
        .find_map(|d| match d {
            Value::Object(obj) if obj.contains_key("tree") => obj.get_mut("tree"),
            _ => None,
        })
        .expect("an admitted decision pins a tree");
    match tree {
        Value::Array(channels) => match channels.first_mut() {
            Some(Value::Object(ch)) => match ch.get_mut("nodes") {
                Some(Value::Array(nodes)) => {
                    // A node is never adjacent to itself in a simple
                    // Waxman graph, so duplicating the head breaks the
                    // first hop.
                    let head = nodes[0].clone();
                    nodes[1] = head;
                }
                _ => panic!("channel pins a nodes array"),
            },
            _ => panic!("tree pins channel objects"),
        },
        _ => panic!("tree pinned as an array"),
    }
    let e = decisions_from_json(&net, bad.get("decisions").unwrap())
        .expect_err("a non-existent hop must be rejected");
    assert!(e.contains("no edge between"), "{e}");
}
