//! The analytic evaluation (Eq. 1/2) is validated against the mechanical
//! Monte-Carlo protocol simulation for every algorithm and topology —
//! the load-bearing substitution of this reproduction (see DESIGN.md).

use muerp::bridge::{physics_of, solution_to_plan};
use muerp::core::prelude::*;
use muerp::sim::Simulator;
use muerp::topology::TopologyKind;

const SLOTS: u64 = 60_000;
const Z: f64 = 4.4; // ~1e-5 two-sided: negligible flake risk across many checks

fn check(net: &QuantumNetwork, sol: &Solution, name: &str, seed: u64) {
    let plan = solution_to_plan(net, sol);
    let mut sim = Simulator::new(plan, physics_of(net), 7_000 + seed);
    let analytic = sim.analytic_rate();
    assert!(
        (analytic - sol.rate.value()).abs() <= 1e-9 * analytic.max(1e-300),
        "{name}: plan rate {analytic} disagrees with solution rate {}",
        sol.rate.value()
    );
    let stats = sim.run_slots(SLOTS);
    let iv = stats.estimate().wilson_interval(Z);
    assert!(
        iv.contains(analytic),
        "{name} seed {seed}: Monte-Carlo {} rejects analytic {analytic} (interval [{}, {}])",
        stats.estimate().point(),
        iv.lo,
        iv.hi
    );
}

#[test]
fn bsm_tree_solutions_match_monte_carlo() {
    for kind in TopologyKind::ALL {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.kind = kind;
        let net = spec.build(17);
        if let Ok(sol) = ConflictFree::default().solve(&net) {
            check(&net, &sol, "Alg-3", 17);
        }
        if let Ok(sol) = PrimBased::with_seed(17).solve(&net) {
            check(&net, &sol, "Alg-4", 18);
        }
    }
}

#[test]
fn chain_solutions_match_monte_carlo() {
    let net = NetworkSpec::paper_default().build(23);
    if let Ok(sol) = EQCast.solve(&net) {
        check(&net, &sol, "E-Q-CAST", 23);
    }
}

#[test]
fn fusion_solutions_match_monte_carlo() {
    // Fusion paths + the q^(n−1) GHZ measurement.
    let net = NetworkSpec::paper_default().build(29);
    if let Ok(sol) = NFusion::default().solve(&net) {
        check(&net, &sol, "N-Fusion", 29);
    }
}

#[test]
fn swap_rate_sweep_matches_monte_carlo() {
    // Eq. 1's q-dependence: same tree, varying q.
    let base = NetworkSpec::paper_default().build(31);
    for q in [0.6, 0.8, 1.0] {
        let net = base.with_physics(muerp::core::model::PhysicsParams {
            swap_success: q,
            attenuation: base.physics().attenuation,
        });
        if let Ok(sol) = PrimBased::with_seed(31).solve(&net) {
            check(&net, &sol, &format!("Alg-4 q={q}"), 31);
        }
    }
}

#[test]
fn infeasible_plan_is_never_produced() {
    // Whatever the algorithms emit must fit the simulator's capacity
    // accounting too (an independent re-check of qubit bookkeeping).
    for seed in 0..10u64 {
        let net = NetworkSpec::paper_default().build(seed);
        for outcome in [
            ConflictFree::default().solve(&net),
            PrimBased::with_seed(seed).solve(&net),
            NFusion::default().solve(&net),
            EQCast.solve(&net),
        ] {
            let Ok(sol) = outcome else { continue };
            let plan = solution_to_plan(&net, &sol);
            let caps: std::collections::HashMap<usize, u32> = net
                .switches()
                .map(|s| (s.index(), net.kind(s).qubits()))
                .collect();
            assert!(
                plan.fits_capacity(&caps),
                "seed {seed}: plan exceeds simulator capacity accounting"
            );
        }
    }
}
