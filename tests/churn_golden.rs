//! Golden churn fixture: a pinned network, a pinned seeded failure, and
//! the pinned repaired solution, checked byte-for-byte against the
//! deterministic pipeline and re-audited on every run.
//!
//! Regenerate after an intentional format or repair-ladder change with:
//!
//! ```text
//! MUERP_REGEN_FIXTURES=1 cargo test --test churn_golden
//! ```

use std::path::PathBuf;

use muerp::conformance::{derive_failure, failure_from_json, failure_to_json, Fixture};
use muerp::core::audit::audit_solution;
use muerp::core::prelude::*;
use serde_json::{Map, Value};

/// Pinned forever: the fixture seed and shape. Seed 19 was chosen
/// because its derived failure (a link cut) actually breaks the solved
/// tree and is repaired by the ladder's local-reroute rung — an
/// untouched-tree fixture would pin nothing interesting.
const SEED: u64 = 19;
const NODES: usize = 16;
const USERS: usize = 5;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/churn-waxman-16.json")
}

/// Builds the churn fixture deterministically: solve, inject the derived
/// failure, repair, and pin base + repaired solutions plus the failure.
fn fixture_source() -> String {
    let mut spec = NetworkSpec::paper_default().with_users(USERS);
    spec.topology.nodes = NODES;
    let net = spec.build(SEED);
    let base = PrimBased::with_seed(SEED)
        .solve(&net)
        .expect("the pinned fixture network is solvable");
    let failure = derive_failure(&net, SEED);
    let mut state = NetworkState::new(&net);
    state.apply(&failure.kind);
    let outcome = repair(&net, &base, &state);
    let fixed = outcome
        .solution
        .clone()
        .expect("the pinned fixture failure is repairable");
    let method = outcome.method.name();
    drop(state);
    let fixture = Fixture {
        name: "churn-waxman-16".to_string(),
        net,
        solutions: vec![("Alg-4".to_string(), base), ("repair".to_string(), fixed)],
    };
    let mut root: Map<String, Value> = match fixture.to_json() {
        Value::Object(map) => map,
        _ => unreachable!("fixtures serialize to objects"),
    };
    root.insert("failure".into(), failure_to_json(&failure));
    root.insert("repair_method".into(), Value::from(method));
    serde_json::to_string_pretty(&Value::Object(root)).expect("Value serialization is total")
}

#[test]
fn golden_churn_fixture_matches_pipeline_and_audits_clean() {
    let expected = fixture_source();
    let path = fixture_path();
    if std::env::var_os("MUERP_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, &expected)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return;
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with MUERP_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        on_disk, expected,
        "committed churn fixture drifted from the repair pipeline; \
         regenerate with MUERP_REGEN_FIXTURES=1 if intentional"
    );

    // Reload and re-verify everything from the committed bytes alone.
    let value: Value = serde_json::from_str(&on_disk).expect("fixture JSON parses");
    let fixture = Fixture::from_json(&value).expect("fixture schema parses");
    let failure = failure_from_json(&fixture.net, value.get("failure").expect("failure pinned"))
        .expect("pinned failure parses");
    assert_eq!(fixture.solutions.len(), 2, "base + repaired");
    for (algo, sol) in &fixture.solutions {
        audit_solution(&fixture.net, sol)
            .unwrap_or_else(|v| panic!("{algo} failed the audit after reload: {v}"));
    }
    // The repaired solution must fit the degraded network the pinned
    // failure leaves behind.
    let mut state = NetworkState::new(&fixture.net);
    state.apply(&failure.kind);
    let repaired = &fixture.solutions[1].1;
    assert!(
        state.admits_solution(repaired),
        "pinned repaired solution does not fit the degraded network"
    );
    assert_eq!(
        value.get("repair_method").and_then(Value::as_str),
        Some("local-reroute"),
        "the pinned failure must exercise the ladder's local-fix rung"
    );
}

#[test]
fn corrupted_churn_fixture_is_rejected_with_named_invariants() {
    let text = fixture_source();

    // Inflated claimed rates → a rate invariant, by name.
    let tampered = text.replace("\"rate\":", "\"rate\": 0.999999,\"claimed\":");
    let value: Value = serde_json::from_str(&tampered).expect("still parses");
    let loaded = Fixture::from_json(&value).expect("still schema-valid");
    let (algo, sol) = &loaded.solutions[1];
    let violation =
        audit_solution(&loaded.net, sol).expect_err("tampered repaired rate must be rejected");
    assert!(
        violation.invariant().starts_with("rate-"),
        "{algo}: expected a rate invariant, got [{}]",
        violation.invariant()
    );

    // Dropped repaired channel → a user pair left uncovered.
    let value: Value = serde_json::from_str(&text).expect("parses");
    let loaded = Fixture::from_json(&value).expect("schema-valid");
    let mut sol = loaded.solutions[1].1.clone();
    assert!(sol.channels.len() > 1, "fixture tree has multiple channels");
    sol.channels.pop();
    let violation = audit_solution(&loaded.net, &sol).expect_err("dropped channel must be caught");
    assert!(
        matches!(violation.invariant(), "user-coverage" | "rate-eq2"),
        "got [{}]",
        violation.invariant()
    );

    // Corrupted failure kind → a named schema error, not a panic.
    let bad = text.replace("\"kind\": \"", "\"kind\": \"not-a-");
    let value: Value = serde_json::from_str(&bad).expect("parses");
    let net = NetworkSpec::paper_default().with_users(USERS).build(SEED);
    let e = failure_from_json(&net, value.get("failure").expect("failure key survives"))
        .expect_err("unknown failure kind must be rejected");
    assert!(e.to_string().contains("unknown failure kind"), "{e}");
}
