//! Operational pipelines across crates: routed solutions become concrete
//! qubit assignments; the online session model and the buffered protocol
//! behave sanely on both synthetic and reference topologies.

use std::collections::HashMap;

use muerp::bridge::solution_to_plan;
use muerp::core::extensions::{simulate_online, OnlineConfig};
use muerp::core::prelude::*;
use muerp::sim::buffered::{BufferedChannel, BufferedTree};
use muerp::sim::qubit::{assign, SlotUse};
use muerp::topology::reference::nsfnet;

#[test]
fn routed_solutions_receive_concrete_qubit_assignments() {
    for seed in 0..8u64 {
        let net = NetworkSpec::paper_default().build(seed);
        for outcome in [
            ConflictFree::default().solve(&net),
            PrimBased::with_seed(seed).solve(&net),
            NFusion::default().solve(&net),
        ] {
            let Ok(sol) = outcome else { continue };
            let plan = solution_to_plan(&net, &sol);
            let caps: HashMap<usize, u32> = net
                .switches()
                .map(|s| (s.index(), net.kind(s).qubits()))
                .collect();
            // The assignment is the constructive witness of feasibility.
            let assignment = assign(&plan, &caps)
                .unwrap_or_else(|e| panic!("seed {seed}: unassignable plan: {e}"));
            // Slot demand equals the analytic qubit demand per switch.
            for (node, demand) in plan.qubit_demand() {
                assert_eq!(assignment.slots_at(node).len() as u32, demand);
            }
            // Every relay use pairs left+right at the same switch.
            let mut relays: HashMap<(usize, usize), u32> = HashMap::new();
            for (_, usage) in &assignment.uses {
                if let SlotUse::Relay {
                    channel, position, ..
                } = usage
                {
                    *relays.entry((*channel, *position)).or_insert(0) += 1;
                }
            }
            assert!(relays.values().all(|&c| c == 2), "seed {seed}");
        }
    }
}

#[test]
fn online_model_runs_on_the_nsfnet_backbone() {
    let backbone = nsfnet();
    let users: Vec<_> = [0usize, 1, 7, 10, 13]
        .map(muerp::graph::NodeId::new)
        .to_vec();
    let net = QuantumNetwork::from_spatial(
        &backbone,
        &users,
        4,
        muerp::core::model::PhysicsParams::paper_default(),
    );
    let stats = simulate_online(
        &net,
        OnlineConfig {
            arrival_prob: 0.5,
            group_size: (2, 3),
            hold_slots: (5, 15),
        },
        5_000,
        9,
    );
    assert!(stats.arrived > 1_000);
    assert_eq!(stats.arrived, stats.admitted + stats.blocked());
    assert!(stats.admitted > 0, "the backbone must admit some sessions");
    assert!(stats.mean_session_rate > 0.0);
}

#[test]
fn buffered_tree_built_from_a_routed_solution() {
    let net = NetworkSpec::paper_default().build(52);
    let sol = PrimBased::default().solve(&net).expect("feasible");
    let channel_lengths: Vec<Vec<f64>> = sol
        .channels
        .iter()
        .map(|c| c.path.edges.iter().map(|&e| net.length(e)).collect())
        .collect();
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;

    // Synchronized expectation equals 1 / (solution rate).
    let tree = BufferedTree::new(channel_lengths.clone(), q, alpha, 0);
    let sync = tree.synchronized_expected_slots();
    assert!(
        (sync - 1.0 / sol.rate.value()).abs() < 1e-6 * sync,
        "sync wait {sync} vs 1/rate {}",
        1.0 / sol.rate.value()
    );

    // Asynchronous completion is far faster for a 9-channel tree.
    let async_mean = tree.mean_slots_to_completion(60, 10);
    assert!(
        async_mean < sync * 0.2,
        "async {async_mean} vs sync {sync}: holding channels must pay off"
    );

    // Per-channel fidelity-tracked run: cutoff 0 delivers the closed form.
    let longest = channel_lengths
        .iter()
        .max_by_key(|l| l.len())
        .unwrap()
        .clone();
    let links = longest.len();
    let bc = BufferedChannel::new(longest, q, alpha, 0);
    let stats = bc.run_with_fidelity(0.98, 0.97, 30_000, 11);
    let expected = muerp::sim::fidelity::chain_fidelity(0.98, links);
    assert!(
        (stats.mean_fidelity - expected).abs() < 1e-9,
        "delivered {} vs closed-form {expected}",
        stats.mean_fidelity
    );
}

#[test]
fn hot_switches_have_high_betweenness() {
    // The analysis story: switch load under many sessions correlates
    // with betweenness. Aggregate channel usage over seeds and check the
    // most-used switch ranks in the top betweenness decile.
    use muerp::core::analysis::solution_stats;
    use muerp::graph::centrality::betweenness;
    use muerp::graph::EdgeRef;

    let mut spec = NetworkSpec::paper_default();
    spec.qubits_per_switch = 20; // remove capacity as a confounder
    let mut usage: HashMap<usize, u32> = HashMap::new();
    let net0 = spec.build(123);
    for trial in 0..10u64 {
        // Same topology, different user draws: rebuild users over the
        // same spatial graph by varying only the seed's user selection.
        let spatial = spec.topology.generate(123);
        let net = spec.build_from_spatial(&spatial, 123 ^ (trial.wrapping_mul(7919)));
        if let Ok(sol) = ConflictFree::default().solve(&net) {
            let stats = solution_stats(&net, &sol);
            for (node, load) in stats.switch_load {
                *usage.entry(node.index()).or_insert(0) += load;
            }
        }
    }
    let central = betweenness(net0.graph(), |e: EdgeRef<'_, f64>| {
        net0.physics().attenuation * *e.payload
    });
    let (&hottest, _) = usage
        .iter()
        .max_by_key(|(_, &load)| load)
        .expect("some switch was used");
    let mut ranked: Vec<f64> = central.clone();
    ranked.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let top_quartile = ranked[ranked.len() / 4];
    assert!(
        central[hottest] >= top_quartile,
        "hottest switch n{hottest} (betweenness {}) below the top quartile ({top_quartile})",
        central[hottest]
    );
}
