//! Witnesses of the paper's §III hardness results on concrete instances:
//!
//! * Theorem 1's reduction artifact: capacity turns classic connectivity
//!   into infeasibility (degree-constrained spanning tree flavor).
//! * Theorem 2's consequence: the polynomial heuristics are *strictly*
//!   suboptimal on a crafted instance where the exhaustive oracle does
//!   better — if the greedy choices were always optimal, MUERP would be
//!   in P.

use muerp::core::feasibility::{exhaustive_optimal, is_feasible_exhaustive};
use muerp::core::model::{NodeKind, PhysicsParams};
use muerp::core::prelude::*;
use muerp::graph::{Graph, NodeId};

/// The trap: a 2-qubit hub offers the best channels for two user pairs
/// but can serve only one; the greedy methods grab the best pair through
/// the hub and strand the other pair on a terrible detour, while the
/// optimum routes the *second-best* pair through the hub and the other
/// pair over a decent detour.
fn trap_instance() -> (QuantumNetwork, [NodeId; 3]) {
    let mut g: Graph<NodeKind, f64> = Graph::new();
    let u1 = g.add_node(NodeKind::User);
    let u2 = g.add_node(NodeKind::User);
    let u3 = g.add_node(NodeKind::User);
    let hub = g.add_node(NodeKind::Switch { qubits: 2 });
    let d12 = g.add_node(NodeKind::Switch { qubits: 2 }); // decent detour u1–u2
    let d13 = g.add_node(NodeKind::Switch { qubits: 2 }); // awful detour u1–u3
    g.add_edge(u1, hub, 500.0);
    g.add_edge(hub, u2, 500.0); // u1-hub-u2: q·e^{-0.10} ≈ 0.8143 (best u1u2)
    g.add_edge(hub, u3, 600.0); // u1-hub-u3: q·e^{-0.11} ≈ 0.8063
    g.add_edge(u1, d12, 600.0);
    g.add_edge(d12, u2, 600.0); // u1-d12-u2: q·e^{-0.12} ≈ 0.7982
    g.add_edge(u1, d13, 5000.0);
    g.add_edge(d13, u3, 5000.0); // u1-d13-u3: q·e^{-1.00} ≈ 0.3311
    (
        QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
        [u1, u2, u3],
    )
}

#[test]
fn greedy_heuristics_are_strictly_suboptimal_on_the_trap() {
    let (net, _) = trap_instance();
    let oracle = exhaustive_optimal(&net, 4).expect("feasible");
    let best = oracle.rate().value();
    // Optimal keeps u1-hub-u3 and routes u1-d12-u2: ≈ 0.8063 × 0.7982.
    let expected = 0.9 * (-0.11f64).exp() * 0.9 * (-0.12f64).exp();
    assert!((best - expected).abs() < 1e-9, "oracle rate {best}");

    let a3 = ConflictFree::default()
        .solve(&net)
        .expect("alg-3 finds a tree");
    let a4 = PrimBased::default()
        .solve(&net)
        .expect("alg-4 finds a tree");
    // Both greedy methods fall into the trap: ≈ 0.8143 × 0.3311.
    let trapped = 0.9 * (-0.10f64).exp() * 0.9 * (-1.0f64).exp();
    for (name, sol) in [("Alg-3", &a3), ("Alg-4", &a4)] {
        validate_solution(&net, sol).unwrap();
        assert!(
            (sol.rate.value() - trapped).abs() < 1e-9,
            "{name} rate {} (expected the trapped {trapped})",
            sol.rate.value()
        );
        assert!(
            sol.rate.value() < best * 0.75,
            "{name} should be >25% below optimal here"
        );
    }
}

#[test]
fn the_chain_baseline_fails_entirely_on_the_trap() {
    // E-Q-CAST in user order (u1, u2, u3) routes u1–u2 through the hub,
    // then cannot reach u3 at all from u2.
    let (net, _) = trap_instance();
    assert!(matches!(
        EQCast.solve(&net),
        Err(RoutingError::NoFeasibleChannel { .. })
    ));
}

#[test]
fn capacity_is_the_complexity_source() {
    // Same instance with the hub upgraded to 4 qubits: every method
    // recovers the optimum; the hardness came from the capacity bound,
    // exactly the parameter the Theorem-1 reduction controls.
    let (net, _) = trap_instance();
    let mut g = net.graph().clone();
    let hub = net
        .switches()
        .find(|&s| net.graph().degree(s) == 3)
        .expect("the hub has degree 3");
    *g.node_mut(hub) = NodeKind::Switch { qubits: 4 };
    let net = QuantumNetwork::from_graph(g, *net.physics());

    let oracle = exhaustive_optimal(&net, 4).unwrap().rate().value();
    for (name, sol) in [
        ("Alg-3", ConflictFree::default().solve(&net).unwrap()),
        ("Alg-4", PrimBased::default().solve(&net).unwrap()),
    ] {
        assert!(
            (sol.rate.value() - oracle).abs() <= 1e-9 * oracle,
            "{name}: {} vs oracle {oracle}",
            sol.rate.value()
        );
    }
}

#[test]
fn degree_constrained_spanning_tree_reduction_shape() {
    // Theorem 1 reduces DCSTP to E-MUERP by making every vertex a user
    // with a qubit budget. Emulate the correspondence on a star-plus-ring
    // instance: with "degree bound" (hub capacity) 2 the instance with
    // only hub edges is infeasible, while adding ring edges restores
    // feasibility — mirroring DCSTP where the ring provides the
    // degree-respecting tree.
    let build = |with_ring: bool| {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let users: Vec<NodeId> = (0..4).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        for &u in &users {
            g.add_edge(u, hub, 400.0);
        }
        if with_ring {
            for w in users.windows(2) {
                g.add_edge(w[0], w[1], 2000.0);
            }
        }
        QuantumNetwork::from_graph(g, PhysicsParams::paper_default())
    };
    assert!(!is_feasible_exhaustive(&build(false), 4));
    assert!(is_feasible_exhaustive(&build(true), 4));
}

#[test]
fn oracle_scales_to_five_users() {
    // Sanity: the oracle remains usable at |U| = 5 on a small mesh and
    // agrees with Algorithm 2 when capacity is sufficient.
    let mut g: Graph<NodeKind, f64> = Graph::new();
    let users: Vec<NodeId> = (0..5).map(|_| g.add_node(NodeKind::User)).collect();
    let switches: Vec<NodeId> = (0..3)
        .map(|_| g.add_node(NodeKind::Switch { qubits: 10 }))
        .collect();
    for (i, &u) in users.iter().enumerate() {
        g.add_edge(u, switches[i % 3], 700.0 + 37.0 * i as f64);
    }
    g.add_edge(switches[0], switches[1], 900.0);
    g.add_edge(switches[1], switches[2], 950.0);
    let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
    let oracle = exhaustive_optimal(&net, 6)
        .expect("feasible")
        .rate()
        .value();
    let alg2 = OptimalSufficient.solve(&net).unwrap().rate.value();
    assert!(
        (oracle - alg2).abs() <= 1e-9 * oracle,
        "oracle {oracle} vs alg2 {alg2}"
    );
}
