//! Golden fixtures: known-good solved networks pinned as JSON under
//! `tests/fixtures/`, checked byte-for-byte against the deterministic
//! generator and re-audited on every run.
//!
//! Regenerate after an intentional format or algorithm change with:
//!
//! ```text
//! MUERP_REGEN_FIXTURES=1 cargo test --test golden_fixtures
//! ```

use std::path::PathBuf;

use muerp::conformance::Fixture;
use muerp::core::algorithms::BeamSearch;
use muerp::core::audit::audit_solution;
use muerp::core::prelude::*;
use muerp::core::rate::Rate;
use muerp::topology::TopologyKind;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The deterministic fixture set. Small networks keep the committed JSON
/// reviewable; seeds and shapes are pinned forever.
fn fixture_sources() -> Vec<Fixture> {
    let cases = [
        ("waxman-16", TopologyKind::Waxman, 16, 4, 42),
        ("watts-strogatz-14", TopologyKind::WattsStrogatz, 14, 4, 7),
        ("volchenkov-18", TopologyKind::Volchenkov, 18, 5, 11),
    ];
    cases
        .into_iter()
        .map(|(name, kind, nodes, users, seed)| {
            let mut spec = NetworkSpec::paper_default().with_users(users);
            spec.topology.kind = kind;
            spec.topology.nodes = nodes;
            let net = spec.build(seed);
            let mut solutions = Vec::new();
            for (algo, outcome) in [
                ("Alg-3", ConflictFree::default().solve(&net)),
                ("Alg-4", PrimBased::with_seed(seed).solve(&net)),
                ("Beam", BeamSearch::default().solve(&net)),
                ("N-Fusion", NFusion::default().solve(&net)),
                ("E-Q-CAST", EQCast.solve(&net)),
            ] {
                if let Ok(sol) = outcome {
                    solutions.push((algo.to_string(), sol));
                }
            }
            Fixture {
                name: name.to_string(),
                net,
                solutions,
            }
        })
        .collect()
}

#[test]
fn golden_fixtures_match_generator_and_audit_clean() {
    let regen = std::env::var_os("MUERP_REGEN_FIXTURES").is_some();
    for fixture in fixture_sources() {
        assert!(
            !fixture.solutions.is_empty(),
            "{}: no algorithm solved the fixture network",
            fixture.name
        );
        let path = fixture_dir().join(format!("{}.json", fixture.name));
        let expected = fixture.to_json_string();
        if regen {
            std::fs::write(&path, &expected)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            continue;
        }
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} ({e}); regenerate with MUERP_REGEN_FIXTURES=1",
                path.display()
            )
        });
        assert_eq!(
            on_disk, expected,
            "{}: committed fixture drifted from the generator; \
             regenerate with MUERP_REGEN_FIXTURES=1 if intentional",
            fixture.name
        );
        let loaded =
            Fixture::from_json_str(&on_disk).unwrap_or_else(|e| panic!("{}: {e}", fixture.name));
        assert!(!loaded.solutions.is_empty(), "{}: empty", loaded.name);
        for (algo, sol) in &loaded.solutions {
            audit_solution(&loaded.net, sol)
                .unwrap_or_else(|v| panic!("{} / {algo} failed the audit: {v}", loaded.name));
        }
    }
}

#[test]
fn corrupted_fixtures_are_rejected_with_named_invariants() {
    let fixture = &fixture_sources()[0];
    let text = fixture.to_json_string();

    // Inflated claimed solution rate → a rate invariant by name.
    let tampered = text.replace("\"rate\":", "\"rate\": 0.999999,\"claimed\":");
    let loaded = Fixture::from_json_str(&tampered).expect("still parses");
    let (_, sol) = &loaded.solutions[0];
    let violation = audit_solution(&loaded.net, sol).expect_err("tampered rate must fail");
    assert!(
        violation.invariant().starts_with("rate-"),
        "expected a rate invariant, got [{}]",
        violation.invariant()
    );

    // In-memory corruption of the tree rate alone → Eq. 2 recomputation.
    let mut sol = fixture.solutions[0].1.clone();
    sol.rate = Rate::from_prob((sol.rate.value() * 3.0).min(1.0));
    let violation = audit_solution(&fixture.net, &sol).expect_err("inflated Eq. 2 must fail");
    assert_eq!(violation.invariant(), "rate-eq2", "got {violation}");

    // Duplicated channel → the same user pair served twice.
    let mut sol = fixture.solutions[0].1.clone();
    if sol.style == muerp::core::solver::SolutionStyle::BsmTree && !sol.channels.is_empty() {
        sol.channels.push(sol.channels[0].clone());
        let violation = audit_solution(&fixture.net, &sol).expect_err("duplicate channel");
        assert!(
            matches!(
                violation.invariant(),
                "duplicate-user-pair" | "tree-acyclicity" | "switch-capacity" | "user-coverage"
            ),
            "got [{}]",
            violation.invariant()
        );
    }

    // Dropped channel → some user pair left uncovered.
    let mut sol = fixture.solutions[0].1.clone();
    if sol.style == muerp::core::solver::SolutionStyle::BsmTree && sol.channels.len() > 1 {
        sol.channels.pop();
        let violation = audit_solution(&fixture.net, &sol).expect_err("dropped channel");
        assert!(
            matches!(violation.invariant(), "user-coverage" | "rate-eq2"),
            "got [{}]",
            violation.invariant()
        );
    }
}
