//! Generic greedy sequence shrinking shared by the delta and serve
//! oracles.
//!
//! Both oracles report counterexamples as *sequences* — capacity deltas
//! for the cache oracle, requests for the admission oracle — and both
//! want the same minimization: drop any single element whose removal
//! keeps the check failing, repeat until every survivor is
//! load-bearing. [`greedy_shrink`] is that loop, parameterized over the
//! element type and the failing check; the oracles keep only their
//! domain-specific `still_fails` closures.

/// Greedily shrinks a failing sequence: repeatedly drops the first
/// element whose removal keeps `still_fails` returning an error,
/// restarting the scan after every accepted removal, until no single
/// removal reproduces the failure. Returns the minimal sequence, the
/// error it produces, and the number of accepted removals.
///
/// `still_fails` must be deterministic — the loop assumes a candidate
/// that failed once fails again on the final sequence.
pub fn greedy_shrink<T: Clone, E>(
    items: Vec<T>,
    error: E,
    mut still_fails: impl FnMut(&[T]) -> Result<(), E>,
) -> (Vec<T>, E, usize) {
    let mut current = items;
    let mut current_error = error;
    let mut steps = 0;
    'outer: loop {
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let Err(e) = still_fails(&candidate) {
                current = candidate;
                current_error = e;
                steps += 1;
                continue 'outer;
            }
        }
        return (current, current_error, steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "Fails" whenever the sequence still contains both 3 and 7: the
    /// shrinker must strip everything else and keep exactly those two,
    /// in order.
    #[test]
    fn shrinks_to_the_load_bearing_core() {
        let items: Vec<u32> = (0..10).collect();
        let check = |s: &[u32]| -> Result<(), String> {
            if s.contains(&3) && s.contains(&7) {
                Err(format!("{} items", s.len()))
            } else {
                Ok(())
            }
        };
        let error = check(&items).expect_err("full sequence fails");
        let (minimal, final_error, steps) = greedy_shrink(items, error, check);
        assert_eq!(minimal, [3, 7]);
        assert_eq!(final_error, "2 items");
        assert_eq!(steps, 8);
    }

    #[test]
    fn irreducible_sequence_is_returned_unchanged() {
        let items = vec![1u32, 2];
        let check = |s: &[u32]| -> Result<(), &'static str> {
            if s.len() == 2 {
                Err("needs both")
            } else {
                Ok(())
            }
        };
        let (minimal, _, steps) = greedy_shrink(items.clone(), "seed error", check);
        assert_eq!(minimal, items);
        assert_eq!(steps, 0);
    }

    #[test]
    fn empty_failing_sequence_is_a_fixed_point() {
        let (minimal, error, steps) =
            greedy_shrink(Vec::<u32>::new(), "always", |_| Err::<(), _>("always"));
        assert!(minimal.is_empty());
        assert_eq!(error, "always");
        assert_eq!(steps, 0);
    }
}
