//! Metamorphic oracles: relations between *transformed* instances that
//! must hold without knowing the right answer for either one.
//!
//! * **Qubit monotonicity** — granting every switch more qubits only
//!   enlarges the feasible set, so an optimal solver's rate can never
//!   drop. The suite heuristics satisfy the same relation on every
//!   fixture this harness pins (and the fuzz driver keeps checking it);
//!   a drop is treated as a conformance failure.
//! * **Scaling equivalence** — Eq. 1 depends on fiber lengths only via
//!   the products `α·Lᵢ`, so multiplying every length by `c` must be
//!   observationally identical to multiplying the attenuation by `c`:
//!   identical link costs, identical algorithm decisions, identical
//!   rates (up to one rounding ulp per factor).
//! * **Scaling law** — for a *fixed* tree, scaling lengths by `c`
//!   transforms each channel rate exactly per Eq. 1:
//!   `cost' = c·(α·ΣL) + (l−1)·(−ln q)`.
//! * **Relabeling invariance** — permuting vertex ids (preserving the
//!   user-list order) changes nothing an algorithm may legitimately
//!   depend on, so rates must be invariant.

use muerp_core::audit::{AuditViolation, RATE_TOLERANCE};
use muerp_core::model::NodeKind;
use muerp_core::prelude::*;
use qnet_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::differential::audited_cost;

/// A violated metamorphic relation.
#[derive(Clone, Debug, PartialEq)]
pub enum MetamorphicFailure {
    /// A solution involved in a metamorphic pair failed the audit.
    Audit {
        /// Offending algorithm.
        algo: &'static str,
        /// The violated invariant.
        violation: AuditViolation,
    },
    /// Granting switches more qubits lowered the rate.
    QubitMonotonicity {
        /// Offending algorithm.
        algo: &'static str,
        /// Negative-log rate on the original capacities.
        base_cost: f64,
        /// Negative-log rate after the grant (higher = worse).
        granted_cost: f64,
    },
    /// Scaling lengths by `c` and scaling attenuation by `c` disagreed.
    ScalingEquivalence {
        /// Offending algorithm.
        algo: &'static str,
        /// Negative-log rate on the length-scaled copy.
        scaled_cost: f64,
        /// Negative-log rate on the attenuation-scaled copy.
        attenuated_cost: f64,
    },
    /// A fixed channel's rate did not transform per Eq. 1 under scaling.
    ScalingLaw {
        /// Index of the channel in the solution.
        index: usize,
        /// Cost predicted by the Eq. 1 transform.
        expected_cost: f64,
        /// Cost actually recomputed on the scaled network.
        actual_cost: f64,
    },
    /// A vertex relabeling changed the rate.
    RelabelingVariance {
        /// Offending algorithm.
        algo: &'static str,
        /// Negative-log rate on the original labeling.
        original_cost: f64,
        /// Negative-log rate on the relabeled copy.
        relabeled_cost: f64,
    },
}

impl std::fmt::Display for MetamorphicFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetamorphicFailure::Audit { algo, violation } => {
                write!(f, "{algo}: audit violation {violation}")
            }
            MetamorphicFailure::QubitMonotonicity {
                algo,
                base_cost,
                granted_cost,
            } => write!(
                f,
                "{algo}: granting qubits raised the cost {base_cost} -> \
                 {granted_cost} (rate dropped)"
            ),
            MetamorphicFailure::ScalingEquivalence {
                algo,
                scaled_cost,
                attenuated_cost,
            } => write!(
                f,
                "{algo}: lengths*c gave cost {scaled_cost} but attenuation*c \
                 gave {attenuated_cost}"
            ),
            MetamorphicFailure::ScalingLaw {
                index,
                expected_cost,
                actual_cost,
            } => write!(
                f,
                "channel {index}: Eq. 1 predicts scaled cost {expected_cost}, \
                 recomputation gives {actual_cost}"
            ),
            MetamorphicFailure::RelabelingVariance {
                algo,
                original_cost,
                relabeled_cost,
            } => write!(
                f,
                "{algo}: relabeling changed the cost {original_cost} -> \
                 {relabeled_cost}"
            ),
        }
    }
}

impl std::error::Error for MetamorphicFailure {}

fn lift(algo: &'static str) -> impl Fn(crate::ConformanceError) -> MetamorphicFailure {
    move |e| match e {
        crate::ConformanceError::Audit { violation, .. } => {
            MetamorphicFailure::Audit { algo, violation }
        }
        other => unreachable!("audited_cost only fails with Audit: {other}"),
    }
}

/// Returns a copy of `net` where every switch has `extra` additional
/// qubits, preserving user order and physics.
pub fn with_bonus_qubits(net: &QuantumNetwork, extra: u32) -> QuantumNetwork {
    let mut graph = net.graph().clone();
    for v in net.graph().node_ids() {
        if let NodeKind::Switch { qubits } = net.kind(v) {
            *graph.node_mut(v) = NodeKind::Switch {
                qubits: qubits.saturating_add(extra),
            };
        }
    }
    QuantumNetwork::from_parts(graph, net.users().to_vec(), *net.physics())
}

/// Returns a copy of `net` with vertex ids permuted by `perm`
/// (`perm[old] = new`), preserving the *order* of the user list so
/// user-order-sensitive algorithms behave identically.
///
/// # Panics
///
/// Panics when `perm` is not a permutation of `0..node_count`.
pub fn relabel(net: &QuantumNetwork, perm: &[usize]) -> QuantumNetwork {
    let g = net.graph();
    let n = g.node_count();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut inv = vec![usize::MAX; n];
    for (old, &new) in perm.iter().enumerate() {
        assert!(new < n && inv[new] == usize::MAX, "not a permutation");
        inv[new] = old;
    }
    let mut out: Graph<NodeKind, f64> = Graph::with_capacity(n, g.edge_count());
    for &old in &inv {
        out.add_node(*g.node(NodeId::new(old)));
    }
    for e in g.edge_refs() {
        out.add_edge(
            NodeId::new(perm[e.a.index()]),
            NodeId::new(perm[e.b.index()]),
            *e.payload,
        );
    }
    let users = net
        .users()
        .iter()
        .map(|u| NodeId::new(perm[u.index()]))
        .collect();
    QuantumNetwork::from_parts(out, users, *net.physics())
}

/// Checks that granting every switch `extra` more qubits never lowers
/// `algo`'s rate on `net`.
///
/// # Errors
///
/// Returns the violated relation (or an audit failure of either run).
pub fn check_qubit_monotonicity<A: RoutingAlgorithm>(
    net: &QuantumNetwork,
    algo: &A,
    extra: u32,
) -> Result<(), MetamorphicFailure> {
    let name = algo.name();
    let base_cost = audited_cost(net, algo, name).map_err(lift(name))?;
    let granted = with_bonus_qubits(net, extra);
    let granted_cost = audited_cost(&granted, algo, name).map_err(lift(name))?;
    // rate must not drop ⇔ cost must not rise.
    if granted_cost > base_cost + RATE_TOLERANCE * base_cost.abs().max(1.0) {
        return Err(MetamorphicFailure::QubitMonotonicity {
            algo: name,
            base_cost,
            granted_cost,
        });
    }
    Ok(())
}

/// Relative cost tolerance of the scaling equivalence: the two copies
/// compute `α·(c·L)` vs `(α·c)·L`, which may differ by one rounding ulp
/// per factor, amplified through `exp`/`ln` round-trips.
const EQUIVALENCE_TOLERANCE: f64 = 1e-9;

/// Checks that scaling every fiber length by `factor` is observationally
/// identical to scaling the attenuation by `factor` for `algo` on `net`.
///
/// # Errors
///
/// Returns the violated relation (or an audit failure of either run).
pub fn check_scaling_equivalence<A: RoutingAlgorithm>(
    net: &QuantumNetwork,
    algo: &A,
    factor: f64,
) -> Result<(), MetamorphicFailure> {
    let name = algo.name();
    let scaled = net.with_scaled_lengths(factor);
    let attenuated = net.with_physics(PhysicsParams {
        swap_success: net.physics().swap_success,
        attenuation: net.physics().attenuation * factor,
    });
    let scaled_cost = audited_cost(&scaled, algo, name).map_err(lift(name))?;
    let attenuated_cost = audited_cost(&attenuated, algo, name).map_err(lift(name))?;
    let both_infeasible = scaled_cost.is_infinite() && attenuated_cost.is_infinite();
    if !both_infeasible
        && (scaled_cost - attenuated_cost).abs()
            > EQUIVALENCE_TOLERANCE * scaled_cost.abs().max(1.0)
    {
        return Err(MetamorphicFailure::ScalingEquivalence {
            algo: name,
            scaled_cost,
            attenuated_cost,
        });
    }
    Ok(())
}

/// Checks that a *fixed* BSM tree's per-channel rates transform exactly
/// per Eq. 1 when every fiber length is scaled by `factor`:
/// `cost' = factor · (α·ΣL) + (l−1)·(−ln q)`.
///
/// # Errors
///
/// Returns [`MetamorphicFailure::ScalingLaw`] for the first channel
/// whose recomputed rate deviates from the prediction.
pub fn check_scaling_law(
    net: &QuantumNetwork,
    solution: &Solution,
    factor: f64,
) -> Result<(), MetamorphicFailure> {
    let scaled = net.with_scaled_lengths(factor);
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;
    for (index, channel) in solution.channels.iter().enumerate() {
        let total_length: f64 = channel.path.edges.iter().map(|&e| net.length(e)).sum();
        let swap_cost = -(channel.link_count() as f64 - 1.0) * q.ln();
        let expected_cost = factor * (alpha * total_length) + swap_cost;
        let actual_cost = Channel::from_path(&scaled, channel.path.clone())
            .rate
            .neg_log()
            .cost();
        if (expected_cost - actual_cost).abs() > EQUIVALENCE_TOLERANCE * expected_cost.max(1.0) {
            return Err(MetamorphicFailure::ScalingLaw {
                index,
                expected_cost,
                actual_cost,
            });
        }
    }
    Ok(())
}

/// Checks that permuting vertex ids (with `perm_seed` choosing the
/// permutation) leaves `algo`'s rate on `net` invariant.
///
/// # Errors
///
/// Returns the violated relation (or an audit failure of either run).
pub fn check_relabeling_invariance<A: RoutingAlgorithm>(
    net: &QuantumNetwork,
    algo: &A,
    perm_seed: u64,
) -> Result<(), MetamorphicFailure> {
    let name = algo.name();
    let mut perm: Vec<usize> = (0..net.graph().node_count()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
    perm.shuffle(&mut rng);
    let relabeled = relabel(net, &perm);
    let original_cost = audited_cost(net, algo, name).map_err(lift(name))?;
    let relabeled_cost = audited_cost(&relabeled, algo, name).map_err(lift(name))?;
    let both_infeasible = original_cost.is_infinite() && relabeled_cost.is_infinite();
    if !both_infeasible
        && (original_cost - relabeled_cost).abs()
            > EQUIVALENCE_TOLERANCE * original_cost.abs().max(1.0)
    {
        return Err(MetamorphicFailure::RelabelingVariance {
            algo: name,
            original_cost,
            relabeled_cost,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::algorithms::{BeamSearch, ConflictFree, PrimBased};
    use muerp_core::model::NetworkSpec;

    fn nets() -> impl Iterator<Item = QuantumNetwork> {
        (0..4).map(|seed| NetworkSpec::paper_default().with_users(6).build(seed))
    }

    #[test]
    fn qubit_monotonicity_holds_for_suite_heuristics() {
        for net in nets() {
            for extra in [2, 10] {
                check_qubit_monotonicity(&net, &ConflictFree::default(), extra).unwrap();
                check_qubit_monotonicity(&net, &PrimBased::with_seed(1), extra).unwrap();
                check_qubit_monotonicity(&net, &BeamSearch::default(), extra).unwrap();
            }
        }
    }

    #[test]
    fn scaling_equivalence_holds_for_suite_heuristics() {
        for net in nets() {
            for factor in [0.5, 2.0, 10.0] {
                check_scaling_equivalence(&net, &ConflictFree::default(), factor).unwrap();
                check_scaling_equivalence(&net, &PrimBased::with_seed(1), factor).unwrap();
            }
        }
    }

    #[test]
    fn scaling_law_holds_for_solved_trees() {
        for net in nets() {
            let Ok(solution) = PrimBased::with_seed(2).solve(&net) else {
                continue;
            };
            for factor in [0.25, 3.0] {
                check_scaling_law(&net, &solution, factor).unwrap();
            }
        }
    }

    #[test]
    fn relabeling_invariance_holds_for_suite_heuristics() {
        for net in nets() {
            for perm_seed in [11, 12] {
                check_relabeling_invariance(&net, &ConflictFree::default(), perm_seed).unwrap();
                check_relabeling_invariance(&net, &PrimBased::with_seed(1), perm_seed).unwrap();
            }
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let net = NetworkSpec::paper_default().build(5);
        let n = net.graph().node_count();
        let perm: Vec<usize> = (0..n).map(|i| (i + 7) % n).collect();
        let relabeled = relabel(&net, &perm);
        assert_eq!(relabeled.graph().node_count(), n);
        assert_eq!(relabeled.graph().edge_count(), net.graph().edge_count());
        assert_eq!(relabeled.user_count(), net.user_count());
        // User order is preserved through the permutation.
        for (old, new) in net.users().iter().zip(relabeled.users()) {
            assert_eq!(perm[old.index()], new.index());
            assert!(relabeled.is_user(*new));
        }
        // Total fiber length is invariant.
        let total = |q: &QuantumNetwork| -> f64 { q.graph().edge_refs().map(|e| *e.payload).sum() };
        assert!((total(&net) - total(&relabeled)).abs() < 1e-9);
    }

    #[test]
    fn with_bonus_qubits_only_touches_switches() {
        let net = NetworkSpec::paper_default().build(6);
        let granted = with_bonus_qubits(&net, 3);
        assert_eq!(granted.users(), net.users());
        for s in net.switches() {
            assert_eq!(granted.kind(s).qubits(), net.kind(s).qubits() + 3);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutations() {
        let net = NetworkSpec::paper_default().build(1);
        let perm = vec![0; net.graph().node_count()];
        relabel(&net, &perm);
    }
}
