//! Churn conformance: one seeded failure per trial, pushed through the
//! survivability repair ladder and checked against every oracle we have.
//!
//! For a solved instance, [`churn_check`] injects a single
//! deterministic fault ([`derive_failure`]), runs
//! [`muerp_core::survive::repair`], and verifies:
//!
//! 1. **Audit-clean** — a repaired solution passes the full independent
//!    invariant audit against the *original* network (repair never
//!    invents fibers or capacity).
//! 2. **Degraded-valid** — the degraded network can actually carry the
//!    repaired tree: no channel crosses a dead element and per-switch
//!    qubit demand fits the surviving memory.
//! 3. **Do-nothing bound** — when the failure leaves the original
//!    solution intact, repair must not lose rate.
//! 4. **Oracle envelope** — on brute-forceable instances the repaired
//!    rate may not beat the exhaustive optimum of the materialized
//!    degraded network; and if that complete search proves the degraded
//!    instance infeasible, repair must not claim success.
//! 5. **Determinism** — repairing twice yields the same method and
//!    bit-identical rate.

use muerp_core::audit::{audit_solution, RATE_TOLERANCE};
use muerp_core::feasibility::exhaustive_optimal;
use muerp_core::prelude::*;
use qnet_graph::{EdgeId, NodeId};
use serde_json::{Map, Value};

use crate::differential::ConformanceError;
use crate::fixture::FixtureError;

/// Largest instance the degraded-network oracle will brute-force
/// (matches the differential oracle's limits).
const ORACLE_MAX_USERS: usize = 6;
const ORACLE_MAX_NODES: usize = 10;

/// What [`churn_check`] measured on one instance.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// The injected failure.
    pub failure: Failure,
    /// How the ladder resolved it.
    pub method: RepairMethod,
    /// Channel-finder searches the repair spent.
    pub searches: u64,
    /// Negative-log rate of the repaired solution (`+∞` if the ladder
    /// gave up, or the base instance was infeasible to begin with).
    pub repaired_cost: f64,
}

/// Draws the trial's single failure, deterministically from `seed`.
///
/// Delegates to [`FailurePlan::random`] with a one-failure budget so the
/// fault distribution (link cut / switch death / capacity loss) matches
/// the multi-failure churn experiments.
pub fn derive_failure(net: &QuantumNetwork, seed: u64) -> Failure {
    let plan = FailurePlan::random(net, 1, 1, seed);
    plan.failures
        .first()
        .copied()
        .expect("a routable network has at least one fiber to fail")
}

fn cost_tol(cost: f64) -> f64 {
    RATE_TOLERANCE * cost.abs().max(1.0)
}

/// Runs the single-failure churn check described in the module docs.
///
/// # Errors
///
/// Returns the first [`ConformanceError`] found: an audit violation of
/// the repaired solution, or a [`ConformanceError::RepairUnsound`] for
/// degraded-validity, bound, or determinism failures.
pub fn churn_check(net: &QuantumNetwork, seed: u64) -> Result<ChurnReport, ConformanceError> {
    let failure = derive_failure(net, seed);
    let base = match PrimBased::with_seed(seed).solve(net) {
        Ok(solution) => solution,
        // Nothing to repair on an infeasible base instance.
        Err(_) => {
            return Ok(ChurnReport {
                failure,
                method: RepairMethod::Unrepairable,
                searches: 0,
                repaired_cost: f64::INFINITY,
            })
        }
    };

    let mut state = NetworkState::new(net);
    state.apply(&failure.kind);

    let outcome = repair(net, &base, &state);
    let rerun = repair(net, &base, &state);
    if rerun.method != outcome.method
        || rerun.rate_value().to_bits() != outcome.rate_value().to_bits()
    {
        return Err(ConformanceError::RepairUnsound {
            detail: format!(
                "non-deterministic repair: {} (rate {}) vs {} (rate {})",
                outcome.method.name(),
                outcome.rate_value(),
                rerun.method.name(),
                rerun.rate_value(),
            ),
        });
    }

    let oracle = oracle_cost(&state);
    let repaired_cost = match &outcome.solution {
        Some(fixed) => {
            audit_solution(net, fixed).map_err(|violation| ConformanceError::Audit {
                algo: "repair",
                violation,
            })?;
            if !state.admits_solution(fixed) {
                return Err(ConformanceError::RepairUnsound {
                    detail: format!(
                        "{}: repaired solution does not fit the degraded network",
                        outcome.method.name()
                    ),
                });
            }
            let cost = fixed.rate.neg_log().cost();
            if state.admits_solution(&base) {
                let base_cost = base.rate.neg_log().cost();
                if cost > base_cost + cost_tol(base_cost) {
                    return Err(ConformanceError::RepairUnsound {
                        detail: format!(
                            "{}: repair lost rate (cost {cost}) although doing \
                             nothing keeps {base_cost}",
                            outcome.method.name()
                        ),
                    });
                }
            }
            match oracle {
                Some(optimal) if cost < optimal - cost_tol(optimal) => {
                    return Err(ConformanceError::RepairUnsound {
                        detail: format!(
                            "{}: repaired cost {cost} beats the exhaustive degraded \
                             optimum {optimal}",
                            outcome.method.name()
                        ),
                    });
                }
                _ => {}
            }
            cost
        }
        None => f64::INFINITY,
    };

    Ok(ChurnReport {
        failure,
        method: outcome.method,
        searches: outcome.searches,
        repaired_cost,
    })
}

/// Serializes a failure for golden churn fixtures:
/// `{"kind": "link-cut", "edge": 3, "at_slot": 0}` /
/// `{"kind": "switch-death", "node": 7, ...}` /
/// `{"kind": "capacity-loss", "node": 7, "qubits": 2, ...}`.
pub fn failure_to_json(failure: &Failure) -> Value {
    let mut out = Map::new();
    out.insert("kind".into(), Value::from(failure.kind.name()));
    match failure.kind {
        FailureKind::LinkCut { edge } => {
            out.insert("edge".into(), Value::from(edge.index()));
        }
        FailureKind::SwitchDeath { node } => {
            out.insert("node".into(), Value::from(node.index()));
        }
        FailureKind::CapacityLoss { node, qubits } => {
            out.insert("node".into(), Value::from(node.index()));
            out.insert("qubits".into(), Value::from(qubits));
        }
    }
    out.insert("at_slot".into(), Value::from(failure.at_slot));
    Value::Object(out)
}

fn id_field(value: &Value, key: &str, limit: usize) -> Result<usize, FixtureError> {
    let raw = value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| FixtureError(format!("failure field `{key}` is not an index")))?;
    usize::try_from(raw)
        .ok()
        .filter(|&i| i < limit)
        .ok_or_else(|| FixtureError(format!("failure `{key}` {raw} out of range ({limit})")))
}

/// Parses a failure from the golden-fixture schema of
/// [`failure_to_json`], validating ids against `net`.
///
/// # Errors
///
/// Returns a [`FixtureError`] naming the first malformed field.
pub fn failure_from_json(net: &QuantumNetwork, value: &Value) -> Result<Failure, FixtureError> {
    let kind = match value.get("kind").and_then(Value::as_str) {
        Some("link-cut") => FailureKind::LinkCut {
            edge: EdgeId::new(id_field(value, "edge", net.graph().edge_count())?),
        },
        Some("switch-death") => FailureKind::SwitchDeath {
            node: NodeId::new(id_field(value, "node", net.graph().node_count())?),
        },
        Some("capacity-loss") => FailureKind::CapacityLoss {
            node: NodeId::new(id_field(value, "node", net.graph().node_count())?),
            qubits: value
                .get("qubits")
                .and_then(Value::as_u64)
                .and_then(|q| u32::try_from(q).ok())
                .ok_or_else(|| FixtureError("failure field `qubits` is not a count".into()))?,
        },
        Some(other) => return Err(FixtureError(format!("unknown failure kind `{other}`"))),
        None => return Err(FixtureError("missing failure field `kind`".into())),
    };
    let at_slot = value
        .get("at_slot")
        .and_then(Value::as_u64)
        .ok_or_else(|| FixtureError("failure field `at_slot` is not a slot".into()))?;
    Ok(Failure { kind, at_slot })
}

/// Negative-log rate of the exhaustive optimum on the materialized
/// degraded network, when small enough to brute-force. `Some(+∞)` means
/// the complete search proved the degraded instance infeasible.
fn oracle_cost(state: &NetworkState<'_>) -> Option<f64> {
    let degraded = state.materialize();
    let n = degraded.graph().node_count();
    if degraded.user_count() > ORACLE_MAX_USERS || n > ORACLE_MAX_NODES {
        return None;
    }
    match exhaustive_optimal(&degraded, n.saturating_sub(1)) {
        Some(tree) => Some(Solution::from_tree(tree).rate.neg_log().cost()),
        None => Some(f64::INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::NetworkSpec;

    #[test]
    fn derived_failure_is_deterministic() {
        let net = NetworkSpec::paper_default().build(11);
        assert_eq!(derive_failure(&net, 42), derive_failure(&net, 42));
    }

    #[test]
    fn churn_check_is_clean_on_the_paper_family() {
        for seed in 0..8 {
            let net = NetworkSpec::paper_default().build(seed);
            let report = churn_check(&net, seed).expect("churn check must pass");
            assert!(
                report.searches > 0 || report.method == RepairMethod::Untouched,
                "a non-trivial repair must have searched"
            );
        }
    }

    #[test]
    fn failure_json_roundtrips_and_rejects_garbage() {
        let net = NetworkSpec::paper_default().build(3);
        for seed in 0..12 {
            let failure = derive_failure(&net, seed);
            let json = failure_to_json(&failure);
            let back = failure_from_json(&net, &json).expect("roundtrip");
            assert_eq!(back, failure);
        }
        let bad: Value =
            serde_json::from_str(r#"{"kind": "meteor-strike", "at_slot": 0}"#).unwrap();
        let e = failure_from_json(&net, &bad).unwrap_err();
        assert!(e.to_string().contains("meteor-strike"), "{e}");
        let out_of_range: Value =
            serde_json::from_str(r#"{"kind": "link-cut", "edge": 1000000, "at_slot": 0}"#).unwrap();
        assert!(failure_from_json(&net, &out_of_range).is_err());
    }

    #[test]
    fn churn_check_is_clean_on_small_oracle_instances() {
        // Small enough that the degraded-network oracle actually runs.
        let spec = NetworkSpec {
            users: 3,
            ..NetworkSpec::paper_default()
        };
        let mut spec = spec;
        spec.topology.nodes = 10;
        for seed in 0..6 {
            let net = spec.build(seed);
            churn_check(&net, seed).expect("oracle-bounded churn check must pass");
        }
    }
}
