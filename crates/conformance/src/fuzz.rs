//! Deterministic seeded fuzzing: random topology specs swept through
//! generate → solve → audit, with counterexample shrinking.
//!
//! Every trial is a pure function of `(base_seed, trial index)`: the
//! trial seed derives both a random [`NetworkSpec`] from the
//! paper-default family (generator kind, node count, degree, user
//! count, per-switch qubits) and the generated instance itself, so a
//! failing seed printed by CI reproduces exactly on any machine.
//!
//! A failing trial is **shrunk** before reporting: the driver greedily
//! retries strictly smaller specs — fewer nodes
//! ([`TopologySpec::shrink_candidates`]), fewer users, fewer qubits,
//! lower degree — keeping any candidate on which the same check still
//! fails, until no smaller spec reproduces the failure. The minimal
//! counterexample (plus the full solved-network fixture) is what lands
//! in the report.

use muerp_core::model::{NetworkSpec, PhysicsParams};
use qnet_topology::{TopologyKind, TopologySpec};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde_json::{Map, Value};

use crate::churn::churn_check;
use crate::delta::delta_check;
use crate::differential::{differential_check, ConformanceError};
use crate::serve::serve_check;

/// Configuration of a fuzz run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Number of trials to run.
    pub budget: usize,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Also run the churn oracle per trial: inject one seeded failure,
    /// repair it, and check the repair invariants (`repro fuzz
    /// --churn`).
    pub churn: bool,
    /// Also run the delta oracle per trial: push a seeded capacity
    /// delta sequence through the dirty-set channel-finder cache and
    /// cross-check every step against a cold recomputation (`repro
    /// fuzz --delta`).
    pub delta: bool,
    /// Also run the serve oracle per trial: feed a seeded request
    /// script to the batched admission engine and the sequential FCFS
    /// reference and compare every decision (`repro fuzz --serve`).
    pub serve: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            budget: 100,
            base_seed: 0,
            churn: false,
            delta: false,
            serve: false,
        }
    }
}

/// One reproducible fuzz case: a spec plus the seed that generated it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FuzzCase {
    /// The instance specification.
    pub spec: NetworkSpec,
    /// Seed for both topology generation and the randomized algorithms.
    pub seed: u64,
    /// `true` when the trial also exercises failure injection + repair.
    pub churn: bool,
    /// `true` when the trial also exercises the delta-cache oracle.
    pub delta: bool,
    /// `true` when the trial also exercises the batched-admission
    /// oracle.
    pub serve: bool,
}

impl FuzzCase {
    /// Runs the conformance check this driver fuzzes: the differential
    /// oracle, plus the churn oracle when [`FuzzCase::churn`] is set
    /// and the delta oracle when [`FuzzCase::delta`] is set.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConformanceError`] found on the generated
    /// instance.
    pub fn check(&self) -> Result<(), ConformanceError> {
        let net = self.spec.build(self.seed);
        differential_check(&net, self.seed)?;
        if self.churn {
            churn_check(&net, self.seed)?;
        }
        if self.delta {
            delta_check(&net, self.seed)?;
        }
        if self.serve {
            serve_check(&net, self.seed)?;
        }
        Ok(())
    }

    /// Serializes the case for counterexample reports.
    pub fn to_json(&self) -> Value {
        let mut out = Map::new();
        out.insert("seed".into(), Value::from(self.seed));
        out.insert(
            "topology".into(),
            Value::from(self.spec.topology.kind.name()),
        );
        out.insert("nodes".into(), Value::from(self.spec.topology.nodes));
        out.insert(
            "avg_degree".into(),
            Value::from(self.spec.topology.avg_degree),
        );
        out.insert("area".into(), Value::from(self.spec.topology.area));
        out.insert("users".into(), Value::from(self.spec.users));
        out.insert(
            "qubits_per_switch".into(),
            Value::from(self.spec.qubits_per_switch),
        );
        out.insert("churn".into(), Value::from(self.churn));
        out.insert("delta".into(), Value::from(self.delta));
        out.insert("serve".into(), Value::from(self.serve));
        Value::Object(out)
    }
}

/// A shrunk, reproducible conformance failure.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The case as originally drawn.
    pub original: FuzzCase,
    /// The minimal case that still fails (== `original` when no smaller
    /// spec reproduces it).
    pub shrunk: FuzzCase,
    /// The error on the *shrunk* case.
    pub error: ConformanceError,
    /// Number of successful shrink steps taken.
    pub shrink_steps: usize,
}

impl FuzzFailure {
    /// The named invariant, when the failure is an audit violation.
    pub fn invariant(&self) -> Option<&'static str> {
        match &self.error {
            ConformanceError::Audit { violation, .. } => Some(violation.invariant()),
            _ => None,
        }
    }

    /// Serializes the failure as a counterexample report.
    pub fn to_json(&self) -> Value {
        let mut out = Map::new();
        out.insert("original".into(), self.original.to_json());
        out.insert("shrunk".into(), self.shrunk.to_json());
        out.insert("shrink_steps".into(), Value::from(self.shrink_steps));
        out.insert("error".into(), Value::from(self.error.to_string()));
        out.insert(
            "invariant".into(),
            self.invariant().map_or(Value::Null, Value::from),
        );
        Value::Object(out)
    }
}

/// Result of a fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzOutcome {
    /// Trials executed.
    pub trials: usize,
    /// Shrunk failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzOutcome {
    /// `true` when no trial failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Serializes the whole outcome (CI uploads this as an artifact on
    /// failure).
    pub fn to_json(&self) -> Value {
        let mut out = Map::new();
        out.insert("trials".into(), Value::from(self.trials));
        out.insert(
            "failures".into(),
            Value::Array(self.failures.iter().map(FuzzFailure::to_json).collect()),
        );
        Value::Object(out)
    }
}

/// Smallest spec the shrinker will propose.
const MIN_NODES: usize = 8;
const MIN_USERS: usize = 3;

/// Draws trial `i`'s case from the paper-default family: one of the
/// three §V-A generators, 12–60 nodes, degree 4 or 6, 3–10 users,
/// 2–6 qubits per switch, paper physics.
pub fn derive_case(base_seed: u64, trial: u64) -> FuzzCase {
    let seed = base_seed.wrapping_add(trial);
    // Decorrelate the spec choice from the topology seed.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0f0_23c7_a11d_a7e5);
    let kind = *TopologyKind::ALL.choose(&mut rng).expect("non-empty");
    let nodes = rng.random_range(12..=60usize);
    let avg_degree = *[4.0, 6.0].choose(&mut rng).expect("non-empty");
    let users = rng.random_range(MIN_USERS..=(nodes / 4).clamp(MIN_USERS, 10));
    let qubits_per_switch = *[2u32, 3, 4, 6].choose(&mut rng).expect("non-empty");
    FuzzCase {
        spec: NetworkSpec {
            topology: TopologySpec {
                kind,
                nodes,
                avg_degree,
                area: 10_000.0,
            },
            users,
            qubits_per_switch,
            physics: PhysicsParams::paper_default(),
        },
        seed,
        churn: false,
        delta: false,
        serve: false,
    }
}

/// Strictly smaller candidate specs for shrinking, most aggressive
/// first: topology shrinks ([`TopologySpec::shrink_candidates`]), then
/// one user fewer, then one qubit fewer per switch.
pub fn shrink_spec(spec: &NetworkSpec) -> Vec<NetworkSpec> {
    let mut out: Vec<NetworkSpec> = spec
        .topology
        .shrink_candidates(MIN_NODES)
        .into_iter()
        .filter(|t| t.nodes > spec.users)
        .map(|topology| NetworkSpec { topology, ..*spec })
        .collect();
    if spec.users > MIN_USERS {
        out.push(NetworkSpec {
            users: spec.users - 1,
            ..*spec
        });
    }
    if spec.qubits_per_switch > 2 {
        out.push(NetworkSpec {
            qubits_per_switch: spec.qubits_per_switch - 1,
            ..*spec
        });
    }
    out
}

/// Greedily shrinks a failing case: accepts the first strictly smaller
/// candidate on which [`FuzzCase::check`] still fails, and repeats until
/// none does. Returns the minimal case, its error, and the number of
/// accepted steps.
pub fn shrink_failure(
    failing: FuzzCase,
    error: ConformanceError,
) -> (FuzzCase, ConformanceError, usize) {
    let mut current = failing;
    let mut current_error = error;
    let mut steps = 0;
    'outer: loop {
        for candidate_spec in shrink_spec(&current.spec) {
            let candidate = FuzzCase {
                spec: candidate_spec,
                seed: current.seed,
                churn: current.churn,
                delta: current.delta,
                serve: current.serve,
            };
            if let Err(e) = run_case(candidate) {
                current = candidate;
                current_error = e;
                steps += 1;
                continue 'outer;
            }
        }
        return (current, current_error, steps);
    }
}

/// Runs one case, converting a panic anywhere in generate/solve/audit
/// into a conformance error so the seed is never lost.
fn run_case(case: FuzzCase) -> Result<(), ConformanceError> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case.check()));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic");
            Err(ConformanceError::Panicked {
                message: msg.to_string(),
            })
        }
    }
}

/// Runs a full fuzz sweep: `budget` cases drawn from the paper-default
/// family, each checked by the differential oracle, failures shrunk to
/// minimal counterexamples.
pub fn run_fuzz(config: FuzzConfig) -> FuzzOutcome {
    // Panics inside a trial are captured into the failure report; keep
    // the default hook from spamming stderr with expected backtraces.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut outcome = FuzzOutcome::default();
    for trial in 0..config.budget {
        let mut case = derive_case(config.base_seed, trial as u64);
        case.churn = config.churn;
        case.delta = config.delta;
        case.serve = config.serve;
        outcome.trials += 1;
        if let Err(error) = run_case(case) {
            let (shrunk, error, shrink_steps) = shrink_failure(case, error);
            outcome.failures.push(FuzzFailure {
                original: case,
                shrunk,
                error,
                shrink_steps,
            });
        }
    }
    std::panic::set_hook(prior_hook);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_in_family() {
        for trial in 0..40 {
            let a = derive_case(7, trial);
            let b = derive_case(7, trial);
            assert_eq!(a, b);
            assert!((12..=60).contains(&a.spec.topology.nodes));
            assert!((MIN_USERS..=10).contains(&a.spec.users));
            assert!(a.spec.users <= a.spec.topology.nodes / 4 || a.spec.users == MIN_USERS);
            assert!((2..=6).contains(&a.spec.qubits_per_switch));
            // Every drawn spec must actually generate a valid instance.
            let net = a.spec.build(a.seed);
            assert_eq!(net.user_count(), a.spec.users);
        }
    }

    #[test]
    fn small_budget_run_is_clean() {
        let outcome = run_fuzz(FuzzConfig {
            budget: 12,
            base_seed: 2024,
            churn: false,
            delta: false,
            serve: false,
        });
        assert_eq!(outcome.trials, 12);
        assert!(
            outcome.is_clean(),
            "unexpected failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn small_churn_budget_run_is_clean() {
        let outcome = run_fuzz(FuzzConfig {
            budget: 6,
            base_seed: 2025,
            churn: true,
            delta: false,
            serve: false,
        });
        assert_eq!(outcome.trials, 6);
        assert!(
            outcome.is_clean(),
            "unexpected churn failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn small_delta_budget_run_is_clean() {
        let outcome = run_fuzz(FuzzConfig {
            budget: 6,
            base_seed: 2026,
            churn: false,
            delta: true,
            serve: false,
        });
        assert_eq!(outcome.trials, 6);
        assert!(
            outcome.is_clean(),
            "unexpected delta failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn small_serve_budget_run_is_clean() {
        let outcome = run_fuzz(FuzzConfig {
            budget: 4,
            base_seed: 2027,
            churn: false,
            delta: false,
            serve: true,
        });
        assert_eq!(outcome.trials, 4);
        assert!(
            outcome.is_clean(),
            "unexpected serve failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_and_buildable() {
        let case = derive_case(3, 0);
        for candidate in shrink_spec(&case.spec) {
            let smaller = candidate.topology.nodes < case.spec.topology.nodes
                || candidate.topology.avg_degree < case.spec.topology.avg_degree
                || candidate.users < case.spec.users
                || candidate.qubits_per_switch < case.spec.qubits_per_switch;
            assert!(smaller, "{candidate:?} is not smaller than {:?}", case.spec);
            let net = candidate.build(case.seed);
            assert_eq!(net.user_count(), candidate.users);
        }
    }

    #[test]
    fn outcome_json_shape_is_stable() {
        let outcome = run_fuzz(FuzzConfig {
            budget: 2,
            base_seed: 5,
            churn: false,
            delta: false,
            serve: false,
        });
        let json = outcome.to_json();
        assert_eq!(json.get("trials").and_then(Value::as_u64), Some(2));
        assert!(json.get("failures").and_then(Value::as_array).is_some());
        let case_json = derive_case(5, 0).to_json();
        for key in [
            "seed",
            "topology",
            "nodes",
            "avg_degree",
            "area",
            "users",
            "qubits_per_switch",
            "churn",
            "delta",
            "serve",
        ] {
            assert!(case_json.get(key).is_some(), "missing {key}");
        }
    }
}
