//! Serve oracle: the batched admission engine against the sequential
//! cold-routing FCFS reference, per request, per decision.
//!
//! [`muerp_serve`] promises that batched admission under FCFS is
//! **decision-equivalent** to admitting each request one at a time with
//! cold per-step searches — same admit/block/shed sequence, bitwise
//! identical entanglement trees. [`serve_check`] fuzzes that promise
//! over seeded request scripts ([`derive_requests`]): the script is fed
//! to both engines and every decision compared
//! ([`serve_check_requests`]), with each admitted solution additionally
//! re-audited by the independent group-tree audit.
//!
//! On failure the *script itself* is shrunk ([`shrink_requests`] via
//! the shared [`crate::shrink::greedy_shrink`]): requests are greedily
//! removed while the divergence persists, so the reported
//! counterexample is a minimal admission script. The fuzz driver
//! (`repro fuzz --serve`) additionally shrinks the topology spec.

use muerp_core::extensions::{Request, RequestStream, StreamConfig};
use muerp_core::model::QuantumNetwork;
use muerp_serve::{
    audit_group_tree, sequential_fcfs, serve_requests, PolicyKind, ServeConfig, Verdict,
};

use crate::differential::ConformanceError;

/// The serve-oracle round shape: short rounds and a tight queue so a
/// fuzz-scale script exercises admission, blocking, shedding, and
/// departures all at once.
pub fn script_config(group_cap: usize) -> ServeConfig {
    ServeConfig {
        stream: StreamConfig {
            slots: 96,
            window_slots: 16,
            base_arrival: 0.6,
            group_size: (2, group_cap.max(2)),
            hold_slots: (3, 10),
            ..StreamConfig::default()
        },
        round_slots: 8,
        queue_capacity: 4,
        policy: PolicyKind::Fcfs,
    }
}

/// Draws a deterministic request script for one trial from the
/// instance's own open-loop stream, decorrelated from the topology
/// seed.
pub fn derive_requests(net: &QuantumNetwork, seed: u64) -> Vec<Request> {
    let cfg = script_config(net.user_count().min(4));
    RequestStream::new(net, cfg.stream, seed ^ 0x5eed_5c21_9b1e_77a3).collect()
}

/// Replays one request script through both engines and compares every
/// decision; admitted solutions are independently re-audited.
///
/// # Errors
///
/// Returns [`ConformanceError::ServeDiverged`] naming the first
/// decision where batched and sequential disagree, or
/// [`ConformanceError::ServeUnsound`] when an admitted solution fails
/// the group-tree audit.
pub fn serve_check_requests(
    net: &QuantumNetwork,
    requests: &[Request],
) -> Result<(), ConformanceError> {
    let cfg = script_config(net.user_count().min(4));
    let batched = serve_requests(net, &cfg, requests);
    let oracle = sequential_fcfs(net, &cfg, requests);
    if batched.decisions.len() != oracle.len() {
        return Err(ConformanceError::ServeDiverged {
            step: batched.decisions.len().min(oracle.len()),
            requests: requests.len(),
        });
    }
    for (step, (b, o)) in batched.decisions.iter().zip(&oracle).enumerate() {
        if b != o {
            return Err(ConformanceError::ServeDiverged {
                step,
                requests: requests.len(),
            });
        }
    }
    for d in &batched.decisions {
        if let Verdict::Admitted { tree } = &d.verdict {
            let members = requests
                .iter()
                .find(|r| r.id == d.request)
                .map(|r| r.members.as_slice())
                .ok_or_else(|| ConformanceError::ServeUnsound {
                    detail: format!("decision names unknown request #{}", d.request),
                })?;
            audit_group_tree(net, members, tree).map_err(|detail| {
                ConformanceError::ServeUnsound {
                    detail: format!("request #{}: {detail}", d.request),
                }
            })?;
        }
    }
    Ok(())
}

/// Greedily shrinks a failing request script: drops any single request
/// whose removal keeps [`serve_check_requests`] failing. Returns the
/// minimal script, its error, and the number of requests removed.
pub fn shrink_requests(
    net: &QuantumNetwork,
    requests: Vec<Request>,
    error: ConformanceError,
) -> (Vec<Request>, ConformanceError, usize) {
    crate::shrink::greedy_shrink(requests, error, |candidate| {
        serve_check_requests(net, candidate)
    })
}

/// Runs the serve oracle on one instance: derive the seeded script,
/// check decision equivalence and admission soundness, and on failure
/// report the error of the **shrunk** minimal script.
///
/// # Errors
///
/// Returns the error of the minimal failing script.
pub fn serve_check(net: &QuantumNetwork, seed: u64) -> Result<(), ConformanceError> {
    let requests = derive_requests(net, seed);
    if let Err(error) = serve_check_requests(net, &requests) {
        let (_minimal, error, _removed) = shrink_requests(net, requests, error);
        return Err(error);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::NetworkSpec;

    #[test]
    fn derived_scripts_are_deterministic_and_nonempty() {
        let net = NetworkSpec::paper_default().build(13);
        let a = derive_requests(&net, 13);
        let b = derive_requests(&net, 13);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "0.6 arrival over 96 slots produces work");
        for r in &a {
            assert!(r.members.len() >= 2 && r.members.len() <= 4);
        }
    }

    #[test]
    fn serve_check_is_clean_on_the_paper_family() {
        for seed in 0..4 {
            let net = NetworkSpec::paper_default().build(seed);
            serve_check(&net, seed).expect("serve oracle must pass");
        }
    }

    #[test]
    fn empty_script_is_vacuously_clean() {
        let net = NetworkSpec::paper_default().build(5);
        serve_check_requests(&net, &[]).expect("no requests, no divergence");
    }
}
