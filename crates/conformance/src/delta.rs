//! Delta oracle: the dirty-set channel-finder cache against cold
//! recomputation, per delta, per source.
//!
//! The delta engine (qnet-graph `dijkstra_repair_into` plus the
//! [`muerp_core::algorithms::ChannelFinderCache`] dirty-set protocol)
//! promises that a cached per-source run consulted after **any**
//! sequence of capacity deltas — served by O(1) revalidation, in-place
//! SSSP repair, or full recompute, the cache's choice — is bitwise
//! identical to a cold, cache-free [`ChannelFinder`] under the same
//! capacity map. [`delta_check`] fuzzes exactly that promise: a seeded
//! sequence of withdraw/grant deltas ([`derive_delta_ops`]) is pushed
//! through one long-lived cache while every step is cross-checked
//! against from-scratch searches ([`delta_check_ops`]).
//!
//! On failure the *sequence itself* is shrunk ([`shrink_ops`]): ops are
//! greedily removed while the divergence persists, so the reported
//! counterexample is a minimal delta script. The fuzz driver
//! (`repro fuzz --delta`) additionally shrinks the topology spec, so
//! what lands in the report is small on both axes.

use muerp_core::algorithms::{ChannelFinder, ChannelFinderCache};
use muerp_core::channel::CapacityMap;
use muerp_core::model::QuantumNetwork;
use qnet_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::differential::ConformanceError;

/// One capacity delta in a fuzzed sequence: withdraw (`grant == false`)
/// or restore (`grant == true`) `qubits` free qubits at `node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaOp {
    /// The switch whose free-qubit count changes.
    pub node: NodeId,
    /// How many qubits the delta moves (withdraw saturates at zero
    /// free, grant saturates at `u32::MAX`, matching [`CapacityMap`]).
    pub qubits: u32,
    /// `true` restores qubits, `false` withdraws them.
    pub grant: bool,
}

impl DeltaOp {
    /// Applies this delta to a capacity map.
    pub fn apply(&self, capacity: &mut CapacityMap) {
        if self.grant {
            capacity.grant(self.node, self.qubits);
        } else {
            capacity.withdraw(self.node, self.qubits);
        }
    }
}

/// Draws a deterministic delta sequence for one trial: 4–12 ops over
/// the instance's switches, mixing small shaves (often
/// threshold-preserving → O(1) revalidation), relay kills (worsening →
/// in-place repair), and partial restores of earlier withdrawals
/// (improving → recompute), so every classification arm of the cache
/// is exercised.
pub fn derive_delta_ops(net: &QuantumNetwork, seed: u64) -> Vec<DeltaOp> {
    let switches: Vec<NodeId> = net.switches().collect();
    if switches.is_empty() {
        return Vec::new();
    }
    // Decorrelate the delta script from the topology seed.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd3c0_1d5e_0f8a_2b11);
    let len = rng.random_range(4..=12usize);
    let mut withdrawn = vec![0u32; net.graph().node_count()];
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let &node = switches.choose(&mut rng).expect("non-empty");
        let owed = withdrawn[node.index()];
        let grant = owed > 0 && rng.random_bool(0.4);
        let qubits = if grant {
            rng.random_range(1..=owed)
        } else {
            rng.random_range(1..=4u32)
        };
        if grant {
            withdrawn[node.index()] -= qubits;
        } else {
            withdrawn[node.index()] += qubits;
        }
        ops.push(DeltaOp {
            node,
            qubits,
            grant,
        });
    }
    ops
}

/// Replays `ops` against one long-lived warm cache, cross-checking
/// every cached per-source run against a cold [`ChannelFinder`] after
/// every single delta.
///
/// # Errors
///
/// Returns [`ConformanceError::DeltaDiverged`] naming the first op and
/// source whose cached run is not bitwise identical to the cold
/// recomputation.
pub fn delta_check_ops(net: &QuantumNetwork, ops: &[DeltaOp]) -> Result<(), ConformanceError> {
    let users = net.users().to_vec();
    let mut capacity = CapacityMap::new(net);
    let mut cache = ChannelFinderCache::new(net);
    cache.warm(&capacity, &users);
    for (step, op) in ops.iter().enumerate() {
        op.apply(&mut capacity);
        for (source, &u) in users.iter().enumerate() {
            let cached = cache.finder(&capacity, u).run().clone();
            let cold = ChannelFinder::from_source(net, &capacity, u);
            if &cached != cold.run() {
                return Err(ConformanceError::DeltaDiverged {
                    step,
                    source,
                    ops: ops.len(),
                });
            }
        }
    }
    Ok(())
}

/// Greedily shrinks a failing delta sequence: drops any single op whose
/// removal keeps [`delta_check_ops`] failing, repeating until every
/// remaining op is load-bearing. Returns the minimal sequence, its
/// error, and the number of ops removed.
pub fn shrink_ops(
    net: &QuantumNetwork,
    ops: Vec<DeltaOp>,
    error: ConformanceError,
) -> (Vec<DeltaOp>, ConformanceError, usize) {
    crate::shrink::greedy_shrink(ops, error, |candidate| delta_check_ops(net, candidate))
}

/// Runs the delta oracle on one instance: derive the seeded sequence,
/// replay it through the cache with per-step cold cross-checks, and on
/// failure report the error of the **shrunk** minimal sequence.
///
/// # Errors
///
/// Returns the [`ConformanceError::DeltaDiverged`] of the minimal
/// failing subsequence.
pub fn delta_check(net: &QuantumNetwork, seed: u64) -> Result<(), ConformanceError> {
    let ops = derive_delta_ops(net, seed);
    if let Err(error) = delta_check_ops(net, &ops) {
        let (_minimal, error, _removed) = shrink_ops(net, ops, error);
        return Err(error);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::NetworkSpec;

    #[test]
    fn derived_ops_are_deterministic_and_in_family() {
        let net = NetworkSpec::paper_default().build(17);
        let a = derive_delta_ops(&net, 17);
        let b = derive_delta_ops(&net, 17);
        assert_eq!(a, b);
        assert!((4..=12).contains(&a.len()));
        let mut owed = vec![0u32; net.graph().node_count()];
        for op in &a {
            assert!(net.kind(op.node).is_switch(), "deltas only touch switches");
            assert!(op.qubits >= 1);
            if op.grant {
                // Restores never exceed what the script withdrew, so the
                // sequence stays within the instance's hardware budget.
                assert!(op.qubits <= owed[op.node.index()]);
                owed[op.node.index()] -= op.qubits;
            } else {
                owed[op.node.index()] += op.qubits;
            }
        }
    }

    #[test]
    fn delta_check_is_clean_on_the_paper_family() {
        for seed in 0..6 {
            let net = NetworkSpec::paper_default().build(seed);
            delta_check(&net, seed).expect("delta oracle must pass");
        }
    }

    #[test]
    fn empty_sequence_is_vacuously_clean() {
        let net = NetworkSpec::paper_default().build(9);
        delta_check_ops(&net, &[]).expect("no deltas, no divergence");
    }
}
