//! # qnet-conformance — cross-algorithm conformance harness
//!
//! The MUERP paper's evaluation (Figs. 5–7) assumes every routing
//! algorithm returns a *feasible* entanglement structure with a rate
//! that obeys Eq. 1/Eq. 2. This crate makes that assumption checkable,
//! continuously, against every algorithm in the suite:
//!
//! * [`churn`] — the survivability oracle: one seeded failure per
//!   trial pushed through the repair ladder, checked audit-clean,
//!   degraded-valid, rate-bounded (do-nothing ≤ repair ≤ exhaustive
//!   degraded optimum), and deterministic.
//! * [`delta`] — the incremental-routing oracle: seeded capacity delta
//!   sequences through the dirty-set channel-finder cache, every step
//!   cross-checked bitwise against a cold cache-free recomputation,
//!   failing sequences shrunk to a minimal delta script.
//! * [`differential`] — runs the five suite algorithms plus the
//!   extension solvers, audits every solution with the independent
//!   [`muerp_core::audit::SolutionAudit`], and compares heuristics
//!   against the exhaustive brute-force optimum on small instances
//!   (heuristic rate ≤ optimal) and against each other's dominance
//!   relations (refined ≥ base, best-of-all seeds ≥ one seed,
//!   capacity-granted Alg-2 ≥ any real-capacity tree).
//! * [`metamorphic`] — properties that must hold without knowing the
//!   right answer: granting a switch more qubits never lowers the rate,
//!   scaling every fiber length by `c` is observationally identical to
//!   scaling the attenuation `α` by `c` (Eq. 1 depends only on the
//!   products `α·Lᵢ`), and relabeling vertices leaves rates invariant.
//! * [`fixture`] — JSON fixtures of solved networks (hand-rolled
//!   [`serde_json::Value`] schema, stable across the hermetic build) so
//!   validator semantics cannot drift silently.
//! * [`fuzz`] — the deterministic seeded fuzz driver behind
//!   `repro fuzz --budget <n>`: sweeps random topology specs through
//!   generate→solve→audit, records failing seeds, and shrinks them to a
//!   minimal counterexample before reporting.
//! * [`serve`] — the batched-admission oracle: seeded request scripts
//!   through the `muerp-serve` engine and the sequential cold-routing
//!   FCFS reference, every decision compared, admitted solutions
//!   re-audited, failing scripts shrunk to a minimal admission script.
//! * [`shrink`] — the generic greedy sequence shrinker the delta and
//!   serve oracles share.
//! * [`simcheck`] — closes the loop against the Monte-Carlo simulator:
//!   the measured slot success rate of an executed solution must fall
//!   inside the Wilson interval around the analytic Eq. 2 rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod delta;
pub mod differential;
pub mod fixture;
pub mod fuzz;
pub mod metamorphic;
pub mod serve;
pub mod shrink;
pub mod simcheck;

pub use churn::{churn_check, derive_failure, failure_from_json, failure_to_json, ChurnReport};
pub use delta::{delta_check, delta_check_ops, derive_delta_ops, shrink_ops, DeltaOp};
pub use differential::{differential_check, run_suite, ConformanceError, DifferentialReport};
pub use fixture::{Fixture, FixtureError};
pub use fuzz::{run_fuzz, shrink_spec, FuzzConfig, FuzzFailure, FuzzOutcome};
pub use metamorphic::{
    check_qubit_monotonicity, check_relabeling_invariance, check_scaling_equivalence,
    check_scaling_law, MetamorphicFailure,
};
pub use serve::{derive_requests, serve_check, serve_check_requests, shrink_requests};
pub use shrink::greedy_shrink;
pub use simcheck::{monte_carlo_agreement, AgreementReport, SimDisagreement};
