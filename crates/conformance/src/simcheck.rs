//! Analytic-vs-Monte-Carlo agreement: the last line of defense.
//!
//! The audit and the oracles all recompute Eq. 1/Eq. 2 *analytically* —
//! if the formulas themselves were wired up wrong, every layer would
//! agree and be wrong together. This module executes a solution on the
//! mechanical physical-layer simulator ([`qnet_sim`]) and requires the
//! measured slot success frequency to fall inside the Wilson score
//! interval around the claimed analytic rate.

use muerp_core::model::QuantumNetwork;
use muerp_core::solver::{Solution, SolutionStyle};
use qnet_sim::plan::{ChannelSpec, RoutingPlan};
use qnet_sim::{SimPhysics, Simulator};

/// A Monte-Carlo run that agreed with the analytic rate.
#[derive(Clone, Copy, Debug)]
pub struct AgreementReport {
    /// The claimed analytic Eq. 2 rate.
    pub analytic: f64,
    /// Measured success frequency.
    pub measured: f64,
    /// Lower end of the Wilson interval at the requested `z`.
    pub lo: f64,
    /// Upper end of the Wilson interval at the requested `z`.
    pub hi: f64,
    /// Slots simulated.
    pub slots: u64,
}

/// The Monte-Carlo estimate excluded the analytic rate.
#[derive(Clone, Copy, Debug)]
pub struct SimDisagreement {
    /// The claimed analytic Eq. 2 rate.
    pub analytic: f64,
    /// Measured success frequency.
    pub measured: f64,
    /// Lower end of the Wilson interval.
    pub lo: f64,
    /// Upper end of the Wilson interval.
    pub hi: f64,
}

impl std::fmt::Display for SimDisagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "analytic rate {} outside Wilson interval [{}, {}] (measured {})",
            self.analytic, self.lo, self.hi, self.measured
        )
    }
}

impl std::error::Error for SimDisagreement {}

/// Converts a routing solution into an executable simulation plan
/// (independent reimplementation of the facade bridge, so the harness
/// does not share code with what it checks).
pub fn solution_to_plan(net: &QuantumNetwork, solution: &Solution) -> RoutingPlan {
    let channels: Vec<ChannelSpec> = solution
        .channels
        .iter()
        .map(|c| {
            let nodes: Vec<usize> = c.path.nodes.iter().map(|n| n.index()).collect();
            let lengths: Vec<f64> = c.path.edges.iter().map(|&e| net.length(e)).collect();
            let is_switch: Vec<bool> = c
                .path
                .nodes
                .iter()
                .map(|&n| net.kind(n).is_switch())
                .collect();
            ChannelSpec::new(nodes, lengths, &is_switch)
        })
        .collect();
    match solution.style {
        SolutionStyle::BsmTree => RoutingPlan::tree(channels),
        SolutionStyle::FusionStar { center, .. } => {
            RoutingPlan::fusion_star(channels, center.index(), net.kind(center).is_switch())
        }
    }
}

/// Executes `solution` for `slots` time slots and checks that the
/// measured success frequency's Wilson interval (at `z` standard
/// scores) contains the claimed analytic rate.
///
/// # Errors
///
/// Returns [`SimDisagreement`] when the interval excludes the claim.
pub fn monte_carlo_agreement(
    net: &QuantumNetwork,
    solution: &Solution,
    slots: u64,
    seed: u64,
    z: f64,
) -> Result<AgreementReport, SimDisagreement> {
    let plan = solution_to_plan(net, solution);
    let physics = SimPhysics {
        swap_success: net.physics().swap_success,
        attenuation: net.physics().attenuation,
        fusion_success: None,
    };
    let stats = Simulator::new(plan, physics, seed).run_slots(slots);
    let estimate = stats.estimate();
    let interval = estimate.wilson_interval(z);
    let analytic = solution.rate.value();
    if interval.contains(analytic) {
        Ok(AgreementReport {
            analytic,
            measured: estimate.point(),
            lo: interval.lo,
            hi: interval.hi,
            slots,
        })
    } else {
        Err(SimDisagreement {
            analytic,
            measured: estimate.point(),
            lo: interval.lo,
            hi: interval.hi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::NetworkSpec;
    use muerp_core::prelude::*;

    const SLOTS: u64 = 40_000;
    const Z: f64 = 4.4; // ~1e-5 two-sided miss probability per check

    #[test]
    fn tree_solutions_agree_with_the_simulator() {
        let net = NetworkSpec::paper_default().with_users(5).build(41);
        let sol = PrimBased::with_seed(41).solve(&net).expect("feasible");
        let report = monte_carlo_agreement(&net, &sol, SLOTS, 9, Z).expect("agrees");
        assert!(report.lo <= report.analytic && report.analytic <= report.hi);
        assert!(report.slots == SLOTS);
    }

    #[test]
    fn fusion_solutions_agree_with_the_simulator() {
        let net = NetworkSpec::paper_default().with_users(4).build(42);
        let Ok(sol) = NFusion::default().solve(&net) else {
            return;
        };
        monte_carlo_agreement(&net, &sol, SLOTS, 10, Z).expect("agrees");
    }

    #[test]
    fn corrupted_rate_is_detected_by_the_simulator() {
        let net = NetworkSpec::paper_default().with_users(5).build(43);
        let mut sol = PrimBased::with_seed(43).solve(&net).expect("feasible");
        // Claim a rate 3x the true one: the Monte-Carlo run must refuse.
        let claimed = (sol.rate.value() * 3.0).min(0.999);
        sol.rate = Rate::from_prob(claimed);
        let err = monte_carlo_agreement(&net, &sol, SLOTS, 11, Z).expect_err("must disagree");
        assert!(err.to_string().contains("outside Wilson interval"));
    }
}
