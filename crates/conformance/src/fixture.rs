//! JSON fixtures of solved networks — golden inputs for the validator.
//!
//! The vendored `serde` is a no-op marker stub, so fixtures use an
//! explicit hand-rolled [`serde_json::Value`] schema (the same approach
//! as `qnet-obs` run reports):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "triangle-hub",
//!   "physics": { "swap_success": 0.9, "attenuation": 0.0001 },
//!   "nodes": [ { "kind": "user" }, { "kind": "switch", "qubits": 4 } ],
//!   "edges": [ [0, 1, 600.0] ],
//!   "users": [0],
//!   "solutions": [
//!     { "algo": "Alg-3", "style": "bsm-tree", "rate": 0.5,
//!       "channels": [ { "nodes": [0, 1, 2], "rate": 0.5 } ] },
//!     { "algo": "N-Fusion", "style": "fusion-star", "center": 1,
//!       "fusion_rate": 0.81, "rate": 0.4, "channels": [ ... ] }
//!   ]
//! }
//! ```
//!
//! Channels store node sequences only; edges are reconstructed via
//! `find_edge`, so fixture graphs must not contain parallel edges.
//! Claimed rates are stored verbatim and *not* recomputed on load — the
//! golden test audits them, which is exactly how drift in validator
//! semantics gets caught.

use muerp_core::channel::Channel;
use muerp_core::model::{NodeKind, PhysicsParams, QuantumNetwork};
use muerp_core::rate::Rate;
use muerp_core::solver::{Solution, SolutionStyle};
use qnet_graph::paths::Path;
use qnet_graph::{Graph, NodeId};
use serde_json::{Map, Value};

/// Version stamp of the fixture schema.
pub const FIXTURE_SCHEMA_VERSION: u64 = 1;

/// A malformed fixture document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixtureError(pub String);

impl std::fmt::Display for FixtureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fixture: {}", self.0)
    }
}

impl std::error::Error for FixtureError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FixtureError> {
    Err(FixtureError(msg.into()))
}

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, FixtureError> {
    obj.get(key)
        .ok_or_else(|| FixtureError(format!("missing field `{key}`")))
}

fn f64_field(obj: &Value, key: &str) -> Result<f64, FixtureError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| FixtureError(format!("field `{key}` is not a number")))
}

fn u64_field(obj: &Value, key: &str) -> Result<u64, FixtureError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| FixtureError(format!("field `{key}` is not a non-negative integer")))
}

fn array_field<'a>(obj: &'a Value, key: &str) -> Result<&'a Vec<Value>, FixtureError> {
    field(obj, key)?
        .as_array()
        .ok_or_else(|| FixtureError(format!("field `{key}` is not an array")))
}

fn str_field<'a>(obj: &'a Value, key: &str) -> Result<&'a str, FixtureError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| FixtureError(format!("field `{key}` is not a string")))
}

/// A named network together with the solutions pinned against it.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Fixture name (used in test failure messages).
    pub name: String,
    /// The network instance.
    pub net: QuantumNetwork,
    /// Solved outputs: `(algorithm name, solution)`.
    pub solutions: Vec<(String, Solution)>,
}

impl Fixture {
    /// Serializes the fixture to its JSON schema.
    pub fn to_json(&self) -> Value {
        let mut root = Map::new();
        root.insert("schema_version".into(), Value::from(FIXTURE_SCHEMA_VERSION));
        root.insert("name".into(), Value::from(self.name.as_str()));
        let mut physics = Map::new();
        physics.insert(
            "swap_success".into(),
            Value::from(self.net.physics().swap_success),
        );
        physics.insert(
            "attenuation".into(),
            Value::from(self.net.physics().attenuation),
        );
        root.insert("physics".into(), Value::Object(physics));
        root.insert(
            "nodes".into(),
            Value::Array(
                self.net
                    .graph()
                    .node_ids()
                    .map(|v| {
                        let mut node = Map::new();
                        match self.net.kind(v) {
                            NodeKind::User => {
                                node.insert("kind".into(), Value::from("user"));
                            }
                            NodeKind::Switch { qubits } => {
                                node.insert("kind".into(), Value::from("switch"));
                                node.insert("qubits".into(), Value::from(qubits));
                            }
                        }
                        Value::Object(node)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "edges".into(),
            Value::Array(
                self.net
                    .graph()
                    .edge_refs()
                    .map(|e| {
                        Value::Array(vec![
                            Value::from(e.a.index()),
                            Value::from(e.b.index()),
                            Value::from(*e.payload),
                        ])
                    })
                    .collect(),
            ),
        );
        root.insert(
            "users".into(),
            Value::Array(
                self.net
                    .users()
                    .iter()
                    .map(|u| Value::from(u.index()))
                    .collect(),
            ),
        );
        root.insert(
            "solutions".into(),
            Value::Array(
                self.solutions
                    .iter()
                    .map(|(algo, sol)| solution_to_json(algo, sol))
                    .collect(),
            ),
        );
        Value::Object(root)
    }

    /// Parses a fixture from its JSON schema.
    ///
    /// # Errors
    ///
    /// Returns a [`FixtureError`] naming the first malformed field.
    pub fn from_json(value: &Value) -> Result<Fixture, FixtureError> {
        let version = u64_field(value, "schema_version")?;
        if version > FIXTURE_SCHEMA_VERSION {
            return err(format!(
                "schema_version {version} is newer than supported {FIXTURE_SCHEMA_VERSION}"
            ));
        }
        let name = str_field(value, "name")?.to_string();
        let physics_value = field(value, "physics")?;
        let physics = PhysicsParams {
            swap_success: f64_field(physics_value, "swap_success")?,
            attenuation: f64_field(physics_value, "attenuation")?,
        };

        let nodes = array_field(value, "nodes")?;
        let mut graph: Graph<NodeKind, f64> = Graph::with_capacity(nodes.len(), 0);
        for node in nodes {
            let kind = match str_field(node, "kind")? {
                "user" => NodeKind::User,
                "switch" => NodeKind::Switch {
                    qubits: u64_field(node, "qubits")?
                        .try_into()
                        .map_err(|_| FixtureError("switch qubits out of range".into()))?,
                },
                other => return err(format!("unknown node kind `{other}`")),
            };
            graph.add_node(kind);
        }
        for edge in array_field(value, "edges")? {
            let parts = edge
                .as_array()
                .filter(|p| p.len() == 3)
                .ok_or_else(|| FixtureError("edge is not a [a, b, length] triple".into()))?;
            let a = node_id(&parts[0], graph.node_count())?;
            let b = node_id(&parts[1], graph.node_count())?;
            let length = parts[2]
                .as_f64()
                .ok_or_else(|| FixtureError("edge length is not a number".into()))?;
            graph.add_edge(a, b, length);
        }
        let users = array_field(value, "users")?
            .iter()
            .map(|u| node_id(u, graph.node_count()))
            .collect::<Result<Vec<_>, _>>()?;
        let net = QuantumNetwork::from_parts(graph, users, physics);

        let solutions = array_field(value, "solutions")?
            .iter()
            .map(|s| solution_from_json(&net, s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Fixture {
            name,
            net,
            solutions,
        })
    }

    /// Parses a fixture from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`FixtureError`] on malformed JSON or schema.
    pub fn from_json_str(text: &str) -> Result<Fixture, FixtureError> {
        let value =
            serde_json::from_str(text).map_err(|e| FixtureError(format!("invalid JSON: {e}")))?;
        Fixture::from_json(&value)
    }

    /// Renders the fixture as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("Value serialization is total")
    }
}

fn node_id(value: &Value, node_count: usize) -> Result<NodeId, FixtureError> {
    let raw = value
        .as_u64()
        .ok_or_else(|| FixtureError("node id is not a non-negative integer".into()))?;
    let index = usize::try_from(raw)
        .ok()
        .filter(|&i| i < node_count)
        .ok_or_else(|| FixtureError(format!("node id {raw} out of range ({node_count} nodes)")))?;
    Ok(NodeId::new(index))
}

fn solution_to_json(algo: &str, sol: &Solution) -> Value {
    let mut out = Map::new();
    out.insert("algo".into(), Value::from(algo));
    out.insert("rate".into(), Value::from(sol.rate.value()));
    match sol.style {
        SolutionStyle::BsmTree => {
            out.insert("style".into(), Value::from("bsm-tree"));
        }
        SolutionStyle::FusionStar {
            center,
            fusion_rate,
        } => {
            out.insert("style".into(), Value::from("fusion-star"));
            out.insert("center".into(), Value::from(center.index()));
            out.insert("fusion_rate".into(), Value::from(fusion_rate.value()));
        }
    }
    out.insert(
        "channels".into(),
        Value::Array(
            sol.channels
                .iter()
                .map(|c| {
                    let mut channel = Map::new();
                    channel.insert(
                        "nodes".into(),
                        Value::Array(
                            c.path
                                .nodes
                                .iter()
                                .map(|n| Value::from(n.index()))
                                .collect(),
                        ),
                    );
                    channel.insert("rate".into(), Value::from(c.rate.value()));
                    Value::Object(channel)
                })
                .collect(),
        ),
    );
    Value::Object(out)
}

fn solution_from_json(
    net: &QuantumNetwork,
    value: &Value,
) -> Result<(String, Solution), FixtureError> {
    let algo = str_field(value, "algo")?.to_string();
    let rate = Rate::from_prob(f64_field(value, "rate")?);
    let style = match str_field(value, "style")? {
        "bsm-tree" => SolutionStyle::BsmTree,
        "fusion-star" => SolutionStyle::FusionStar {
            center: node_id(field(value, "center")?, net.graph().node_count())?,
            fusion_rate: Rate::from_prob(f64_field(value, "fusion_rate")?),
        },
        other => return err(format!("unknown solution style `{other}`")),
    };
    let channels = array_field(value, "channels")?
        .iter()
        .map(|c| channel_from_json(net, c))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((
        algo,
        Solution {
            channels,
            rate,
            style,
        },
    ))
}

fn channel_from_json(net: &QuantumNetwork, value: &Value) -> Result<Channel, FixtureError> {
    let nodes = array_field(value, "nodes")?
        .iter()
        .map(|n| node_id(n, net.graph().node_count()))
        .collect::<Result<Vec<_>, _>>()?;
    if nodes.len() < 2 {
        return err("channel has fewer than two nodes");
    }
    let edges = nodes
        .windows(2)
        .map(|w| {
            net.graph().find_edge(w[0], w[1]).ok_or_else(|| {
                FixtureError(format!("no fiber between nodes {} and {}", w[0], w[1]))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let cost: f64 = edges
        .iter()
        .map(|&e| net.physics().attenuation * net.length(e))
        .sum();
    let rate = Rate::from_prob(f64_field(value, "rate")?);
    Ok(Channel {
        path: Path { nodes, edges, cost },
        rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::audit::audit_solution;
    use muerp_core::model::NetworkSpec;
    use muerp_core::prelude::*;

    fn solved_fixture(seed: u64) -> Fixture {
        let net = NetworkSpec::paper_default().with_users(5).build(seed);
        let mut solutions = Vec::new();
        if let Ok(sol) = ConflictFree::default().solve(&net) {
            solutions.push(("Alg-3".to_string(), sol));
        }
        if let Ok(sol) = PrimBased::with_seed(seed).solve(&net) {
            solutions.push(("Alg-4".to_string(), sol));
        }
        if let Ok(sol) = NFusion::default().solve(&net) {
            solutions.push(("N-Fusion".to_string(), sol));
        }
        Fixture {
            name: format!("roundtrip-{seed}"),
            net,
            solutions,
        }
    }

    #[test]
    fn fixtures_roundtrip_and_stay_audit_clean() {
        let fixture = solved_fixture(31);
        assert!(!fixture.solutions.is_empty());
        let text = fixture.to_json_string();
        let reloaded = Fixture::from_json_str(&text).expect("parse");
        assert_eq!(reloaded.name, fixture.name);
        assert_eq!(reloaded.net.user_count(), fixture.net.user_count());
        assert_eq!(
            reloaded.net.graph().edge_count(),
            fixture.net.graph().edge_count()
        );
        assert_eq!(reloaded.solutions.len(), fixture.solutions.len());
        for (algo, sol) in &reloaded.solutions {
            audit_solution(&reloaded.net, sol)
                .unwrap_or_else(|v| panic!("{algo} failed the audit after reload: {v}"));
        }
        // Second serialization is byte-identical (stable golden format).
        assert_eq!(reloaded.to_json_string(), text);
    }

    #[test]
    fn tampered_rate_is_rejected_by_name_after_reload() {
        let fixture = solved_fixture(32);
        let text = fixture.to_json_string();
        // Corrupt every claimed solution rate in the JSON itself.
        let tampered = text.replace("\"rate\":", "\"rate\": 0.999999,\"old_rate\":");
        let reloaded = Fixture::from_json_str(&tampered).expect("still parses");
        let (algo, sol) = &reloaded.solutions[0];
        let violation = audit_solution(&reloaded.net, sol)
            .expect_err(&format!("{algo} tampered rate must be rejected"));
        assert!(
            violation.invariant().starts_with("rate-"),
            "got {violation}"
        );
    }

    #[test]
    fn malformed_documents_name_the_field() {
        let e = Fixture::from_json_str("{}").unwrap_err();
        assert!(e.to_string().contains("schema_version"), "{e}");
        let e = Fixture::from_json_str("not json").unwrap_err();
        assert!(e.to_string().contains("invalid JSON"), "{e}");
        let doc = r#"{"schema_version": 99, "name": "x", "physics": {"swap_success": 0.9,
            "attenuation": 0.0001}, "nodes": [], "edges": [], "users": [], "solutions": []}"#;
        let e = Fixture::from_json_str(doc).unwrap_err();
        assert!(e.to_string().contains("newer"), "{e}");
    }
}
