//! Differential oracle: every algorithm against the brute force and
//! against each other.
//!
//! Three families of checks, all on top of the independent
//! [`muerp_core::audit::SolutionAudit`]:
//!
//! 1. **Audit-clean** — every solution any suite algorithm returns must
//!    pass the independent invariant audit (against the network it was
//!    actually solved on: Algorithm 2 runs on the capacity-granted copy,
//!    per the paper's Fig. 8(a) protocol).
//! 2. **Oracle bound** — on small instances (`|U| ≤ 6`), the exhaustive
//!    [`muerp_core::feasibility::exhaustive_optimal`] with a complete
//!    path horizon (`max_links = n − 1`) upper-bounds every BSM-tree
//!    heuristic running on the real capacities; conversely, if the
//!    complete oracle proves the instance infeasible, no heuristic may
//!    produce a solution.
//! 3. **Dominance** — relations that hold by construction on *any*
//!    instance: capacity-granted Alg-2 dominates every real-capacity
//!    tree (a tree demands at most `2·(|U|−1) < 2·|U|` qubits per
//!    switch, so it stays feasible under the grant, where Alg-2 is
//!    optimal); local-search refinement never worsens its base; the
//!    best-of-all-seeds Prim dominates any single seed. Plus exact
//!    determinism: solving twice yields bit-identical rates.

use muerp_core::algorithms::{BeamSearch, Refined, SeedChoice};
use muerp_core::audit::{audit_solution, AuditViolation, RATE_TOLERANCE};
use muerp_core::feasibility::exhaustive_optimal;
use muerp_core::prelude::*;

/// Outcome of one algorithm on one instance, in the negative-log domain
/// (`cost = −ln rate`; `+∞` means infeasible / no solution).
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteRun {
    /// Display name of the algorithm.
    pub algo: &'static str,
    /// Negative-log rate of the returned solution (`+∞` if none).
    pub cost: f64,
    /// `true` when the run is a BSM tree on the *real* capacities and
    /// therefore bounded by the exhaustive tree oracle.
    pub oracle_comparable: bool,
}

impl SuiteRun {
    /// `true` when the algorithm found a solution.
    pub fn feasible(&self) -> bool {
        self.cost.is_finite()
    }
}

/// A conformance violation found by the differential oracle.
#[derive(Clone, Debug, PartialEq)]
pub enum ConformanceError {
    /// An algorithm emitted a solution the independent audit rejects.
    Audit {
        /// Offending algorithm.
        algo: &'static str,
        /// The violated invariant.
        violation: AuditViolation,
    },
    /// A heuristic claimed a better rate than the exhaustive optimum.
    OracleExceeded {
        /// Offending algorithm.
        algo: &'static str,
        /// Heuristic's negative-log rate.
        heuristic_cost: f64,
        /// Exhaustive optimum's negative-log rate.
        optimal_cost: f64,
    },
    /// A heuristic found a tree on an instance the complete exhaustive
    /// search proved infeasible.
    FeasibleDespiteOracle {
        /// Offending algorithm.
        algo: &'static str,
    },
    /// A dominance relation that holds by construction was violated.
    DominanceBroken {
        /// The algorithm that must be at least as good.
        stronger: &'static str,
        /// The algorithm it must dominate.
        weaker: &'static str,
        /// Negative-log rate of `stronger`.
        stronger_cost: f64,
        /// Negative-log rate of `weaker`.
        weaker_cost: f64,
    },
    /// Generate/solve/audit panicked (captured by the fuzz driver so
    /// the failing seed is never lost).
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The survivability repair ladder produced an unsound result: a
    /// repaired solution the degraded network cannot carry, a rate
    /// outside the do-nothing/oracle envelope, or a non-deterministic
    /// repair.
    RepairUnsound {
        /// Human-readable description of the violated property.
        detail: String,
    },
    /// The delta-aware channel-finder cache served a run that differs
    /// from a cold, cache-free recomputation after a capacity delta.
    DeltaDiverged {
        /// 0-based index of the delta op after which the cache diverged.
        step: usize,
        /// Index of the source user whose cached run differed.
        source: usize,
        /// Length of the (shrunk) failing delta sequence.
        ops: usize,
    },
    /// The batched admission engine's decision log diverged from the
    /// sequential cold-routing FCFS oracle on the same request script.
    ServeDiverged {
        /// 0-based index of the first diverging decision.
        step: usize,
        /// Length of the (shrunk) failing request script.
        requests: usize,
    },
    /// The batched admission engine admitted a solution the independent
    /// group-tree audit rejects.
    ServeUnsound {
        /// Human-readable description of the violated property.
        detail: String,
    },
    /// Two identically configured runs disagreed.
    NonDeterministic {
        /// Offending algorithm.
        algo: &'static str,
        /// Negative-log rate of the first run.
        first_cost: f64,
        /// Negative-log rate of the second run.
        second_cost: f64,
    },
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::Audit { algo, violation } => {
                write!(f, "{algo}: audit violation {violation}")
            }
            ConformanceError::OracleExceeded {
                algo,
                heuristic_cost,
                optimal_cost,
            } => write!(
                f,
                "{algo}: heuristic cost {heuristic_cost} beats the exhaustive \
                 optimum {optimal_cost} (lower cost = higher rate)"
            ),
            ConformanceError::FeasibleDespiteOracle { algo } => write!(
                f,
                "{algo}: found a tree on an instance the complete exhaustive \
                 search proved infeasible"
            ),
            ConformanceError::DominanceBroken {
                stronger,
                weaker,
                stronger_cost,
                weaker_cost,
            } => write!(
                f,
                "{weaker} (cost {weaker_cost}) beat {stronger} (cost \
                 {stronger_cost}), which dominates it by construction"
            ),
            ConformanceError::Panicked { message } => write!(f, "panicked: {message}"),
            ConformanceError::RepairUnsound { detail } => {
                write!(f, "repair: unsound result: {detail}")
            }
            ConformanceError::DeltaDiverged { step, source, ops } => write!(
                f,
                "delta cache: cached run for source #{source} diverged from cold \
                 recomputation after op #{step} of a {ops}-op delta sequence"
            ),
            ConformanceError::ServeDiverged { step, requests } => write!(
                f,
                "serve: batched decision #{step} diverged from the sequential \
                 FCFS oracle on a {requests}-request script"
            ),
            ConformanceError::ServeUnsound { detail } => {
                write!(f, "serve: unsound admission: {detail}")
            }
            ConformanceError::NonDeterministic {
                algo,
                first_cost,
                second_cost,
            } => write!(
                f,
                "{algo}: two identical runs returned costs {first_cost} vs \
                 {second_cost}"
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Everything [`differential_check`] measured on one instance.
#[derive(Clone, Debug)]
pub struct DifferentialReport {
    /// Per-algorithm outcomes, audit-clean.
    pub runs: Vec<SuiteRun>,
    /// Negative-log rate of the exhaustive optimum, when the instance
    /// was small enough to brute-force (`None` otherwise; `+∞` when the
    /// oracle proved the instance infeasible).
    pub optimal_cost: Option<f64>,
}

impl DifferentialReport {
    /// The outcome of a named algorithm, if it ran.
    pub fn run(&self, algo: &str) -> Option<&SuiteRun> {
        self.runs.iter().find(|r| r.algo == algo)
    }
}

/// Cost-domain slack mirroring the audit's relative rate tolerance.
fn tol(cost: f64) -> f64 {
    RATE_TOLERANCE * cost.abs().max(1.0)
}

/// Solves with `algo`, audits the result, and returns the negative-log
/// rate (`+∞` when the algorithm reports infeasibility).
pub(crate) fn audited_cost<A: RoutingAlgorithm>(
    net: &QuantumNetwork,
    algo: &A,
    name: &'static str,
) -> Result<f64, ConformanceError> {
    match algo.solve(net) {
        Ok(solution) => {
            audit_solution(net, &solution).map_err(|violation| ConformanceError::Audit {
                algo: name,
                violation,
            })?;
            Ok(solution.rate.neg_log().cost())
        }
        Err(_) => Ok(f64::INFINITY),
    }
}

/// Runs the five-algorithm suite plus the extension solvers on `net`,
/// auditing every returned solution with the independent validator.
///
/// `trial_seed` seeds the randomized Prim variant exactly like the
/// experiment harness does, so a failure here reproduces there.
///
/// # Errors
///
/// Returns the first [`ConformanceError::Audit`] found.
pub fn run_suite(net: &QuantumNetwork, trial_seed: u64) -> Result<Vec<SuiteRun>, ConformanceError> {
    let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);
    let mut runs = Vec::new();
    let mut push = |algo, cost, oracle_comparable| {
        runs.push(SuiteRun {
            algo,
            cost,
            oracle_comparable,
        });
    };
    push(
        "Alg-2",
        audited_cost(&granted, &OptimalSufficient, "Alg-2")?,
        false,
    );
    push(
        "Alg-3",
        audited_cost(net, &ConflictFree::default(), "Alg-3")?,
        true,
    );
    push(
        "Alg-4",
        audited_cost(net, &PrimBased::with_seed(trial_seed), "Alg-4")?,
        true,
    );
    push(
        "Alg-4/best",
        audited_cost(
            net,
            &PrimBased {
                seed: SeedChoice::BestOfAll,
            },
            "Alg-4/best",
        )?,
        true,
    );
    push(
        "Beam",
        audited_cost(net, &BeamSearch::default(), "Beam")?,
        true,
    );
    push(
        "Refined",
        audited_cost(
            net,
            &Refined {
                inner: PrimBased::with_seed(trial_seed),
                options: Default::default(),
            },
            "Refined",
        )?,
        true,
    );
    push(
        "N-Fusion",
        audited_cost(net, &NFusion::default(), "N-Fusion")?,
        false,
    );
    push("E-Q-CAST", audited_cost(net, &EQCast, "E-Q-CAST")?, true);
    Ok(runs)
}

/// Largest instance the exhaustive oracle is asked to brute-force.
const ORACLE_MAX_USERS: usize = 6;
const ORACLE_MAX_NODES: usize = 10;

/// Full differential check of one instance: audits the whole suite,
/// compares against the exhaustive optimum when the instance is small
/// enough, enforces the by-construction dominance relations, and
/// re-runs the suite to confirm exact determinism.
///
/// # Errors
///
/// Returns the first [`ConformanceError`] found.
pub fn differential_check(
    net: &QuantumNetwork,
    trial_seed: u64,
) -> Result<DifferentialReport, ConformanceError> {
    let runs = run_suite(net, trial_seed)?;

    // Oracle bound on brute-forceable instances. `max_links = n − 1`
    // covers every simple path, so the oracle is *complete*: `None`
    // really means infeasible.
    let n = net.graph().node_count();
    let optimal_cost = if net.user_count() <= ORACLE_MAX_USERS && n <= ORACLE_MAX_NODES {
        match exhaustive_optimal(net, n.saturating_sub(1)) {
            Some(tree) => {
                let solution = Solution::from_tree(tree);
                audit_solution(net, &solution).map_err(|violation| ConformanceError::Audit {
                    algo: "exhaustive-optimal",
                    violation,
                })?;
                let optimal = solution.rate.neg_log().cost();
                for run in runs.iter().filter(|r| r.oracle_comparable) {
                    if run.cost < optimal - tol(optimal) {
                        return Err(ConformanceError::OracleExceeded {
                            algo: run.algo,
                            heuristic_cost: run.cost,
                            optimal_cost: optimal,
                        });
                    }
                }
                Some(optimal)
            }
            None => {
                for run in runs.iter().filter(|r| r.oracle_comparable) {
                    if run.feasible() {
                        return Err(ConformanceError::FeasibleDespiteOracle { algo: run.algo });
                    }
                }
                Some(f64::INFINITY)
            }
        }
    } else {
        None
    };

    // Dominance relations that hold on instances of any size.
    let cost_of = |name: &str| runs.iter().find(|r| r.algo == name).map(|r| r.cost);
    let dominates = |stronger: &'static str, weaker: &'static str| {
        if let (Some(s), Some(w)) = (cost_of(stronger), cost_of(weaker)) {
            // stronger rate ≥ weaker rate ⇔ stronger cost ≤ weaker cost.
            if s > w + tol(w) {
                return Err(ConformanceError::DominanceBroken {
                    stronger,
                    weaker,
                    stronger_cost: s,
                    weaker_cost: w,
                });
            }
        }
        Ok(())
    };
    for weaker in [
        "Alg-3",
        "Alg-4",
        "Alg-4/best",
        "Beam",
        "Refined",
        "E-Q-CAST",
    ] {
        dominates("Alg-2", weaker)?;
    }
    dominates("Refined", "Alg-4")?;
    dominates("Alg-4/best", "Alg-4")?;

    // Exact determinism: an identically configured second pass must
    // reproduce every rate bit for bit.
    let second = run_suite(net, trial_seed)?;
    for (a, b) in runs.iter().zip(&second) {
        let same = (a.cost == b.cost) || (a.cost.is_infinite() && b.cost.is_infinite());
        if !same {
            return Err(ConformanceError::NonDeterministic {
                algo: a.algo,
                first_cost: a.cost,
                second_cost: b.cost,
            });
        }
    }

    Ok(DifferentialReport { runs, optimal_cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::{NetworkSpec, NodeKind, PhysicsParams};
    use qnet_graph::Graph;

    /// 3 users around a 6-qubit hub plus longer detour switches: small
    /// enough for the oracle, rich enough that heuristics must choose.
    fn small_net(hub_qubits: u32) -> QuantumNetwork {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u: Vec<_> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits: hub_qubits });
        let d01 = g.add_node(NodeKind::Switch { qubits: 2 });
        let d12 = g.add_node(NodeKind::Switch { qubits: 2 });
        for &x in &u {
            g.add_edge(x, hub, 600.0);
        }
        g.add_edge(u[0], d01, 900.0);
        g.add_edge(d01, u[1], 900.0);
        g.add_edge(u[1], d12, 900.0);
        g.add_edge(d12, u[2], 900.0);
        QuantumNetwork::from_graph(g, PhysicsParams::paper_default())
    }

    #[test]
    fn suite_is_audit_clean_on_paper_default() {
        let net = NetworkSpec::paper_default().build(3);
        let runs = run_suite(&net, 3).expect("audit-clean");
        assert_eq!(runs.len(), 8);
        assert!(runs.iter().any(|r| r.feasible()));
    }

    #[test]
    fn differential_check_passes_on_small_instances() {
        for hub_qubits in [2, 4, 6] {
            let net = small_net(hub_qubits);
            let report = differential_check(&net, 1).expect("conformant");
            let optimal = report.optimal_cost.expect("oracle ran");
            assert!(optimal.is_finite(), "instance is feasible");
            // The bound is also achieved by at least one heuristic here.
            let best = report
                .runs
                .iter()
                .filter(|r| r.oracle_comparable)
                .map(|r| r.cost)
                .fold(f64::INFINITY, f64::min);
            assert!(best >= optimal - 1e-9, "no heuristic beats the oracle");
        }
    }

    #[test]
    fn differential_check_passes_on_paper_default_family() {
        // Too big for the oracle: dominance + determinism still run.
        let net = NetworkSpec::paper_default().build(7);
        let report = differential_check(&net, 7).expect("conformant");
        assert!(report.optimal_cost.is_none());
    }

    #[test]
    fn infeasible_instances_are_agreed_infeasible() {
        // Two users, one 0-qubit switch between them: nobody can route.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 0 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s, 500.0);
        g.add_edge(s, b, 500.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let report = differential_check(&net, 0).expect("conformant");
        assert_eq!(report.optimal_cost, Some(f64::INFINITY));
        for run in report.runs.iter().filter(|r| r.oracle_comparable) {
            assert!(!run.feasible(), "{} found a tree", run.algo);
        }
    }

    #[test]
    fn error_display_names_the_algorithm() {
        let e = ConformanceError::OracleExceeded {
            algo: "Alg-4",
            heuristic_cost: 0.5,
            optimal_cost: 1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("Alg-4"), "{msg}");
        assert!(msg.contains("exhaustive optimum"), "{msg}");
    }
}
