//! Admission-order policies: FCFS, smallest-group-first, and
//! deficit-weighted fairness over [`SloClass`] tiers.
//!
//! A policy decides only the *order* in which one round's queued
//! requests are tried against shared capacity — every queued request
//! receives a decision each round, but earlier positions see more free
//! qubits, so ordering is where fairness lives.
//!
//! The weighted policy is deficit round-robin over the three SLO
//! classes: each round a class with pending work earns its weight in
//! credits, the order loop repeatedly serves the class with the largest
//! deficit (one credit per emitted request), leftover credit of an
//! exhausted class carries over capped at one round's earnings, and an
//! idle class forfeits its balance. The cap is what makes the
//! no-starvation bound provable: a class's deficit never exceeds twice
//! its weight, so any class with pending work is served within
//! `Σ 2·weight(other)` emissions (the bound the proptests pin down).

use muerp_core::extensions::Request;

/// Per-class scheduling weights, indexed by [`SloClass::index`]
/// (Gold, Silver, Bronze).
pub const CLASS_WEIGHTS: [u64; 3] = [4, 2, 1];

/// Which ordering the admission engine applies to each round's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Queue order (arrival order): the oracle-comparable baseline.
    Fcfs,
    /// Stable smallest-group-first (ties broken by arrival id): small
    /// groups are cheap to satisfy, so this maximizes admitted count
    /// under pressure.
    SmallestFirst,
    /// Deficit-weighted fairness over SLO classes (see module docs).
    WeightedFair,
}

impl PolicyKind {
    /// All policies, in CLI order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Fcfs,
        PolicyKind::SmallestFirst,
        PolicyKind::WeightedFair,
    ];

    /// Stable CLI/CSV name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::SmallestFirst => "smallest",
            PolicyKind::WeightedFair => "weighted",
        }
    }

    /// Parses [`PolicyKind::name`] back.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Per-class deficit counters of the weighted-fairness policy,
/// persisted across rounds by the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeficitState {
    deficits: [u64; 3],
}

impl DeficitState {
    /// Fresh counters (all zero).
    pub fn new() -> Self {
        DeficitState::default()
    }

    /// Current per-class balances, indexed by [`SloClass::index`].
    /// Invariant (proptested): `deficits[c] ≤ CLASS_WEIGHTS[c]` between
    /// rounds, `≤ 2·CLASS_WEIGHTS[c]` at any instant inside a round.
    pub fn deficits(&self) -> [u64; 3] {
        self.deficits
    }

    /// Orders one round's queue by deficit round-robin, updating the
    /// balances. Returns indices into `queue`, a permutation of
    /// `0..queue.len()`; within a class, arrival order is preserved.
    pub fn order(&mut self, queue: &[Request]) -> Vec<usize> {
        let mut pending: [std::collections::VecDeque<usize>; 3] = Default::default();
        for (i, r) in queue.iter().enumerate() {
            pending[r.class.index()].push_back(i);
        }
        for c in 0..3 {
            if pending[c].is_empty() {
                // No banking while idle — standard deficit round-robin.
                self.deficits[c] = 0;
            } else {
                self.deficits[c] += CLASS_WEIGHTS[c];
            }
        }
        let mut order = Vec::with_capacity(queue.len());
        let mut remaining = queue.len();
        while remaining > 0 {
            // Largest deficit wins; ties go to the heavier class
            // (smaller index, since weights are sorted descending).
            let c = (0..3)
                .filter(|&c| !pending[c].is_empty())
                .max_by_key(|&c| (self.deficits[c], std::cmp::Reverse(c)))
                .expect("remaining > 0 implies a non-empty class");
            order.push(pending[c].pop_front().expect("class chosen non-empty"));
            self.deficits[c] = self.deficits[c].saturating_sub(1);
            if pending[c].is_empty() {
                // Carry at most one round's earnings forward.
                self.deficits[c] = self.deficits[c].min(CLASS_WEIGHTS[c]);
            }
            remaining -= 1;
        }
        order
    }
}

/// Orders one round's queue under `policy`. FCFS and smallest-first are
/// stateless; the weighted policy reads and updates `deficit`.
pub fn order_requests(
    policy: PolicyKind,
    queue: &[Request],
    deficit: &mut DeficitState,
) -> Vec<usize> {
    match policy {
        PolicyKind::Fcfs => (0..queue.len()).collect(),
        PolicyKind::SmallestFirst => {
            let mut idx: Vec<usize> = (0..queue.len()).collect();
            idx.sort_by_key(|&i| (queue[i].members.len(), queue[i].id));
            idx
        }
        PolicyKind::WeightedFair => deficit.order(queue),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::extensions::SloClass;

    fn req(id: u64, size: usize, class: SloClass) -> Request {
        Request {
            id,
            slot: id,
            members: (0..size).map(qnet_graph::NodeId::new).collect(),
            hold: 1,
            class,
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
        }
        assert_eq!(PolicyKind::parse("nonsense"), None);
    }

    #[test]
    fn fcfs_preserves_queue_order() {
        let queue = vec![
            req(0, 3, SloClass::Bronze),
            req(1, 2, SloClass::Gold),
            req(2, 4, SloClass::Silver),
        ];
        let mut d = DeficitState::new();
        assert_eq!(order_requests(PolicyKind::Fcfs, &queue, &mut d), [0, 1, 2]);
        assert_eq!(d, DeficitState::new(), "fcfs never touches the deficits");
    }

    #[test]
    fn smallest_first_is_stable_on_size_ties() {
        let queue = vec![
            req(0, 3, SloClass::Bronze),
            req(1, 2, SloClass::Bronze),
            req(2, 3, SloClass::Bronze),
            req(3, 2, SloClass::Bronze),
        ];
        let mut d = DeficitState::new();
        assert_eq!(
            order_requests(PolicyKind::SmallestFirst, &queue, &mut d),
            [1, 3, 0, 2],
            "size ascending, arrival id breaking ties"
        );
    }

    #[test]
    fn weighted_fair_serves_heavier_classes_first_from_rest() {
        let queue = vec![
            req(0, 2, SloClass::Bronze),
            req(1, 2, SloClass::Gold),
            req(2, 2, SloClass::Silver),
            req(3, 2, SloClass::Gold),
        ];
        let mut d = DeficitState::new();
        let order = d.order(&queue);
        // From zero deficits: Gold earns 4, Silver 2, Bronze 1. Gold's
        // two requests drain first (4 > 2 after one service), then
        // Silver, then Bronze.
        assert_eq!(order, [1, 3, 2, 0]);
        // Between rounds every balance is capped at one round's
        // earnings.
        for c in 0..3 {
            assert!(d.deficits()[c] <= CLASS_WEIGHTS[c]);
        }
    }

    #[test]
    fn starved_class_accumulates_credit_and_wins_later() {
        // Round 1: one Bronze among Golds — Bronze is served last.
        let mut d = DeficitState::new();
        let round1 = vec![
            req(0, 2, SloClass::Gold),
            req(1, 2, SloClass::Gold),
            req(2, 2, SloClass::Bronze),
        ];
        let order1 = d.order(&round1);
        assert_eq!(*order1.last().unwrap(), 2);
        // Bronze exhausted its single pending request, so its carry is
        // capped at its weight; Gold drained below Bronze's next-round
        // earnings only if Gold had more pending than credit.
        let round2 = vec![req(3, 2, SloClass::Gold), req(4, 2, SloClass::Bronze)];
        let order2 = d.order(&round2);
        assert_eq!(order2.len(), 2);
        // Whatever the order, the permutation covers the queue.
        let mut seen = order2.clone();
        seen.sort_unstable();
        assert_eq!(seen, [0, 1]);
    }
}
