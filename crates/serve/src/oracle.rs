//! The sequential FCFS oracle the differential battery compares
//! against.
//!
//! Same round timeline, bounded queue, shed rule, and departure points
//! as the batched engine — but every admission routes **cold**: a fresh
//! [`ChannelFinder`] per growth step, no cache, no warm batch, no pool.
//! Decision equivalence between [`sequential_fcfs`] and the engine
//! under [`PolicyKind::Fcfs`](crate::policy::PolicyKind::Fcfs) is
//! therefore a real claim about the delta/warm machinery: the cached
//! batched path must produce bitwise the same admit/block sequence and
//! the same entanglement trees as naive per-request recomputation.

use std::collections::HashSet;

use qnet_graph::NodeId;

use muerp_core::algorithms::ChannelFinder;
use muerp_core::channel::{CapacityMap, Channel};
use muerp_core::extensions::Request;
use muerp_core::model::QuantumNetwork;
use muerp_core::tree::EntanglementTree;

use crate::engine::{Decision, ServeConfig, Verdict};
use crate::queue::BoundedQueue;

struct OracleSession {
    tree: EntanglementTree,
    expires_at: u64,
    members: Vec<NodeId>,
}

/// Runs the request script through the sequential cold-routing FCFS
/// reference and returns its decisions, in the same order the batched
/// engine emits them (round sheds first, then queue order).
pub fn sequential_fcfs(
    net: &QuantumNetwork,
    cfg: &ServeConfig,
    requests: &[Request],
) -> Vec<Decision> {
    cfg.validate();
    let mut capacity = CapacityMap::new(net);
    let mut queue = BoundedQueue::new(cfg.queue_capacity);
    let mut active: Vec<OracleSession> = Vec::new();
    let mut decisions: Vec<Decision> = Vec::new();
    let mut next = 0usize;

    for round in 0..cfg.rounds() {
        let end = ((round + 1) * cfg.round_slots).min(cfg.stream.slots);

        let mut kept_sessions = Vec::with_capacity(active.len());
        for session in active.drain(..) {
            if session.expires_at <= end {
                for c in &session.tree.channels {
                    capacity.release(c);
                }
            } else {
                kept_sessions.push(session);
            }
        }
        active = kept_sessions;

        while next < requests.len() && requests[next].slot < end {
            queue.offer(requests[next].clone());
            next += 1;
        }
        let (kept, shed) = queue.drain();
        for r in &shed {
            decisions.push(Decision {
                request: r.id,
                arrived_slot: r.slot,
                round,
                class: r.class,
                size: r.members.len(),
                verdict: Verdict::Shed,
            });
        }

        let mut busy: HashSet<NodeId> = active
            .iter()
            .flat_map(|s| s.members.iter().copied())
            .collect();
        for r in &kept {
            let verdict = if r.members.iter().any(|m| busy.contains(m)) {
                Verdict::BlockedBusy
            } else {
                match route_group_cold(net, &mut capacity, &r.members) {
                    Some(tree) => {
                        busy.extend(r.members.iter().copied());
                        active.push(OracleSession {
                            tree: tree.clone(),
                            expires_at: end + r.hold,
                            members: r.members.clone(),
                        });
                        Verdict::Admitted { tree }
                    }
                    None => Verdict::BlockedCapacity,
                }
            };
            decisions.push(Decision {
                request: r.id,
                arrived_slot: r.slot,
                round,
                class: r.class,
                size: r.members.len(),
                verdict,
            });
        }
    }
    decisions
}

/// [`route_group_cached`](muerp_core::extensions::route_group_cached)'s
/// greedy Prim growth, with every per-step search recomputed from
/// scratch — the untainted reference implementation.
fn route_group_cold(
    net: &QuantumNetwork,
    capacity: &mut CapacityMap,
    members: &[NodeId],
) -> Option<EntanglementTree> {
    let mut in_tree = vec![false; net.graph().node_count()];
    in_tree[members[0].index()] = true;
    let mut tree = EntanglementTree::new();
    let mut trial_capacity = capacity.clone();
    for _ in 1..members.len() {
        let mut best: Option<Channel> = None;
        for &src in members.iter().filter(|u| in_tree[u.index()]) {
            let finder = ChannelFinder::from_source(net, &trial_capacity, src);
            for &dst in members.iter().filter(|u| !in_tree[u.index()]) {
                if let Some(c) = finder.channel_to(dst) {
                    if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                        best = Some(c);
                    }
                }
            }
        }
        let c = best?;
        trial_capacity.reserve(&c);
        let newcomer = if in_tree[c.source().index()] {
            c.destination()
        } else {
            c.source()
        };
        in_tree[newcomer.index()] = true;
        tree.push(c);
    }
    *capacity = trial_capacity;
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::serve_requests;
    use crate::policy::PolicyKind;
    use muerp_core::extensions::{RequestStream, StreamConfig};
    use muerp_core::model::NetworkSpec;

    #[test]
    fn oracle_matches_the_batched_engine_on_a_small_run() {
        let net = NetworkSpec::paper_default().build(21);
        let cfg = ServeConfig {
            stream: StreamConfig {
                slots: 128,
                window_slots: 16,
                ..StreamConfig::default()
            },
            round_slots: 8,
            queue_capacity: 4,
            policy: PolicyKind::Fcfs,
        };
        let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, 21).collect();
        let oracle = sequential_fcfs(&net, &cfg, &requests);
        let engine = serve_requests(&net, &cfg, &requests);
        assert!(!oracle.is_empty());
        assert_eq!(engine.decisions, oracle);
    }
}
