//! The batched admission engine: rounds, decisions, telemetry.
//!
//! Virtual time is split into rounds of [`ServeConfig::round_slots`]
//! slots. All decisions of round `r` are made at its **decision slot**
//! `end = min((r+1)·round_slots, slots)`:
//!
//! 1. sessions with `expires_at ≤ end` depart — their channels are
//!    released and the finder cache absorbs the restores eagerly
//!    (delta-engine restore cancellation);
//! 2. arrivals with `slot < end` not yet collected are offered to the
//!    bounded queue; overflow is shed with a [`Verdict::Shed`] decision;
//! 3. the cache is warmed once for every distinct member of the kept
//!    queue (the qnet-pool batch path — one parallel fan-out per round);
//! 4. the queue is ordered by the policy and each request admitted or
//!    blocked against shared capacity, sequentially in that order.
//!
//! Every count lands twice: in the run-level [`ServeStats`] and in the
//! per-round [`qnet_obs::TimeSeries`] (one window per round), and the
//! two must agree exactly — a proptest holds admitted + blocked + shed
//! equal to the arrival total across arbitrary round sizes.

use std::collections::HashSet;

use qnet_graph::{NodeId, UnionFind};
use qnet_obs::{TimeSeries, TimeSeriesConfig, TimeSeriesSection};
use qnet_pool::Pool;

use muerp_core::algorithms::{CacheEfficiency, ChannelFinderCache};
use muerp_core::channel::CapacityMap;
use muerp_core::extensions::{route_group_cached, Request, RequestStream, SloClass, StreamConfig};
use muerp_core::model::QuantumNetwork;
use muerp_core::tree::EntanglementTree;

use crate::policy::{order_requests, DeficitState, PolicyKind};
use crate::queue::BoundedQueue;

/// Configuration of a batched admission run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Workload shape and total slot count (the request stream's
    /// parameters; churn fields are ignored — the service owns all
    /// capacity changes through admissions and departures).
    pub stream: StreamConfig,
    /// Slots per admission round; decisions happen at round ends.
    pub round_slots: u64,
    /// Bounded-queue capacity: arrivals beyond this within one round
    /// are shed.
    pub queue_capacity: usize,
    /// Admission-order policy.
    pub policy: PolicyKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            stream: StreamConfig::default(),
            round_slots: 32,
            queue_capacity: 16,
            policy: PolicyKind::Fcfs,
        }
    }
}

impl ServeConfig {
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        self.stream.validate();
        assert!(self.round_slots >= 1, "rounds must span at least one slot");
        assert!(self.queue_capacity >= 1, "queue capacity must be ≥ 1");
    }

    /// Number of rounds a run of this configuration executes.
    pub fn rounds(&self) -> u64 {
        self.stream.slots.div_ceil(self.round_slots)
    }
}

/// The outcome of one request's admission decision.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Admitted with this entanglement tree (channels reserved).
    Admitted {
        /// The routed group tree, bitwise-comparable across engines.
        tree: EntanglementTree,
    },
    /// A requested member was still in an active session.
    BlockedBusy,
    /// No capacity-respecting tree existed.
    BlockedCapacity,
    /// Shed by backpressure before any routing was attempted.
    Shed,
}

impl Verdict {
    /// Stable name (fixtures and CSV keys use this).
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Admitted { .. } => "admitted",
            Verdict::BlockedBusy => "blocked-busy",
            Verdict::BlockedCapacity => "blocked-capacity",
            Verdict::Shed => "shed",
        }
    }
}

/// One request's decision, in decision order (sheds first, then the
/// policy-ordered admissions of each round).
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Id of the decided request.
    pub request: u64,
    /// The request's arrival slot.
    pub arrived_slot: u64,
    /// Round the decision was made in.
    pub round: u64,
    /// The request's SLO class.
    pub class: SloClass,
    /// Requested group size.
    pub size: usize,
    /// The verdict (with the routed tree when admitted).
    pub verdict: Verdict,
}

/// Per-round accounting, also mirrored into the time series (one
/// window per round).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RoundReport {
    /// Round index.
    pub round: u64,
    /// Decision slot (exclusive end of the round's slot window).
    pub end_slot: u64,
    /// Requests decided by the policy this round (post-shed).
    pub queued: usize,
    /// Requests shed by backpressure this round.
    pub shed: u64,
    /// Admissions this round.
    pub admitted: u64,
    /// Member-busy blocks this round.
    pub blocked_busy: u64,
    /// Capacity blocks this round.
    pub blocked_capacity: u64,
    /// Sessions departed at this round's decision point.
    pub departures: u64,
    /// Full finder searches this round (warm batch + admission loop).
    pub searches: u64,
    /// Distinct sources warmed for this round's queue.
    pub warmed: usize,
}

/// Per-class decision tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Requests of this class that arrived.
    pub arrived: u64,
    /// …that were admitted.
    pub admitted: u64,
    /// …that were blocked (either reason).
    pub blocked: u64,
    /// …that were shed by backpressure.
    pub shed: u64,
}

/// Run-level aggregate statistics of one serve run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests blocked because a member was busy.
    pub blocked_busy: u64,
    /// Requests blocked for lack of capacity.
    pub blocked_capacity: u64,
    /// Requests shed by backpressure.
    pub shed: u64,
    /// Sessions that departed during the run.
    pub departures: u64,
    /// Peak queue depth observed at any decision point.
    pub peak_queue: usize,
    /// Peak concurrently active sessions.
    pub peak_active_sessions: usize,
    /// Mean entanglement rate over admitted sessions.
    pub mean_session_rate: f64,
    /// Full finder searches over the whole run.
    pub total_searches: u64,
    /// Finder-cache tallies over the run.
    pub cache: CacheEfficiency,
    /// Per-class tallies, indexed by [`SloClass::index`].
    pub per_class: [ClassTally; 3],
}

impl ServeStats {
    /// Total blocked requests (either reason).
    pub fn blocked(&self) -> u64 {
        self.blocked_busy + self.blocked_capacity
    }

    /// Fraction of arrivals not admitted (blocked or shed).
    pub fn loss_ratio(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            (self.blocked() + self.shed) as f64 / self.arrived as f64
        }
    }
}

/// Everything a serve run produces.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOutcome {
    /// Run-level totals.
    pub stats: ServeStats,
    /// Every decision, in decision order.
    pub decisions: Vec<Decision>,
    /// Per-round reports, in round order.
    pub rounds: Vec<RoundReport>,
    /// The per-round time series (one window per round).
    pub series: TimeSeriesSection,
    /// Final deficit balances of the weighted-fairness policy (zeros
    /// under the other policies).
    pub deficits: [u64; 3],
}

struct Session {
    tree: EntanglementTree,
    expires_at: u64,
    members: Vec<NodeId>,
}

/// Runs the full service over the seeded request stream: draws the
/// script via [`RequestStream`] and batches it through
/// [`serve_requests`].
pub fn serve(net: &QuantumNetwork, cfg: &ServeConfig, seed: u64) -> ServeOutcome {
    let requests: Vec<Request> = RequestStream::new(net, cfg.stream, seed).collect();
    serve_requests(net, cfg, &requests)
}

/// [`serve`] over an explicit request script, with the pool width taken
/// from the environment (`MUERP_THREADS`).
pub fn serve_requests(
    net: &QuantumNetwork,
    cfg: &ServeConfig,
    requests: &[Request],
) -> ServeOutcome {
    serve_with_cache(net, cfg, requests, ChannelFinderCache::new(net))
}

/// [`serve_requests`] with an explicit pool — the hook the differential
/// battery uses to pin widths 1 and 4.
pub fn serve_requests_with_pool(
    net: &QuantumNetwork,
    cfg: &ServeConfig,
    requests: &[Request],
    pool: Pool,
) -> ServeOutcome {
    serve_with_cache(net, cfg, requests, ChannelFinderCache::with_pool(net, pool))
}

fn serve_with_cache<'n>(
    net: &'n QuantumNetwork,
    cfg: &ServeConfig,
    requests: &[Request],
    mut cache: ChannelFinderCache<'n>,
) -> ServeOutcome {
    cfg.validate();
    let mut capacity = CapacityMap::new(net);
    let rounds_total = cfg.rounds();
    let mut series = TimeSeries::new(TimeSeriesConfig {
        window_slots: cfg.round_slots,
        capacity: (rounds_total + 2) as usize,
    });
    for key in [
        "arrivals",
        "admitted",
        "blocked_busy",
        "blocked_capacity",
        "shed",
        "departures",
    ] {
        series.rate_add(key, 0);
    }

    let mut queue = BoundedQueue::new(cfg.queue_capacity);
    let mut deficit = DeficitState::new();
    let mut active: Vec<Session> = Vec::new();
    let mut stats = ServeStats::default();
    let mut decisions: Vec<Decision> = Vec::new();
    let mut rounds: Vec<RoundReport> = Vec::new();
    let mut session_rate_sum = 0.0f64;
    let mut next = 0usize;

    for round in 0..rounds_total {
        let start = round * cfg.round_slots;
        let end = ((round + 1) * cfg.round_slots).min(cfg.stream.slots);
        series.advance_to(start);

        // 1. Departures due by the decision slot, applied as delta
        // restores: release, then absorb so pending repairs queued for
        // the departing relays are cancelled eagerly.
        let mut departed = 0u64;
        let mut kept_sessions = Vec::with_capacity(active.len());
        for session in active.drain(..) {
            if session.expires_at <= end {
                for c in &session.tree.channels {
                    capacity.release(c);
                }
                departed += 1;
            } else {
                kept_sessions.push(session);
            }
        }
        active = kept_sessions;
        if departed > 0 {
            cache.absorb(&capacity);
        }
        stats.departures += departed;

        // 2. Collect the round's arrivals into the bounded queue.
        while next < requests.len() && requests[next].slot < end {
            let r = requests[next].clone();
            next += 1;
            stats.arrived += 1;
            stats.per_class[r.class.index()].arrived += 1;
            series.rate_add("arrivals", 1);
            qnet_obs::counter!("serve.arrivals");
            queue.offer(r);
        }
        let (kept, shed) = queue.drain();
        for r in &shed {
            stats.shed += 1;
            stats.per_class[r.class.index()].shed += 1;
            series.rate_add("shed", 1);
            qnet_obs::counter!("serve.shed");
            decisions.push(Decision {
                request: r.id,
                arrived_slot: r.slot,
                round,
                class: r.class,
                size: r.members.len(),
                verdict: Verdict::Shed,
            });
        }
        stats.peak_queue = stats.peak_queue.max(kept.len());

        // 3. Warm the cache once for every distinct member (the
        // qnet-pool batch path: one parallel fan-out per round).
        let mut sources: Vec<NodeId> = kept
            .iter()
            .flat_map(|r| r.members.iter().copied())
            .collect();
        sources.sort_unstable();
        sources.dedup();
        let searches_before = cache.search_count();
        cache.warm(&capacity, &sources);

        // 4. Policy order, then sequential admission against shared
        // capacity.
        let mut busy: HashSet<NodeId> = active
            .iter()
            .flat_map(|s| s.members.iter().copied())
            .collect();
        let order = order_requests(cfg.policy, &kept, &mut deficit);
        let mut report = RoundReport {
            round,
            end_slot: end,
            queued: kept.len(),
            shed: shed.len() as u64,
            departures: departed,
            warmed: sources.len(),
            ..RoundReport::default()
        };
        for idx in order {
            let r = &kept[idx];
            let verdict = if r.members.iter().any(|m| busy.contains(m)) {
                stats.blocked_busy += 1;
                stats.per_class[r.class.index()].blocked += 1;
                report.blocked_busy += 1;
                series.rate_add("blocked_busy", 1);
                qnet_obs::counter!("serve.blocked", reason = "busy");
                Verdict::BlockedBusy
            } else {
                match route_group_cached(net, &mut cache, &mut capacity, &r.members) {
                    Some(tree) => {
                        stats.admitted += 1;
                        stats.per_class[r.class.index()].admitted += 1;
                        report.admitted += 1;
                        series.rate_add("admitted", 1);
                        qnet_obs::counter!("serve.admitted");
                        session_rate_sum += tree.rate().value();
                        busy.extend(r.members.iter().copied());
                        active.push(Session {
                            tree: tree.clone(),
                            expires_at: end + r.hold,
                            members: r.members.clone(),
                        });
                        Verdict::Admitted { tree }
                    }
                    None => {
                        stats.blocked_capacity += 1;
                        stats.per_class[r.class.index()].blocked += 1;
                        report.blocked_capacity += 1;
                        series.rate_add("blocked_capacity", 1);
                        qnet_obs::counter!("serve.blocked", reason = "capacity");
                        Verdict::BlockedCapacity
                    }
                }
            };
            decisions.push(Decision {
                request: r.id,
                arrived_slot: r.slot,
                round,
                class: r.class,
                size: r.members.len(),
                verdict,
            });
        }

        report.searches = cache.search_count() - searches_before;
        series.rate_add("departures", departed);
        series.latency("round_searches", report.searches);
        qnet_obs::histogram!("serve.round_searches", report.searches);
        stats.peak_active_sessions = stats.peak_active_sessions.max(active.len());
        series.gauge("queue_depth", kept.len() as f64);
        series.gauge("active_sessions", active.len() as f64);
        series.gauge("free_qubits", free_qubit_total(net, &capacity));
        series.gauge("cache_hit_rate", cache.efficiency().hit_rate());
        rounds.push(report);
    }

    stats.mean_session_rate = if stats.admitted == 0 {
        0.0
    } else {
        session_rate_sum / stats.admitted as f64
    };
    stats.total_searches = cache.search_count();
    stats.cache = cache.efficiency();
    ServeOutcome {
        stats,
        decisions,
        rounds,
        series: series.finish(),
        deficits: deficit.deficits(),
    }
}

/// Total free qubits across the network's switches.
fn free_qubit_total(net: &QuantumNetwork, capacity: &CapacityMap) -> f64 {
    net.switches().map(|s| capacity.free(s) as u64).sum::<u64>() as f64
}

/// Audits one admitted group solution independently of the engine:
/// every channel structurally valid, endpoints inside the group, and
/// the channels forming a spanning tree over exactly the members.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn audit_group_tree(
    net: &QuantumNetwork,
    members: &[NodeId],
    tree: &EntanglementTree,
) -> Result<(), String> {
    if tree.channels.len() + 1 != members.len() {
        return Err(format!(
            "{} channels cannot span {} members",
            tree.channels.len(),
            members.len()
        ));
    }
    let group: HashSet<NodeId> = members.iter().copied().collect();
    let mut uf = UnionFind::new(net.graph().node_count());
    for c in &tree.channels {
        c.validate(net)
            .map_err(|e| format!("invalid channel: {e}"))?;
        let (a, b) = (c.source(), c.destination());
        if !group.contains(&a) || !group.contains(&b) {
            return Err(format!("channel endpoint outside the group: {a}–{b}"));
        }
        if !uf.union(a.index(), b.index()) {
            return Err(format!("cycle through {a}–{b}"));
        }
    }
    let root = uf.find(members[0].index());
    for &m in members {
        if uf.find(m.index()) != root {
            return Err(format!("member {m} disconnected from the group tree"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::NetworkSpec;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                slots: 256,
                window_slots: 32,
                ..StreamConfig::default()
            },
            round_slots: 16,
            queue_capacity: 4,
            policy: PolicyKind::Fcfs,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let net = NetworkSpec::paper_default().build(7);
        let a = serve(&net, &small_cfg(), 7);
        let b = serve(&net, &small_cfg(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn accounting_adds_up_and_rounds_cover_the_run() {
        let net = NetworkSpec::paper_default().build(8);
        let out = serve(&net, &small_cfg(), 8);
        let s = out.stats;
        assert!(s.arrived > 0);
        assert_eq!(s.arrived, s.admitted + s.blocked() + s.shed);
        assert_eq!(out.decisions.len() as u64, s.arrived);
        assert_eq!(out.rounds.len() as u64, small_cfg().rounds());
        assert_eq!(out.series.windows.len(), out.rounds.len());
        assert_eq!(out.series.evicted, 0);
        // Per-round reports agree with the run totals.
        let sum = |f: fn(&RoundReport) -> u64| out.rounds.iter().map(f).sum::<u64>();
        assert_eq!(sum(|r| r.admitted), s.admitted);
        assert_eq!(sum(|r| r.shed), s.shed);
        assert_eq!(sum(|r| r.blocked_busy + r.blocked_capacity), s.blocked());
        assert_eq!(sum(|r| r.departures), s.departures);
        // And with the time series.
        assert_eq!(out.series.merged_rate("arrivals"), s.arrived);
        assert_eq!(out.series.merged_rate("admitted"), s.admitted);
        assert_eq!(out.series.merged_rate("shed"), s.shed);
        // Per-class tallies partition the totals.
        let class_sum = |f: fn(&ClassTally) -> u64| out.stats.per_class.iter().map(f).sum::<u64>();
        assert_eq!(class_sum(|c| c.arrived), s.arrived);
        assert_eq!(class_sum(|c| c.admitted), s.admitted);
        assert_eq!(class_sum(|c| c.blocked), s.blocked());
        assert_eq!(class_sum(|c| c.shed), s.shed);
    }

    #[test]
    fn backpressure_sheds_under_a_tight_queue() {
        let net = NetworkSpec::paper_default().build(9);
        let mut cfg = small_cfg();
        cfg.queue_capacity = 2;
        let out = serve(&net, &cfg, 9);
        assert!(
            out.stats.shed > 0,
            "2-deep queue under 16-slot rounds sheds"
        );
        for d in &out.decisions {
            if d.verdict == Verdict::Shed {
                assert!(d.size >= 2);
            }
        }
    }

    #[test]
    fn admitted_trees_pass_the_independent_audit() {
        let net = NetworkSpec::paper_default().build(10);
        let cfg = small_cfg();
        let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, 10).collect();
        let out = serve_requests(&net, &cfg, &requests);
        let mut audited = 0;
        for d in &out.decisions {
            if let Verdict::Admitted { tree } = &d.verdict {
                let members = &requests[d.request as usize].members;
                audit_group_tree(&net, members, tree).expect("audit-clean");
                audited += 1;
            }
        }
        assert!(audited > 0, "workload must admit something");
    }

    #[test]
    fn policies_reorder_but_conserve_accounting() {
        let net = NetworkSpec::paper_default().build(11);
        let mut per_policy = Vec::new();
        for policy in PolicyKind::ALL {
            let cfg = ServeConfig {
                policy,
                ..small_cfg()
            };
            let out = serve(&net, &cfg, 11);
            assert_eq!(
                out.stats.arrived,
                out.stats.admitted + out.stats.blocked() + out.stats.shed
            );
            per_policy.push(out);
        }
        // All policies see the identical offered load and sheds (sheds
        // happen before ordering).
        assert!(per_policy.windows(2).all(
            |w| w[0].stats.arrived == w[1].stats.arrived && w[0].stats.shed == w[1].stats.shed
        ));
        // Non-FCFS policies must leave no deficit trace unless weighted.
        assert_eq!(per_policy[0].deficits, [0, 0, 0]);
        assert_eq!(per_policy[1].deficits, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn bad_config_rejected() {
        let net = NetworkSpec::paper_default().build(3);
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..small_cfg()
        };
        serve(&net, &cfg, 3);
    }
}
