//! JSON pinning of request scripts and decision logs for the golden
//! serve fixture.
//!
//! The format is hand-rolled over `serde_json::Value` so every parse
//! failure names the violated field — the golden test corrupts single
//! fields and asserts the rejection message, exactly like the churn
//! fixture's named-invariant checks. Trees are pinned as node-index
//! paths plus the search cost; edges and rates are *rebuilt* from the
//! network on load ([`Channel::from_path`] recomputes Eq. 1 exactly),
//! so a reloaded decision log compares bitwise equal to a fresh run.

use qnet_graph::{NodeId, Path};
use serde_json::{Map, Value};

use muerp_core::channel::Channel;
use muerp_core::extensions::{Request, SloClass};
use muerp_core::model::QuantumNetwork;
use muerp_core::tree::EntanglementTree;

use crate::engine::{Decision, Verdict};

/// Serializes a request script (members as node indices, classes by
/// name).
pub fn requests_to_json(requests: &[Request]) -> Value {
    Value::Array(
        requests
            .iter()
            .map(|r| {
                let mut obj = Map::new();
                obj.insert("id".into(), Value::from(r.id));
                obj.insert("slot".into(), Value::from(r.slot));
                obj.insert(
                    "members".into(),
                    Value::Array(
                        r.members
                            .iter()
                            .map(|m| Value::from(m.index() as u64))
                            .collect(),
                    ),
                );
                obj.insert("hold".into(), Value::from(r.hold));
                obj.insert("class".into(), Value::from(r.class.name()));
                Value::Object(obj)
            })
            .collect(),
    )
}

/// Parses [`requests_to_json`] back, validating member indices against
/// `net`.
///
/// # Errors
///
/// Returns a message naming the first malformed field.
pub fn requests_from_json(net: &QuantumNetwork, value: &Value) -> Result<Vec<Request>, String> {
    let items = value.as_array().ok_or("requests must be an array")?;
    let mut requests = Vec::with_capacity(items.len());
    for item in items {
        let obj = item.as_object().ok_or("request must be an object")?;
        requests.push(Request {
            id: field_u64(obj, "id")?,
            slot: field_u64(obj, "slot")?,
            members: parse_members(net, obj.get("members"))?,
            hold: field_u64(obj, "hold")?,
            class: parse_class(obj.get("class"))?,
        });
    }
    Ok(requests)
}

/// Serializes a decision log; admitted trees become per-channel node
/// paths plus the pinned search cost.
pub fn decisions_to_json(decisions: &[Decision]) -> Value {
    Value::Array(
        decisions
            .iter()
            .map(|d| {
                let mut obj = Map::new();
                obj.insert("request".into(), Value::from(d.request));
                obj.insert("arrived_slot".into(), Value::from(d.arrived_slot));
                obj.insert("round".into(), Value::from(d.round));
                obj.insert("class".into(), Value::from(d.class.name()));
                obj.insert("size".into(), Value::from(d.size));
                obj.insert("verdict".into(), Value::from(d.verdict.name()));
                if let Verdict::Admitted { tree } = &d.verdict {
                    obj.insert(
                        "tree".into(),
                        Value::Array(
                            tree.channels
                                .iter()
                                .map(|c| {
                                    let mut ch = Map::new();
                                    ch.insert(
                                        "nodes".into(),
                                        Value::Array(
                                            c.path
                                                .nodes
                                                .iter()
                                                .map(|n| Value::from(n.index() as u64))
                                                .collect(),
                                        ),
                                    );
                                    ch.insert("cost".into(), Value::from(c.path.cost));
                                    Value::Object(ch)
                                })
                                .collect(),
                        ),
                    );
                }
                Value::Object(obj)
            })
            .collect(),
    )
}

/// Parses [`decisions_to_json`] back, rebuilding every channel from the
/// pinned node path: edges are resolved against `net`'s graph and rates
/// recomputed from Eq. 1, so a clean round trip is bitwise-faithful.
///
/// # Errors
///
/// Returns a message naming the first malformed field.
pub fn decisions_from_json(net: &QuantumNetwork, value: &Value) -> Result<Vec<Decision>, String> {
    let items = value.as_array().ok_or("decisions must be an array")?;
    let mut decisions = Vec::with_capacity(items.len());
    for item in items {
        let obj = item.as_object().ok_or("decision must be an object")?;
        let verdict_name = obj
            .get("verdict")
            .and_then(Value::as_str)
            .ok_or("decision verdict must be a string")?;
        let verdict = match verdict_name {
            "admitted" => Verdict::Admitted {
                tree: parse_tree(net, obj.get("tree"))?,
            },
            "blocked-busy" => Verdict::BlockedBusy,
            "blocked-capacity" => Verdict::BlockedCapacity,
            "shed" => Verdict::Shed,
            other => return Err(format!("unknown verdict [{other}]")),
        };
        decisions.push(Decision {
            request: field_u64(obj, "request")?,
            arrived_slot: field_u64(obj, "arrived_slot")?,
            round: field_u64(obj, "round")?,
            class: parse_class(obj.get("class"))?,
            size: field_u64(obj, "size")? as usize,
            verdict,
        });
    }
    Ok(decisions)
}

fn field_u64(obj: &Map<String, Value>, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("field [{key}] must be an unsigned integer"))
}

fn parse_class(value: Option<&Value>) -> Result<SloClass, String> {
    let name = value
        .and_then(Value::as_str)
        .ok_or("field [class] must be a string")?;
    SloClass::parse(name).ok_or_else(|| format!("unknown SLO class [{name}]"))
}

fn parse_members(net: &QuantumNetwork, value: Option<&Value>) -> Result<Vec<NodeId>, String> {
    let items = value
        .and_then(Value::as_array)
        .ok_or("field [members] must be an array")?;
    let bound = net.graph().node_count();
    let mut members = Vec::with_capacity(items.len());
    for item in items {
        let idx = item.as_u64().ok_or("member must be a node index")? as usize;
        if idx >= bound {
            return Err(format!("member index {idx} out of range (< {bound})"));
        }
        members.push(NodeId::new(idx));
    }
    if members.len() < 2 {
        return Err("a request needs at least two members".into());
    }
    Ok(members)
}

fn parse_tree(net: &QuantumNetwork, value: Option<&Value>) -> Result<EntanglementTree, String> {
    let items = value
        .and_then(Value::as_array)
        .ok_or("admitted decision must pin a [tree] array")?;
    let bound = net.graph().node_count();
    let mut tree = EntanglementTree::new();
    for item in items {
        let obj = item.as_object().ok_or("channel must be an object")?;
        let cost = obj
            .get("cost")
            .and_then(Value::as_f64)
            .ok_or("field [cost] must be a number")?;
        let raw = obj
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or("field [nodes] must be an array")?;
        if raw.len() < 2 {
            return Err("a channel path needs at least two nodes".into());
        }
        let mut nodes = Vec::with_capacity(raw.len());
        for n in raw {
            let idx = n.as_u64().ok_or("path node must be a node index")? as usize;
            if idx >= bound {
                return Err(format!("path node {idx} out of range (< {bound})"));
            }
            nodes.push(NodeId::new(idx));
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for pair in nodes.windows(2) {
            let edge = net
                .graph()
                .find_edge(pair[0], pair[1])
                .ok_or_else(|| format!("no edge between {} and {}", pair[0], pair[1]))?;
            edges.push(edge);
        }
        tree.push(Channel::from_path(net, Path { nodes, edges, cost }));
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{serve_requests, ServeConfig};
    use crate::policy::PolicyKind;
    use muerp_core::extensions::{RequestStream, StreamConfig};
    use muerp_core::model::NetworkSpec;

    fn setup() -> (QuantumNetwork, Vec<Request>, Vec<Decision>) {
        let net = NetworkSpec::paper_default().build(33);
        let cfg = ServeConfig {
            stream: StreamConfig {
                slots: 64,
                window_slots: 16,
                ..StreamConfig::default()
            },
            round_slots: 16,
            queue_capacity: 8,
            policy: PolicyKind::Fcfs,
        };
        let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, 33).collect();
        let decisions = serve_requests(&net, &cfg, &requests).decisions;
        (net, requests, decisions)
    }

    #[test]
    fn requests_round_trip_bitwise() {
        let (net, requests, _) = setup();
        assert!(!requests.is_empty());
        let json = requests_to_json(&requests);
        let back = requests_from_json(&net, &json).expect("round trip");
        assert_eq!(back, requests);
    }

    #[test]
    fn decisions_round_trip_bitwise_including_trees() {
        let (net, _, decisions) = setup();
        assert!(decisions
            .iter()
            .any(|d| matches!(d.verdict, Verdict::Admitted { .. })));
        let json = decisions_to_json(&decisions);
        let back = decisions_from_json(&net, &json).expect("round trip");
        assert_eq!(back, decisions);
    }

    fn first_obj(value: &mut Value) -> &mut Map<String, Value> {
        match value {
            Value::Array(items) => match items.first_mut().expect("non-empty array") {
                Value::Object(obj) => obj,
                _ => panic!("expected an object"),
            },
            _ => panic!("expected an array"),
        }
    }

    #[test]
    fn malformed_fields_are_rejected_by_name() {
        let (net, requests, decisions) = setup();
        let mut bad = requests_to_json(&requests);
        first_obj(&mut bad).insert("class".into(), Value::from("platinum"));
        let e = requests_from_json(&net, &bad).expect_err("unknown class rejected");
        assert!(e.contains("unknown SLO class"), "{e}");

        let mut bad = requests_to_json(&requests);
        match first_obj(&mut bad).get_mut("members") {
            Some(Value::Array(members)) => members[0] = Value::from(10_000u64),
            _ => panic!("members pinned as an array"),
        }
        let e = requests_from_json(&net, &bad).expect_err("oob member rejected");
        assert!(e.contains("out of range"), "{e}");

        let mut bad = decisions_to_json(&decisions);
        first_obj(&mut bad).insert("verdict".into(), Value::from("vaporized"));
        let e = decisions_from_json(&net, &bad).expect_err("unknown verdict rejected");
        assert!(e.contains("unknown verdict"), "{e}");
    }
}
