//! Bounded admission queue with shed-on-overflow backpressure.
//!
//! The engine offers every arrival of a round to the queue; once the
//! queue is full, further offers are **shed** — refused outright, with
//! an exact tally. Because offers arrive in request order and the queue
//! drains completely at each round's decision point, the shed set is
//! always exactly the *over-capacity suffix* of the round's arrivals
//! (the property the proptests pin down).

use muerp_core::extensions::Request;

/// A bounded FIFO of pending requests; overflow is shed, never blocked.
#[derive(Clone, Debug)]
pub struct BoundedQueue {
    capacity: usize,
    items: Vec<Request>,
    shed: Vec<Request>,
    shed_total: u64,
}

impl BoundedQueue {
    /// A queue holding at most `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a queue that sheds everything
    /// is a misconfiguration, not a backpressure mode.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be ≥ 1");
        BoundedQueue {
            capacity,
            items: Vec::with_capacity(capacity),
            shed: Vec::new(),
            shed_total: 0,
        }
    }

    /// Maximum pending requests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offers a request: queued (`true`) or shed (`false`).
    pub fn offer(&mut self, request: Request) -> bool {
        if self.items.len() < self.capacity {
            self.items.push(request);
            true
        } else {
            self.shed.push(request);
            self.shed_total += 1;
            false
        }
    }

    /// Total requests shed over the queue's lifetime.
    pub fn shed_total(&self) -> u64 {
        self.shed_total
    }

    /// Drains the round: returns `(kept, shed)` in offer order and
    /// resets both buffers for the next fill cycle. `kept` is the first
    /// `capacity` offers of the cycle, `shed` exactly the remainder.
    pub fn drain(&mut self) -> (Vec<Request>, Vec<Request>) {
        (
            std::mem::take(&mut self.items),
            std::mem::take(&mut self.shed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::extensions::SloClass;

    fn req(id: u64) -> Request {
        Request {
            id,
            slot: id,
            members: vec![qnet_graph::NodeId::new(0), qnet_graph::NodeId::new(1)],
            hold: 1,
            class: SloClass::Bronze,
        }
    }

    #[test]
    fn sheds_exactly_the_over_capacity_suffix() {
        let mut q = BoundedQueue::new(3);
        for id in 0..5 {
            let kept = q.offer(req(id));
            assert_eq!(kept, id < 3);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.shed_total(), 2);
        let (kept, shed) = q.drain();
        assert_eq!(kept.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(shed.iter().map(|r| r.id).collect::<Vec<_>>(), [3, 4]);
        // Drain resets the cycle but not the lifetime tally.
        assert!(q.is_empty());
        assert!(q.offer(req(9)));
        assert_eq!(q.shed_total(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be ≥ 1")]
    fn zero_capacity_rejected() {
        BoundedQueue::new(0);
    }
}
