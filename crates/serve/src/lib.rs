//! # muerp-serve — batched streaming admission service
//!
//! A long-running admission engine over the seeded open-loop request
//! stream ([`muerp_core::extensions::RequestStream`]): arrivals,
//! departures, and SLO classes are consumed in **batched admission
//! rounds** instead of one request at a time.
//!
//! Each round:
//!
//! 1. applies every due departure as a delta-engine restore — channels
//!    released, then [`ChannelFinderCache::absorb`] cancels the pending
//!    repairs queued for the departing groups' relay flips;
//! 2. collects the round's arrivals into a [`BoundedQueue`], shedding
//!    the over-capacity suffix with an exact tally (backpressure);
//! 3. warms the [`ChannelFinderCache`] **once** for all distinct
//!    members of the queued requests via the qnet-pool batch path;
//! 4. orders the queue under a pluggable [`PolicyKind`] — FCFS,
//!    smallest-group-first, or deficit-weighted fairness — and admits
//!    sequentially against shared switch capacity.
//!
//! The headline correctness claim is differential: under FCFS, the
//! batched engine is **decision-equivalent** to the cold sequential
//! per-request oracle ([`sequential_fcfs`]) — the same admit/block
//! sequence with bitwise-identical entanglement trees, at every pool
//! width. That holds because the warm path installs bitwise-identical
//! runs in source order regardless of thread count, and the delta
//! engine's repaired/revalidated entries are bitwise equal to cold
//! recomputation (the PR 9 battery).
//!
//! [`ChannelFinderCache`]: muerp_core::algorithms::ChannelFinderCache
//! [`ChannelFinderCache::absorb`]: muerp_core::algorithms::ChannelFinderCache::absorb

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fixture;
pub mod oracle;
pub mod policy;
pub mod queue;

pub use engine::{
    audit_group_tree, serve, serve_requests, serve_requests_with_pool, ClassTally, Decision,
    RoundReport, ServeConfig, ServeOutcome, ServeStats, Verdict,
};
pub use oracle::sequential_fcfs;
pub use policy::{DeficitState, PolicyKind, CLASS_WEIGHTS};
pub use queue::BoundedQueue;
