//! The differential battery: batched admission must be
//! decision-equivalent to the sequential cold-routing FCFS oracle —
//! same admit/block sequence, bitwise-identical entanglement trees —
//! at pool widths 1 and 4, and the whole [`ServeOutcome`] must be
//! bitwise invariant across widths.

use qnet_pool::Pool;

use muerp_core::extensions::{Request, RequestStream, StreamConfig};
use muerp_core::model::NetworkSpec;
use muerp_serve::{
    audit_group_tree, sequential_fcfs, serve_requests_with_pool, PolicyKind, ServeConfig, Verdict,
};

const SEEDS: [u64; 3] = [3, 11, 29];

fn battery_cfg() -> ServeConfig {
    ServeConfig {
        stream: StreamConfig {
            slots: 256,
            window_slots: 32,
            ..StreamConfig::default()
        },
        round_slots: 16,
        // Tight enough that busy periods shed — the battery must cover
        // the backpressure path, not only admit/block.
        queue_capacity: 4,
        policy: PolicyKind::Fcfs,
    }
}

#[test]
fn batched_fcfs_is_decision_equivalent_to_the_sequential_oracle() {
    let cfg = battery_cfg();
    for seed in SEEDS {
        let net = NetworkSpec::paper_default().build(seed);
        let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, seed).collect();
        let oracle = sequential_fcfs(&net, &cfg, &requests);
        assert_eq!(
            oracle.len(),
            requests.len(),
            "every request gets a decision"
        );
        for width in [1, 4] {
            let out = serve_requests_with_pool(&net, &cfg, &requests, Pool::with_threads(width));
            assert_eq!(
                out.decisions, oracle,
                "seed {seed}, width {width}: batched decisions diverged from the oracle"
            );
        }
    }
}

#[test]
fn outcome_is_bitwise_identical_across_pool_widths() {
    let cfg = battery_cfg();
    for seed in SEEDS {
        let net = NetworkSpec::paper_default().build(seed);
        let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, seed).collect();
        let narrow = serve_requests_with_pool(&net, &cfg, &requests, Pool::with_threads(1));
        let wide = serve_requests_with_pool(&net, &cfg, &requests, Pool::with_threads(4));
        // The whole outcome — stats, decisions, rounds, time series,
        // deficits — not just the decision log.
        assert_eq!(narrow, wide, "seed {seed}: outcome depends on pool width");
    }
}

#[test]
fn every_admitted_solution_audits_clean_and_accounting_closes() {
    let cfg = battery_cfg();
    for seed in SEEDS {
        let net = NetworkSpec::paper_default().build(seed);
        let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, seed).collect();
        let out = serve_requests_with_pool(&net, &cfg, &requests, Pool::with_threads(4));

        let mut admitted = 0u64;
        let mut blocked = 0u64;
        let mut shed = 0u64;
        for d in &out.decisions {
            match &d.verdict {
                Verdict::Admitted { tree } => {
                    let members = &requests[d.request as usize].members;
                    audit_group_tree(&net, members, tree)
                        .unwrap_or_else(|e| panic!("seed {seed}, request {}: {e}", d.request));
                    admitted += 1;
                }
                Verdict::BlockedBusy | Verdict::BlockedCapacity => blocked += 1,
                Verdict::Shed => shed += 1,
            }
        }
        assert!(admitted > 0, "seed {seed}: battery must admit something");
        assert!(shed > 0, "seed {seed}: 4-deep queue must shed under load");
        assert_eq!(admitted, out.stats.admitted);
        assert_eq!(blocked, out.stats.blocked());
        assert_eq!(shed, out.stats.shed);
        assert_eq!(admitted + blocked + shed, out.stats.arrived);
        assert_eq!(out.decisions.len() as u64, out.stats.arrived);
    }
}

#[test]
fn warm_batching_actually_saves_searches_over_the_oracle() {
    // Not an equivalence claim but the point of batching: the cached
    // engine reaches the same decisions with strictly fewer full
    // searches than cold per-step recomputation would issue.
    let cfg = battery_cfg();
    let seed = SEEDS[0];
    let net = NetworkSpec::paper_default().build(seed);
    let requests: Vec<Request> = RequestStream::new(&net, cfg.stream, seed).collect();
    let out = serve_requests_with_pool(&net, &cfg, &requests, Pool::with_threads(1));
    assert!(
        out.stats.cache.hits > 0,
        "the batch warm path must convert repeat lookups into cache hits"
    );
}
