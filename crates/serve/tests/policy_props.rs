//! Property battery over the serve policies and telemetry:
//!
//! * the weighted-fairness deficit counters never exceed their cap, so
//!   no class is ever starved — any class with pending work is served
//!   within a provable bound of emissions;
//! * backpressure sheds exactly the over-capacity suffix of each fill
//!   cycle, nothing more, nothing less;
//! * the round-level time-series counters sum exactly to the run-level
//!   stream totals across arbitrary round sizes and queue capacities.

use proptest::prelude::*;

use qnet_graph::NodeId;

use muerp_core::extensions::{Request, SloClass, StreamConfig};
use muerp_core::model::NetworkSpec;
use muerp_serve::{serve, BoundedQueue, DeficitState, PolicyKind, ServeConfig, CLASS_WEIGHTS};

fn class_of(index: usize) -> SloClass {
    SloClass::ALL[index % 3]
}

fn request(id: u64, class: SloClass) -> Request {
    Request {
        id,
        slot: id,
        members: vec![NodeId::new(0), NodeId::new(1)],
        hold: 1,
        class,
    }
}

/// First-service bound of deficit round-robin: before class `c` is
/// served, every other class `c'` can spend at most its instantaneous
/// maximum of `2·weight(c')` credits.
fn starvation_bound(class: usize) -> usize {
    (0..3)
        .filter(|&c| c != class)
        .map(|c| 2 * CLASS_WEIGHTS[c] as usize)
        .sum()
}

proptest! {
    /// Across arbitrary multi-round class sequences: the balances stay
    /// capped between rounds, each round's order is a permutation that
    /// preserves intra-class arrival order, and no class waits past
    /// the deficit bound for its first service.
    #[test]
    fn weighted_fairness_never_starves_a_class(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0usize..3, 0..12),
            1..16,
        ),
    ) {
        let mut deficit = DeficitState::new();
        let mut next_id = 0u64;
        for classes in &rounds {
            let queue: Vec<Request> = classes
                .iter()
                .map(|&c| {
                    next_id += 1;
                    request(next_id, class_of(c))
                })
                .collect();
            let order = deficit.order(&queue);

            // A permutation of the queue…
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &(0..queue.len()).collect::<Vec<_>>());
            // …that preserves arrival order within each class.
            for class in 0..3 {
                let served: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&i| queue[i].class.index() == class)
                    .collect();
                prop_assert!(served.windows(2).all(|w| w[0] < w[1]));
                // No starvation: the class's first service sits within
                // the deficit bound of the round's emission sequence.
                if let Some(&first) = served.first() {
                    let position = order.iter().position(|&i| i == first).unwrap();
                    prop_assert!(
                        position <= starvation_bound(class),
                        "class {} first served at position {} > bound {}",
                        class,
                        position,
                        starvation_bound(class)
                    );
                }
            }
            // Between rounds every balance is capped at one round's
            // earnings.
            for c in 0..3 {
                prop_assert!(deficit.deficits()[c] <= CLASS_WEIGHTS[c]);
            }
        }
    }

    /// The bounded queue sheds exactly the over-capacity suffix of each
    /// fill cycle, and the lifetime tally is exact.
    #[test]
    fn backpressure_sheds_exactly_the_over_capacity_suffix(
        capacity in 1usize..8,
        cycles in proptest::collection::vec(0usize..20, 1..8),
    ) {
        let mut queue = BoundedQueue::new(capacity);
        let mut next_id = 0u64;
        let mut expected_shed_total = 0u64;
        for &n in &cycles {
            let ids: Vec<u64> = (0..n).map(|_| { next_id += 1; next_id }).collect();
            for (i, &id) in ids.iter().enumerate() {
                let accepted = queue.offer(request(id, SloClass::Bronze));
                prop_assert_eq!(accepted, i < capacity, "only the first `capacity` offers fit");
            }
            let (kept, shed) = queue.drain();
            let cut = n.min(capacity);
            prop_assert_eq!(
                kept.iter().map(|r| r.id).collect::<Vec<_>>(),
                ids[..cut].to_vec(),
                "kept must be the first `capacity` offers"
            );
            prop_assert_eq!(
                shed.iter().map(|r| r.id).collect::<Vec<_>>(),
                ids[cut..].to_vec(),
                "shed must be exactly the over-capacity suffix"
            );
            expected_shed_total += (n - cut) as u64;
            prop_assert_eq!(queue.shed_total(), expected_shed_total);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 4: round-level time-series counters must sum exactly
    /// to the run-level totals for arbitrary round sizes, queue
    /// capacities, policies, and seeds — admitted + blocked + shed
    /// equals arrivals, window by window and in total.
    #[test]
    fn round_counters_sum_to_run_totals(
        round_slots in 1u64..64,
        queue_capacity in 1usize..12,
        policy_index in 0usize..3,
        seed in 0u64..1000,
    ) {
        let net = NetworkSpec::paper_default().build(seed);
        let cfg = ServeConfig {
            stream: StreamConfig {
                slots: 128,
                window_slots: 16,
                ..StreamConfig::default()
            },
            round_slots,
            queue_capacity,
            policy: PolicyKind::ALL[policy_index],
        };
        let out = serve(&net, &cfg, seed);
        let s = out.stats;

        prop_assert_eq!(out.rounds.len() as u64, cfg.rounds());
        prop_assert_eq!(out.series.windows.len(), out.rounds.len());
        prop_assert_eq!(out.series.evicted, 0);

        // Run-level identity.
        prop_assert_eq!(s.arrived, s.admitted + s.blocked() + s.shed);
        prop_assert_eq!(out.decisions.len() as u64, s.arrived);

        // Series totals equal the run totals, counter by counter.
        prop_assert_eq!(out.series.merged_rate("arrivals"), s.arrived);
        prop_assert_eq!(out.series.merged_rate("admitted"), s.admitted);
        prop_assert_eq!(out.series.merged_rate("blocked_busy"), s.blocked_busy);
        prop_assert_eq!(
            out.series.merged_rate("blocked_capacity"),
            s.blocked_capacity
        );
        prop_assert_eq!(out.series.merged_rate("shed"), s.shed);
        prop_assert_eq!(out.series.merged_rate("departures"), s.departures);
        prop_assert_eq!(
            out.series.merged_rate("admitted")
                + out.series.merged_rate("blocked_busy")
                + out.series.merged_rate("blocked_capacity")
                + out.series.merged_rate("shed"),
            s.arrived
        );

        // And window-by-window against the per-round reports.
        for (window, round) in out.series.windows.iter().zip(&out.rounds) {
            prop_assert_eq!(window.rates["admitted"], round.admitted);
            prop_assert_eq!(window.rates["shed"], round.shed);
            prop_assert_eq!(window.rates["blocked_busy"], round.blocked_busy);
            prop_assert_eq!(window.rates["blocked_capacity"], round.blocked_capacity);
            prop_assert_eq!(window.rates["departures"], round.departures);
        }
    }
}
