//! Chrome/Perfetto trace export.
//!
//! Renders a [`RunReport`]'s span tree plus the flight-recorder ring as
//! a Chrome trace-event JSON file (the `{"traceEvents": [...]}` shape
//! consumed by `ui.perfetto.dev` and `chrome://tracing`):
//!
//! * every span becomes a `B`/`E` duration-event pair on its recording
//!   thread's track, emitted by a parent-link tree walk so begin/end
//!   pairs are well nested even when microsecond timestamps tie;
//! * every flight-recorder event becomes a thread-scoped instant (`i`)
//!   at its recorded `ts_us`, with the event payload under `args` — the
//!   solver's decision points land *inside* the span that made them,
//!   because spans and trace events share one timebase;
//! * `M` metadata events name the process and one track per thread.
//!
//! The export is diagnostic output, not a stable schema: the golden
//! fixture in `tests/chrome_trace.rs` pins only the trace-event
//! *envelope* (required `ph`/`ts`/`pid`/`tid` fields and B/E balance).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::report::RunReport;
use crate::trace::Stamped;

/// Synthetic process id used for every emitted event (single-process
/// runs; Perfetto requires *a* pid, not a meaningful one).
const PID: u64 = 1;

fn event(ph: &str, name: &str, ts: u64, tid: u64) -> serde_json::Map<String, Value> {
    let mut m = serde_json::Map::new();
    m.insert("name".into(), Value::from(name));
    m.insert("ph".into(), Value::from(ph));
    m.insert("ts".into(), Value::from(ts));
    m.insert("pid".into(), Value::from(PID));
    m.insert("tid".into(), Value::from(tid));
    m
}

fn metadata(name: &str, tid: u64, arg_name: &str, arg_value: String) -> Value {
    let mut m = event("M", name, 0, tid);
    let mut args = serde_json::Map::new();
    args.insert(arg_name.into(), Value::from(arg_value));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

/// Emits `span` (begin, children, end) into `out`. `end_floor` is the
/// enclosing span's end timestamp; a child whose recorded end overshoots
/// it (clock jitter between the two `Instant` reads) is clamped so the
/// B/E stream stays monotone per track.
fn emit_span(
    report: &RunReport,
    children: &[Vec<usize>],
    index: usize,
    end_floor: u64,
    out: &mut Vec<Value>,
) {
    let span = &report.spans[index];
    let end = (span.start_us + span.duration_us).min(end_floor);
    let start = span.start_us.min(end);
    out.push(Value::Object(event("B", &span.name, start, span.thread)));
    for &child in &children[index] {
        emit_span(report, children, child, end, out);
    }
    out.push(Value::Object(event("E", &span.name, end, span.thread)));
}

/// Renders `report`'s spans plus the flight-recorder `events` as a
/// Chrome trace-event JSON value (`{"traceEvents": [...],
/// "displayTimeUnit": "ms"}`). Timestamps are microseconds since the
/// process obs epoch, the native unit of the format.
pub fn chrome_trace_value(report: &RunReport, events: &[Stamped]) -> Value {
    let n = report.spans.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in report.spans.iter().enumerate() {
        match span.parent {
            // Forward or self links never come out of the span stack;
            // treat a malformed one as a root rather than panicking on
            // diagnostic output.
            Some(p) if p < i => children[p].push(i),
            _ => roots.push(i),
        }
    }

    let mut out: Vec<Value> = Vec::with_capacity(2 * n + events.len() + 8);
    out.push(metadata("process_name", 0, "name", "muerp".into()));
    let mut tids: Vec<u64> = report
        .spans
        .iter()
        .map(|s| s.thread)
        .chain(events.iter().map(|e| e.thread))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        out.push(metadata(
            "thread_name",
            tid,
            "name",
            format!("obs-thread-{tid}"),
        ));
    }

    for &root in &roots {
        emit_span(report, &children, root, u64::MAX, &mut out);
    }

    for stamped in events {
        let mut m = event("i", stamped.event.kind(), stamped.ts_us, stamped.thread);
        m.insert("s".into(), Value::from("t"));
        let mut args = stamped.event.to_json();
        if let Value::Object(a) = &mut args {
            a.insert("seq".into(), Value::from(stamped.seq));
        }
        m.insert("args".into(), args);
        out.push(Value::Object(m));
    }

    let mut root = serde_json::Map::new();
    root.insert("traceEvents".into(), Value::Array(out));
    root.insert("displayTimeUnit".into(), Value::from("ms"));
    Value::Object(root)
}

/// Writes [`chrome_trace_value`] to `<dir>/<run>.trace.json` (creating
/// `dir`), sanitizing the run name like [`crate::write_report`].
/// Returns the written path; drag the file onto `ui.perfetto.dev` to
/// inspect it.
pub fn write_chrome_trace(
    dir: &Path,
    run: &str,
    report: &RunReport,
    events: &[Stamped],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{stem}.trace.json"));
    let value = chrome_trace_value(report, events);
    let text = serde_json::to_string_pretty(&value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::File::create(&path)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SpanSnapshot;
    use crate::trace::TraceEvent;
    use crate::SCHEMA_VERSION;

    fn report() -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            run: "chrome".into(),
            level: "trace".into(),
            spans: vec![
                SpanSnapshot {
                    name: "a.root".into(),
                    parent: None,
                    thread: 1,
                    start_us: 10,
                    duration_us: 100,
                },
                SpanSnapshot {
                    name: "a.child".into(),
                    parent: Some(0),
                    thread: 1,
                    start_us: 20,
                    // Overshoots the parent's end by 30µs; the export
                    // clamps it back inside.
                    duration_us: 120,
                },
                SpanSnapshot {
                    name: "b.other_thread".into(),
                    parent: None,
                    thread: 2,
                    start_us: 15,
                    duration_us: 5,
                },
            ],
            counters: vec![],
            histograms: vec![],
            profile: None,
            timeseries: None,
        }
    }

    fn events() -> Vec<Stamped> {
        vec![Stamped {
            seq: 0,
            ts_us: 42,
            thread: 1,
            event: TraceEvent::BeamRound {
                round: 1,
                expanded: 9,
                kept: 3,
            },
        }]
    }

    fn trace_events(v: &Value) -> &Vec<Value> {
        v.get("traceEvents").unwrap().as_array().unwrap()
    }

    #[test]
    fn begin_end_pairs_balance_per_thread_and_nest() {
        let v = chrome_trace_value(&report(), &events());
        let mut depth: std::collections::BTreeMap<u64, i64> = Default::default();
        let mut last_ts: std::collections::BTreeMap<u64, u64> = Default::default();
        for ev in trace_events(&v) {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            let tid = ev.get("tid").unwrap().as_u64().unwrap();
            let ts = ev.get("ts").unwrap().as_u64().unwrap();
            match ph {
                "B" => *depth.entry(tid).or_default() += 1,
                "E" => {
                    *depth.entry(tid).or_default() -= 1;
                    assert!(depth[&tid] >= 0, "E without matching B on tid {tid}");
                }
                _ => continue,
            }
            let prev = last_ts.entry(tid).or_insert(0);
            assert!(ts >= *prev, "B/E stream must be monotone per track");
            *prev = ts;
        }
        assert!(depth.values().all(|&d| d == 0), "every B is closed");
    }

    #[test]
    fn child_end_is_clamped_into_its_parent() {
        let v = chrome_trace_value(&report(), &[]);
        let ends: Vec<u64> = trace_events(&v)
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        // Tree walk emits child E before parent E: child clamped to 110.
        assert!(ends.contains(&110));
        assert_eq!(ends.iter().filter(|&&t| t == 110).count(), 2);
    }

    #[test]
    fn instants_carry_payload_and_thread_scope() {
        let v = chrome_trace_value(&report(), &events());
        let inst: Vec<&Value> = trace_events(&v)
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(inst.len(), 1);
        let i = inst[0];
        assert_eq!(i.get("name").and_then(|n| n.as_str()), Some("beam_round"));
        assert_eq!(i.get("ts").unwrap().as_u64(), Some(42));
        assert_eq!(i.get("s").and_then(|s| s.as_str()), Some("t"));
        let args = i.get("args").unwrap();
        assert_eq!(args.get("expanded").unwrap().as_u64(), Some(9));
        assert_eq!(args.get("seq").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn metadata_names_process_and_every_thread_track() {
        let v = chrome_trace_value(&report(), &events());
        let meta: Vec<&Value> = trace_events(&v)
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert!(meta
            .iter()
            .any(|m| m.get("name").and_then(|n| n.as_str()) == Some("process_name")));
        let tids: Vec<u64> = meta
            .iter()
            .filter(|m| m.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .map(|m| m.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids, vec![1, 2]);
    }
}
