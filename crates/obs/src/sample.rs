//! Trace sampling: keep the flight recorder useful under sustained
//! load.
//!
//! The recorder ring holds the *latest* `capacity` events; a
//! sustained-load run emitting per-admission traces overruns it within
//! seconds, leaving only the tail. A [`TraceSampler`] thins the stream
//! at the source: the driving loop asks [`TraceSampler::admit`] once
//! per admission (or any unit of work) and only emits that unit's
//! events when admitted — a deterministic 1-in-N policy, *not* random,
//! so fixed-seed runs stay byte-identical.
//!
//! Every rejection is tallied exactly, both in the sampler (for the
//! run's own accounting) and in the global `obs.trace.sampled_out`
//! counter (so run reports show precisely how much of the stream the
//! trace represents: `sampled_out / (sampled_out + recorded units)`).

/// A deterministic 1-in-N admission sampler for trace emission.
#[derive(Debug)]
pub struct TraceSampler {
    every: u64,
    seen: u64,
    sampled_out: u64,
}

impl TraceSampler {
    /// A sampler admitting the first of every `n` consecutive units
    /// (`n` clamped to ≥ 1; `every(1)` admits everything).
    pub fn every(n: u64) -> TraceSampler {
        TraceSampler {
            every: n.max(1),
            seen: 0,
            sampled_out: 0,
        }
    }

    /// Decides the next unit: `true` for units `0, n, 2n, …` in
    /// arrival order. Rejections bump the exact `sampled_out` tally
    /// and the `obs.trace.sampled_out` counter.
    pub fn admit(&mut self) -> bool {
        let admitted = self.seen.is_multiple_of(self.every);
        self.seen += 1;
        if !admitted {
            self.sampled_out += 1;
            crate::counter!("obs.trace.sampled_out");
        }
        admitted
    }

    /// The sampling period `n` of this 1-in-N sampler.
    pub fn period(&self) -> u64 {
        self.every
    }

    /// Units decided so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Units rejected so far; always `seen - ceil(seen / n)`.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_in_n_is_deterministic_and_exact() {
        let mut s = TraceSampler::every(4);
        let decisions: Vec<bool> = (0..10).map(|_| s.admit()).collect();
        assert_eq!(
            decisions,
            vec![true, false, false, false, true, false, false, false, true, false]
        );
        assert_eq!(s.seen(), 10);
        assert_eq!(s.sampled_out(), 7);
        assert_eq!(s.sampled_out(), s.seen() - s.seen().div_ceil(s.period()));
    }

    #[test]
    fn every_one_admits_everything_and_zero_is_clamped() {
        for n in [0, 1] {
            let mut s = TraceSampler::every(n);
            assert!((0..5).all(|_| s.admit()), "every({n}) must admit all");
            assert_eq!(s.sampled_out(), 0);
        }
    }

    #[test]
    fn rejections_land_in_the_global_counter() {
        let _serial = crate::serial_guard();
        crate::set_level(crate::ObsLevel::Counters);
        crate::global().reset();
        let mut s = TraceSampler::every(3);
        for _ in 0..9 {
            s.admit();
        }
        assert_eq!(s.sampled_out(), 6);
        assert_eq!(crate::global().counter_total("obs.trace.sampled_out"), 6);
        crate::global().reset();
    }
}
