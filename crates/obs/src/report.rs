//! Run reports: a serializable snapshot of all spans, counters, and
//! histograms, written as JSON under `results/obs/`.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::level;
use crate::profile::ProfileSection;
use crate::registry::{global, quantiles_from_buckets, CounterSnapshot, HistogramSnapshot};
use crate::span::snapshot_spans;
use crate::timeseries::TimeSeriesSection;

/// Version written into every serialized report. History:
///
/// * **1** — implicit (no `schema_version` field): spans + counters +
///   histograms without summary quantiles.
/// * **2** — explicit `schema_version`; histograms carry `p50`/`p90`/
///   `p99`.
/// * **3** — optional `profile` section (per-phase attribution rows,
///   allocation tallies, peak RSS; see [`ProfileSection`]).
/// * **4** — optional `timeseries` section (windowed rates, gauges,
///   and latency quantiles over a virtual slot clock; see
///   [`TimeSeriesSection`]).
///
/// [`RunReport::from_json`] accepts any version up to this one and
/// migrates older shapes on read (missing quantiles are recomputed from
/// the buckets; a pre-3 report simply has no profile section, a pre-4
/// report no timeseries section), so `obs-diff` can compare reports
/// across versions. [`RunReport::schema_version`] keeps the *parsed*
/// version, letting tools surface that a migration happened.
pub const SCHEMA_VERSION: u32 = 4;

/// A span as it appears in a run report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name (`<crate>.<component>.<name>`).
    pub name: String,
    /// Index of the parent span within [`RunReport::spans`], if nested.
    pub parent: Option<usize>,
    /// Id of the recording thread (stable within one report).
    pub thread: u64,
    /// Start offset from the process obs epoch, microseconds.
    pub start_us: u64,
    /// Duration in microseconds; 0 when the span was still open at
    /// capture time.
    pub duration_us: u64,
}

/// A point-in-time snapshot of the whole observability state for one
/// named run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Schema version this report was captured or parsed as (see
    /// [`SCHEMA_VERSION`]); serialization always writes the current
    /// version.
    pub schema_version: u32,
    /// Run identifier (suite/figure name, bench id, ...).
    pub run: String,
    /// Level that was active at capture time.
    pub level: String,
    /// All finished spans, parents before children.
    pub spans: Vec<SpanSnapshot>,
    /// Non-zero counters, sorted by key.
    pub counters: Vec<CounterSnapshot>,
    /// Non-empty histograms, sorted by key.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-phase attribution (schema 3; `None` on plain captures and
    /// migrated pre-3 reports). Attached by `repro profile` via
    /// [`RunReport::with_profile`].
    pub profile: Option<ProfileSection>,
    /// Windowed time-series metrics (schema 4; `None` on plain
    /// captures and migrated pre-4 reports). Attached by sustained-load
    /// drivers via [`RunReport::with_timeseries`].
    pub timeseries: Option<TimeSeriesSection>,
}

impl RunReport {
    /// Snapshots the global registry and span store under the name
    /// `run`. Does not reset anything; pair with
    /// [`crate::global()`]`.reset()` / [`crate::reset_spans`] between
    /// runs if per-run deltas are wanted.
    pub fn capture(run: &str) -> RunReport {
        let reg = global();
        RunReport {
            schema_version: SCHEMA_VERSION,
            run: run.to_string(),
            level: level::level().name().to_string(),
            spans: snapshot_spans()
                .into_iter()
                .map(|s| SpanSnapshot {
                    name: s.name.to_string(),
                    parent: s.parent,
                    thread: s.thread,
                    start_us: s.start_us,
                    duration_us: s.duration_us.unwrap_or(0),
                })
                .collect(),
            counters: reg.counter_snapshots(),
            histograms: reg.histogram_snapshots(),
            profile: None,
            timeseries: None,
        }
    }

    /// Attaches a [`ProfileSection`] built from this report's own spans
    /// (self/total attribution), leaving alloc and RSS fields for the
    /// caller to fill in.
    pub fn with_profile(mut self) -> RunReport {
        self.profile = Some(ProfileSection::from_spans(&self.spans));
        self
    }

    /// Attaches a frozen [`TimeSeriesSection`] (the output of
    /// [`crate::TimeSeries::finish`]).
    pub fn with_timeseries(mut self, section: TimeSeriesSection) -> RunReport {
        self.timeseries = Some(section);
        self
    }

    /// Total across every counter whose metric name (label stripped)
    /// equals `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| {
                c.key == name
                    || c.key
                        .strip_suffix('}')
                        .is_some_and(|k| k.starts_with(&format!("{name}{{")))
            })
            .map(|c| c.value)
            .sum()
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Value {
        let mut root = serde_json::Map::new();
        root.insert("schema_version".into(), Value::from(SCHEMA_VERSION));
        root.insert("run".into(), Value::from(self.run.as_str()));
        root.insert("level".into(), Value::from(self.level.as_str()));
        root.insert(
            "spans".into(),
            Value::Array(
                self.spans
                    .iter()
                    .map(|s| {
                        let mut m = serde_json::Map::new();
                        m.insert("name".into(), Value::from(s.name.as_str()));
                        m.insert(
                            "parent".into(),
                            s.parent.map_or(Value::Null, |p| Value::from(p as u64)),
                        );
                        m.insert("thread".into(), Value::from(s.thread));
                        m.insert("start_us".into(), Value::from(s.start_us));
                        m.insert("duration_us".into(), Value::from(s.duration_us));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "counters".into(),
            Value::Array(
                self.counters
                    .iter()
                    .map(|c| {
                        let mut m = serde_json::Map::new();
                        m.insert("key".into(), Value::from(c.key.as_str()));
                        m.insert("value".into(), Value::from(c.value));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "histograms".into(),
            Value::Array(
                self.histograms
                    .iter()
                    .map(|h| {
                        let mut m = serde_json::Map::new();
                        m.insert("key".into(), Value::from(h.key.as_str()));
                        m.insert("count".into(), Value::from(h.count));
                        m.insert("sum".into(), Value::from(h.sum));
                        m.insert("mean".into(), Value::from(h.mean));
                        m.insert("p50".into(), Value::from(h.p50));
                        m.insert("p90".into(), Value::from(h.p90));
                        m.insert("p99".into(), Value::from(h.p99));
                        m.insert(
                            "buckets".into(),
                            Value::Array(
                                h.buckets
                                    .iter()
                                    .map(|&(i, n)| {
                                        Value::Array(vec![Value::from(i as u64), Value::from(n)])
                                    })
                                    .collect(),
                            ),
                        );
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "profile".into(),
            self.profile
                .as_ref()
                .map_or(Value::Null, ProfileSection::to_json),
        );
        root.insert(
            "timeseries".into(),
            self.timeseries
                .as_ref()
                .map_or(Value::Null, TimeSeriesSection::to_json),
        );
        Value::Object(root)
    }

    /// Rebuilds a report from its JSON form (inverse of
    /// [`RunReport::to_json`]); `None` when the shape does not match.
    ///
    /// Accepts every schema version up to [`SCHEMA_VERSION`]. A report
    /// without a `schema_version` field is treated as version 1 and
    /// migrated: histogram quantiles missing on disk are recomputed
    /// from the stored buckets. Versions *newer* than this binary are
    /// rejected (`None`) rather than misread.
    pub fn from_json(v: &Value) -> Option<RunReport> {
        let schema_version = match v.get("schema_version") {
            None => 1,
            Some(s) => u32::try_from(s.as_u64()?).ok()?,
        };
        if schema_version > SCHEMA_VERSION {
            return None;
        }
        let spans = v
            .get("spans")?
            .as_array()?
            .iter()
            .map(|s| {
                Some(SpanSnapshot {
                    name: s.get("name")?.as_str()?.to_string(),
                    parent: match s.get("parent")? {
                        Value::Null => None,
                        p => Some(p.as_u64()? as usize),
                    },
                    thread: s.get("thread")?.as_u64()?,
                    start_us: s.get("start_us")?.as_u64()?,
                    duration_us: s.get("duration_us")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let counters = v
            .get("counters")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(CounterSnapshot {
                    key: c.get("key")?.as_str()?.to_string(),
                    value: c.get("value")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let histograms = v
            .get("histograms")?
            .as_array()?
            .iter()
            .map(|h| {
                let count = h.get("count")?.as_u64()?;
                let buckets = h
                    .get("buckets")?
                    .as_array()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array()?;
                        Some((pair.first()?.as_u64()? as usize, pair.get(1)?.as_u64()?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                // Version-1 reports lack the summary quantiles; rebuild
                // them from the buckets they do carry.
                let (p50, p90, p99) = match h.get("p50") {
                    Some(_) => (
                        h.get("p50")?.as_f64()?,
                        h.get("p90")?.as_f64()?,
                        h.get("p99")?.as_f64()?,
                    ),
                    None => quantiles_from_buckets(count, &buckets),
                };
                Some(HistogramSnapshot {
                    key: h.get("key")?.as_str()?.to_string(),
                    count,
                    sum: h.get("sum")?.as_u64()?,
                    mean: h.get("mean")?.as_f64()?,
                    p50,
                    p90,
                    p99,
                    buckets,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        // Pre-3 reports have no profile key; a v3+ report may carry
        // `null`. A present-but-malformed section fails the parse.
        let profile = match v.get("profile") {
            None | Some(Value::Null) => None,
            Some(p) => Some(ProfileSection::from_json(p)?),
        };
        // Same treatment for the v4 timeseries section.
        let timeseries = match v.get("timeseries") {
            None | Some(Value::Null) => None,
            Some(t) => Some(TimeSeriesSection::from_json(t)?),
        };
        Some(RunReport {
            schema_version,
            run: v.get("run")?.as_str()?.to_string(),
            level: v.get("level")?.as_str()?.to_string(),
            spans,
            counters,
            histograms,
            profile,
            timeseries,
        })
    }
}

/// Writes `report` as pretty-printed JSON to `<dir>/<run>.json`
/// (creating `dir`), sanitizing the run name for use as a file stem.
/// Returns the written path.
pub fn write_report(dir: &Path, report: &RunReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem: String = report
        .run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{stem}.json"));
    let text = serde_json::to_string_pretty(&report.to_json())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::File::create(&path)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = RunReport {
            schema_version: SCHEMA_VERSION,
            run: "unit".into(),
            level: "full".into(),
            spans: vec![
                SpanSnapshot {
                    name: "a.b.c".into(),
                    parent: None,
                    thread: 1,
                    start_us: 5,
                    duration_us: 40,
                },
                SpanSnapshot {
                    name: "a.b.d".into(),
                    parent: Some(0),
                    thread: 1,
                    start_us: 7,
                    duration_us: 12,
                },
            ],
            counters: vec![CounterSnapshot {
                key: "x.y.z{reason=width}".into(),
                value: 9,
            }],
            histograms: vec![HistogramSnapshot {
                key: "x.slot.duration_us".into(),
                count: 3,
                sum: 12,
                mean: 4.0,
                p50: 3.0,
                p90: 6.0,
                p99: 6.0,
                buckets: vec![(2, 1), (3, 2)],
            }],
            profile: Some(crate::profile::ProfileSection {
                rows: vec![crate::profile::ProfileRow {
                    name: "a.b.c".into(),
                    count: 1,
                    total_us: 40,
                    self_us: 28,
                }],
                root_total_us: 40,
                attributed_us: 40,
                alloc: Some(crate::profile::AllocSummary {
                    allocs: 3,
                    bytes: 256,
                    peak_bytes: 128,
                }),
                peak_rss_bytes: Some(1 << 21),
            }),
            timeseries: Some({
                let mut ts = crate::TimeSeries::new(crate::TimeSeriesConfig {
                    window_slots: 4,
                    capacity: 8,
                });
                ts.gauge("active", 2.5);
                ts.rate_add("arrivals", 3);
                ts.latency("admission", 17);
                ts.advance_to(4);
                ts.rate_add("arrivals", 1);
                ts.finish()
            }),
        };
        let text = serde_json::to_string_pretty(&report.to_json()).unwrap();
        let parsed = serde_json::from_str(&text).expect("report JSON parses");
        let back = RunReport::from_json(&parsed).expect("shape matches");
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.run, report.run);
        assert_eq!(back.spans, report.spans);
        assert_eq!(back.counters, report.counters);
        assert_eq!(back.histograms, report.histograms);
        assert_eq!(back.profile, report.profile);
        assert_eq!(back.timeseries, report.timeseries);
    }

    #[test]
    fn versionless_legacy_reports_migrate_on_read() {
        // A hand-written v1 report: no schema_version, histograms
        // without quantiles.
        let legacy: Value = serde_json::from_str(
            r#"{
                "run": "legacy",
                "level": "counters",
                "spans": [],
                "counters": [{"key": "a.b.c", "value": 3}],
                "histograms": [{
                    "key": "a.b.us",
                    "count": 4,
                    "sum": 10,
                    "mean": 2.5,
                    "buckets": [[2, 4]]
                }]
            }"#,
        )
        .expect("legacy literal parses");
        let report = RunReport::from_json(&legacy).expect("legacy shape accepted");
        assert_eq!(report.schema_version, 1);
        let h = &report.histograms[0];
        let (p50, p90, p99) = quantiles_from_buckets(h.count, &h.buckets);
        assert_eq!((h.p50, h.p90, h.p99), (p50, p90, p99));
        assert!(h.p50 > 0.0, "bucket 2 holds values in [2,4)");
        // Re-serialization upgrades to the current version.
        let upgraded = report.to_json();
        assert_eq!(
            upgraded.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION as u64)
        );
        assert!(RunReport::from_json(&upgraded).is_some());
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let mut v = RunReport {
            schema_version: SCHEMA_VERSION,
            run: "x".into(),
            level: "off".into(),
            spans: vec![],
            counters: vec![],
            histograms: vec![],
            profile: None,
            timeseries: None,
        }
        .to_json();
        if let Value::Object(m) = &mut v {
            m.insert("schema_version".into(), Value::from(SCHEMA_VERSION + 1));
        }
        assert!(
            RunReport::from_json(&v).is_none(),
            "a newer report must not be silently misread"
        );
    }

    #[test]
    fn counter_total_merges_labels() {
        let report = RunReport {
            schema_version: SCHEMA_VERSION,
            run: "unit".into(),
            level: "counters".into(),
            spans: vec![],
            counters: vec![
                CounterSnapshot {
                    key: "c.ch.rejected{reason=width}".into(),
                    value: 2,
                },
                CounterSnapshot {
                    key: "c.ch.rejected{reason=disconnected}".into(),
                    value: 3,
                },
                CounterSnapshot {
                    key: "c.ch.rejected".into(),
                    value: 1,
                },
                CounterSnapshot {
                    key: "c.ch.rejected_other".into(),
                    value: 100,
                },
            ],
            histograms: vec![],
            profile: None,
            timeseries: None,
        };
        assert_eq!(report.counter_total("c.ch.rejected"), 6);
    }

    #[test]
    fn write_report_sanitizes_run_names() {
        let dir = std::env::temp_dir().join("qnet_obs_report_test");
        let report = RunReport {
            schema_version: SCHEMA_VERSION,
            run: "fig 7/b".into(),
            level: "off".into(),
            spans: vec![],
            counters: vec![],
            histograms: vec![],
            profile: None,
            timeseries: None,
        };
        let path = write_report(&dir, &report).expect("write succeeds");
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "fig_7_b.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = serde_json::from_str(&text).expect("file parses");
        assert_eq!(parsed.get("run").and_then(|r| r.as_str()), Some("fig 7/b"));
        let _ = std::fs::remove_file(&path);
    }
}
