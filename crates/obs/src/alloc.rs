//! Allocation accounting: a counting global allocator (behind the
//! `alloc-profile` cargo feature) plus portable peak-RSS sampling.
//!
//! The counting allocator wraps [`std::alloc::System`] and tallies
//! every allocation into process-global relaxed atomics: call count,
//! bytes requested, live bytes, and a high-water mark of live bytes.
//! Binaries opt in by installing it:
//!
//! ```ignore
//! #[cfg(feature = "alloc-profile")]
//! #[global_allocator]
//! static ALLOC: qnet_obs::CountingAllocator = qnet_obs::CountingAllocator;
//! ```
//!
//! [`AllocScope`] brackets a region and yields the delta as an
//! [`AllocSummary`] — `None` when the feature is compiled out, so call
//! sites need no `cfg`. With the feature off this module is entirely
//! atomic-free dead weight (`begin` captures three zeros) and the crate
//! keeps its `forbid(unsafe_code)`; the one `unsafe` block below only
//! exists under the feature.

use crate::profile::AllocSummary;

#[cfg(feature = "alloc-profile")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);
    pub static LIVE: AtomicU64 = AtomicU64::new(0);
    pub static PEAK: AtomicU64 = AtomicU64::new(0);

    fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
        let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size as u64, Ordering::Relaxed);
    }

    /// A [`System`]-backed global allocator that counts every call.
    /// Overhead is a handful of relaxed atomic RMWs per allocation —
    /// fine for profiling builds, which is the only place the
    /// `alloc-profile` feature should be enabled.
    pub struct CountingAllocator;

    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size());
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_alloc(new_size);
                on_dealloc(layout.size());
            }
            p
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use counting::CountingAllocator;

/// `true` when this build carries the counting allocator hooks (the
/// `alloc-profile` feature). Note the *binary* must also install
/// [`CountingAllocator`] for the tallies to move.
pub const fn alloc_profiling_compiled() -> bool {
    cfg!(feature = "alloc-profile")
}

/// Brackets a region for allocation accounting; see [`AllocScope::end`].
#[derive(Clone, Copy, Debug)]
// The captured tallies are only read back under `alloc-profile`.
#[cfg_attr(not(feature = "alloc-profile"), allow(dead_code))]
pub struct AllocScope {
    allocs: u64,
    bytes: u64,
    live: u64,
}

impl AllocScope {
    /// Starts a scope at the current tallies. Resets the live-bytes
    /// high-water mark to the current live volume, so the scope's
    /// `peak_bytes` measures *this* region — scopes therefore should
    /// not overlap.
    pub fn begin() -> AllocScope {
        #[cfg(feature = "alloc-profile")]
        {
            use std::sync::atomic::Ordering;
            let live = counting::LIVE.load(Ordering::Relaxed);
            counting::PEAK.store(live, Ordering::Relaxed);
            AllocScope {
                allocs: counting::ALLOCS.load(Ordering::Relaxed),
                bytes: counting::BYTES.load(Ordering::Relaxed),
                live,
            }
        }
        #[cfg(not(feature = "alloc-profile"))]
        {
            AllocScope {
                allocs: 0,
                bytes: 0,
                live: 0,
            }
        }
    }

    /// Ends the scope, returning allocation count / bytes since
    /// [`AllocScope::begin`] and the peak live bytes above the scope's
    /// starting live volume. `None` when `alloc-profile` is compiled
    /// out.
    pub fn end(self) -> Option<AllocSummary> {
        #[cfg(feature = "alloc-profile")]
        {
            use std::sync::atomic::Ordering;
            let peak = counting::PEAK.load(Ordering::Relaxed);
            Some(AllocSummary {
                allocs: counting::ALLOCS.load(Ordering::Relaxed) - self.allocs,
                bytes: counting::BYTES.load(Ordering::Relaxed) - self.bytes,
                peak_bytes: peak.saturating_sub(self.live),
            })
        }
        #[cfg(not(feature = "alloc-profile"))]
        {
            let _ = self;
            None
        }
    }
}

/// The process peak resident set size in bytes, from `VmHWM` in
/// `/proc/self/status`. `None` off Linux or when the file is absent
/// (the profile report then just omits the figure).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_is_none_without_the_feature_and_counts_with_it() {
        let scope = AllocScope::begin();
        // Allocate something unambiguous inside the scope.
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let summary = scope.end();
        drop(v);
        if alloc_profiling_compiled() {
            // The counting *type* is compiled in, but the test binary
            // only tallies if the harness installed it; either way the
            // summary must exist and be internally consistent.
            let s = summary.expect("feature on: summary present");
            assert!(s.bytes >= s.peak_bytes || s.peak_bytes == 0 || s.bytes == 0);
        } else {
            assert!(summary.is_none(), "feature off: no accounting");
        }
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("/proc/self/status has VmHWM");
            assert!(rss > 0);
        }
    }
}
