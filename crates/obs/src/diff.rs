//! Run-report diffing: the mechanical regression gate behind
//! `repro obs-diff`.
//!
//! Two [`RunReport`]s — a tracked baseline and a fresh candidate — are
//! compared along three axes:
//!
//! * **counters** — added/removed metric names and value drift beyond a
//!   configurable ratio;
//! * **spans** — per-name total wall time, flagged when the candidate/
//!   baseline ratio exceeds the threshold (small spans below an
//!   absolute floor are ignored: timing noise, not regressions);
//! * **histograms** — count and p50/p90/p99 summary-quantile drift,
//!   reported for context.
//!
//! Every comparison yields a [`DiffEntry`] with a [`Severity`];
//! [`ReportDiff::has_regressions`] drives the exit code, and
//! [`ReportDiff::render_table`] prints the aligned delta table CI logs
//! show.

use std::collections::BTreeMap;

use crate::report::RunReport;

/// Thresholds for [`diff_reports`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffOptions {
    /// A span family regresses when `candidate/baseline` total time
    /// exceeds this ratio (default 1.8 — tight enough to catch a 2×
    /// slowdown, loose enough for scheduler noise).
    pub span_ratio: f64,
    /// A counter regresses when its value drifts beyond this ratio in
    /// either direction (default 2.0; deterministic counters from the
    /// same seed should not move at all).
    pub counter_ratio: f64,
    /// Span families whose larger total is below this many microseconds
    /// are never flagged (default 20 000 µs).
    pub min_span_us: u64,
    /// Treat a metric name present in the baseline but missing from the
    /// candidate as a regression (default true).
    pub fail_on_missing: bool,
    /// When set, a histogram regresses when any of its p50/p90/p99
    /// summary quantiles drifts beyond this ratio in either direction
    /// (`repro obs-diff --hist-ratio`). Default `None`: quantile
    /// movement stays informational, as histogram estimates are
    /// octave-granular.
    pub hist_ratio: Option<f64>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            span_ratio: 1.8,
            counter_ratio: 2.0,
            min_span_us: 20_000,
            fail_on_missing: true,
            hist_ratio: None,
        }
    }
}

/// How bad one diff entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context only; never fails the gate.
    Info,
    /// Fails the gate (non-zero exit unless warn-only).
    Regression,
}

/// Which axis a [`DiffEntry`] compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Counter value or presence.
    Counter,
    /// Per-name total span time.
    Span,
    /// Histogram count / summary quantiles.
    Histogram,
}

impl DiffKind {
    fn label(self) -> &'static str {
        match self {
            DiffKind::Counter => "counter",
            DiffKind::Span => "span",
            DiffKind::Histogram => "histogram",
        }
    }
}

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffEntry {
    /// Axis compared.
    pub kind: DiffKind,
    /// Metric/span name (counters keep their label suffix).
    pub name: String,
    /// Rendered baseline value (`-` when absent).
    pub baseline: String,
    /// Rendered candidate value (`-` when absent).
    pub candidate: String,
    /// Human-readable delta (`ratio 2.10×`, `added`, `removed`, …).
    pub note: String,
    /// Whether this entry fails the gate.
    pub severity: Severity,
}

/// The full comparison of two reports.
#[derive(Clone, Debug, Default)]
pub struct ReportDiff {
    /// All entries, regressions first, then by (kind, name).
    pub entries: Vec<DiffEntry>,
}

impl ReportDiff {
    /// `true` when any entry is a [`Severity::Regression`].
    pub fn has_regressions(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.severity == Severity::Regression)
    }

    /// Number of regression entries.
    pub fn regression_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.severity == Severity::Regression)
            .count()
    }

    /// The aligned delta table (one line per entry, regressions
    /// marked `FAIL`), or a single OK line when nothing differed.
    pub fn render_table(&self) -> String {
        if self.entries.is_empty() {
            return "obs-diff: no differences\n".to_string();
        }
        let header = [
            "STATUS".to_string(),
            "KIND".to_string(),
            "NAME".to_string(),
            "BASELINE".to_string(),
            "CANDIDATE".to_string(),
            "NOTE".to_string(),
        ];
        let rows: Vec<[String; 6]> = std::iter::once(header)
            .chain(self.entries.iter().map(|e| {
                [
                    match e.severity {
                        Severity::Regression => "FAIL".to_string(),
                        Severity::Info => "info".to_string(),
                    },
                    e.kind.label().to_string(),
                    e.name.clone(),
                    e.baseline.clone(),
                    e.candidate.clone(),
                    e.note.clone(),
                ]
            }))
            .collect();
        let mut widths = [0usize; 6];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            for (i, (w, cell)) in widths.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                if i + 1 < row.len() {
                    for _ in cell.len()..*w {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

fn ratio_note(base: f64, cand: f64) -> String {
    if base == 0.0 {
        "baseline zero".to_string()
    } else {
        format!("ratio {:.2}x", cand / base)
    }
}

/// Drift beyond `ratio` in either direction (growth or shrink).
fn drifted(base: f64, cand: f64, ratio: f64) -> bool {
    if base == 0.0 || cand == 0.0 {
        return base != cand;
    }
    let r = cand / base;
    r >= ratio || r <= 1.0 / ratio
}

/// Compares `candidate` against `baseline` under `opts`.
pub fn diff_reports(baseline: &RunReport, candidate: &RunReport, opts: &DiffOptions) -> ReportDiff {
    let mut entries = Vec::new();

    // Counters: keyed by rendered name (label included).
    let base_counters: BTreeMap<&str, u64> = baseline
        .counters
        .iter()
        .map(|c| (c.key.as_str(), c.value))
        .collect();
    let cand_counters: BTreeMap<&str, u64> = candidate
        .counters
        .iter()
        .map(|c| (c.key.as_str(), c.value))
        .collect();
    for (&name, &base) in &base_counters {
        match cand_counters.get(name) {
            None => entries.push(DiffEntry {
                kind: DiffKind::Counter,
                name: name.to_string(),
                baseline: base.to_string(),
                candidate: "-".to_string(),
                note: "removed".to_string(),
                severity: if opts.fail_on_missing {
                    Severity::Regression
                } else {
                    Severity::Info
                },
            }),
            Some(&cand) if cand != base => entries.push(DiffEntry {
                kind: DiffKind::Counter,
                name: name.to_string(),
                baseline: base.to_string(),
                candidate: cand.to_string(),
                note: format!("{} {}", ratio_note(base as f64, cand as f64), {
                    let delta = cand as i128 - base as i128;
                    if delta >= 0 {
                        format!("(+{delta})")
                    } else {
                        format!("({delta})")
                    }
                }),
                severity: if drifted(base as f64, cand as f64, opts.counter_ratio) {
                    Severity::Regression
                } else {
                    Severity::Info
                },
            }),
            Some(_) => {}
        }
    }
    for (&name, &cand) in &cand_counters {
        if !base_counters.contains_key(name) {
            entries.push(DiffEntry {
                kind: DiffKind::Counter,
                name: name.to_string(),
                baseline: "-".to_string(),
                candidate: cand.to_string(),
                note: "added".to_string(),
                severity: Severity::Info,
            });
        }
    }

    // Spans: total duration per name.
    let total = |report: &RunReport| -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        for s in &report.spans {
            *m.entry(s.name.clone()).or_insert(0u64) += s.duration_us;
        }
        m
    };
    let base_spans = total(baseline);
    let cand_spans = total(candidate);
    for (name, &base) in &base_spans {
        match cand_spans.get(name) {
            None => entries.push(DiffEntry {
                kind: DiffKind::Span,
                name: name.clone(),
                baseline: format!("{base}us"),
                candidate: "-".to_string(),
                note: "removed".to_string(),
                severity: if opts.fail_on_missing && base >= opts.min_span_us {
                    Severity::Regression
                } else {
                    Severity::Info
                },
            }),
            Some(&cand) if cand != base => {
                let big_enough = base.max(cand) >= opts.min_span_us;
                let slower = base > 0 && cand as f64 / base as f64 >= opts.span_ratio;
                entries.push(DiffEntry {
                    kind: DiffKind::Span,
                    name: name.clone(),
                    baseline: format!("{base}us"),
                    candidate: format!("{cand}us"),
                    note: ratio_note(base as f64, cand as f64),
                    severity: if big_enough && slower {
                        Severity::Regression
                    } else {
                        Severity::Info
                    },
                });
            }
            Some(_) => {}
        }
    }
    for (name, &cand) in &cand_spans {
        if !base_spans.contains_key(name) {
            entries.push(DiffEntry {
                kind: DiffKind::Span,
                name: name.clone(),
                baseline: "-".to_string(),
                candidate: format!("{cand}us"),
                note: "added".to_string(),
                severity: Severity::Info,
            });
        }
    }

    // Histograms: count plus the summary quantiles. Context only by
    // default — quantile movement is interesting but octave-granular —
    // unless `hist_ratio` opts into gating on quantile drift (missing
    // names fail regardless, like any metric).
    let base_hists: BTreeMap<&str, &crate::HistogramSnapshot> = baseline
        .histograms
        .iter()
        .map(|h| (h.key.as_str(), h))
        .collect();
    let cand_hists: BTreeMap<&str, &crate::HistogramSnapshot> = candidate
        .histograms
        .iter()
        .map(|h| (h.key.as_str(), h))
        .collect();
    for (&name, base) in &base_hists {
        match cand_hists.get(name) {
            None => entries.push(DiffEntry {
                kind: DiffKind::Histogram,
                name: name.to_string(),
                baseline: format!("n={}", base.count),
                candidate: "-".to_string(),
                note: "removed".to_string(),
                severity: if opts.fail_on_missing {
                    Severity::Regression
                } else {
                    Severity::Info
                },
            }),
            Some(cand)
                if cand.count != base.count
                    || (cand.p50, cand.p90, cand.p99) != (base.p50, base.p90, base.p99) =>
            {
                let quantile_regressed = opts.hist_ratio.is_some_and(|ratio| {
                    [
                        (base.p50, cand.p50),
                        (base.p90, cand.p90),
                        (base.p99, cand.p99),
                    ]
                    .iter()
                    .any(|&(b, c)| drifted(b, c, ratio))
                });
                entries.push(DiffEntry {
                    kind: DiffKind::Histogram,
                    name: name.to_string(),
                    baseline: format!(
                        "n={} p50={:.0} p90={:.0} p99={:.0}",
                        base.count, base.p50, base.p90, base.p99
                    ),
                    candidate: format!(
                        "n={} p50={:.0} p90={:.0} p99={:.0}",
                        cand.count, cand.p50, cand.p90, cand.p99
                    ),
                    note: if quantile_regressed {
                        "quantile drift beyond --hist-ratio".to_string()
                    } else {
                        "distribution moved".to_string()
                    },
                    severity: if quantile_regressed {
                        Severity::Regression
                    } else {
                        Severity::Info
                    },
                });
            }
            Some(_) => {}
        }
    }
    for (&name, cand) in &cand_hists {
        if !base_hists.contains_key(name) {
            entries.push(DiffEntry {
                kind: DiffKind::Histogram,
                name: name.to_string(),
                baseline: "-".to_string(),
                candidate: format!("n={}", cand.count),
                note: "added".to_string(),
                severity: Severity::Info,
            });
        }
    }

    entries.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.kind.label().cmp(b.kind.label()))
            .then_with(|| a.name.cmp(&b.name))
    });
    ReportDiff { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA_VERSION;
    use crate::{CounterSnapshot, HistogramSnapshot, SpanSnapshot};

    fn report(spans: Vec<(&str, u64)>, counters: Vec<(&str, u64)>) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            run: "test".into(),
            level: "full".into(),
            spans: spans
                .into_iter()
                .map(|(name, duration_us)| SpanSnapshot {
                    name: name.into(),
                    parent: None,
                    thread: 1,
                    start_us: 0,
                    duration_us,
                })
                .collect(),
            counters: counters
                .into_iter()
                .map(|(key, value)| CounterSnapshot {
                    key: key.into(),
                    value,
                })
                .collect(),
            histograms: vec![],
            profile: None,
            timeseries: None,
        }
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let a = report(vec![("core.x.solve", 100_000)], vec![("core.x.solves", 12)]);
        let d = diff_reports(&a, &a.clone(), &DiffOptions::default());
        assert!(d.entries.is_empty());
        assert!(!d.has_regressions());
        assert!(d.render_table().contains("no differences"));
    }

    #[test]
    fn doubled_span_time_is_a_regression() {
        let base = report(vec![("core.x.solve", 100_000)], vec![]);
        let cand = report(vec![("core.x.solve", 200_000)], vec![]);
        let d = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(d.has_regressions());
        let table = d.render_table();
        assert!(table.contains("FAIL"));
        assert!(table.contains("core.x.solve"));
        assert!(table.contains("2.00x"));
        // The reverse direction (a speedup) is informational.
        let d = diff_reports(&cand, &base, &DiffOptions::default());
        assert!(!d.has_regressions());
        assert_eq!(d.entries.len(), 1);
    }

    #[test]
    fn tiny_spans_are_noise_not_regressions() {
        let base = report(vec![("core.x.solve", 50)], vec![]);
        let cand = report(vec![("core.x.solve", 500)], vec![]);
        let d = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!d.has_regressions(), "10x on 50us is below the floor");
        assert_eq!(d.entries.len(), 1, "still reported for context");
    }

    #[test]
    fn removed_counter_fails_added_counter_informs() {
        let base = report(vec![], vec![("core.x.solves", 5)]);
        let cand = report(vec![], vec![("core.y.solves", 5)]);
        let d = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(d.has_regressions());
        assert_eq!(d.regression_count(), 1);
        let removed = d.entries.iter().find(|e| e.note == "removed").unwrap();
        assert_eq!(removed.name, "core.x.solves");
        let added = d.entries.iter().find(|e| e.note == "added").unwrap();
        assert_eq!(added.severity, Severity::Info);
        // warn-only style: missing tolerated.
        let opts = DiffOptions {
            fail_on_missing: false,
            ..DiffOptions::default()
        };
        assert!(!diff_reports(&base, &cand, &opts).has_regressions());
    }

    #[test]
    fn counter_drift_beyond_ratio_fails() {
        let base = report(vec![], vec![("core.x.rounds", 10)]);
        let mild = report(vec![], vec![("core.x.rounds", 15)]);
        let wild = report(vec![], vec![("core.x.rounds", 25)]);
        let opts = DiffOptions::default();
        assert!(!diff_reports(&base, &mild, &opts).has_regressions());
        assert!(diff_reports(&base, &wild, &opts).has_regressions());
        // Shrinking drift is symmetric.
        assert!(diff_reports(&wild, &base, &opts).has_regressions());
    }

    #[test]
    fn histogram_quantile_movement_is_surfaced() {
        let mut base = report(vec![], vec![]);
        base.histograms.push(HistogramSnapshot {
            key: "sim.slot.us".into(),
            count: 10,
            sum: 100,
            mean: 10.0,
            p50: 8.0,
            p90: 14.0,
            p99: 16.0,
            buckets: vec![(4, 10)],
        });
        let mut cand = base.clone();
        cand.histograms[0].p99 = 60.0;
        let d = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!d.has_regressions());
        let entry = &d.entries[0];
        assert_eq!(entry.kind, DiffKind::Histogram);
        assert!(entry.baseline.contains("p99=16"));
        assert!(entry.candidate.contains("p99=60"));
    }

    #[test]
    fn hist_ratio_gates_quantile_drift_when_opted_in() {
        let mut base = report(vec![], vec![]);
        base.histograms.push(HistogramSnapshot {
            key: "sim.slot.us".into(),
            count: 10,
            sum: 100,
            mean: 10.0,
            p50: 8.0,
            p90: 14.0,
            p99: 16.0,
            buckets: vec![(4, 10)],
        });
        let mut cand = base.clone();
        cand.histograms[0].p99 = 60.0; // 3.75x drift
        let gated = DiffOptions {
            hist_ratio: Some(2.0),
            ..DiffOptions::default()
        };
        let d = diff_reports(&base, &cand, &gated);
        assert!(d.has_regressions(), "p99 drift beyond 2x fails the gate");
        assert!(d.entries[0].note.contains("--hist-ratio"));
        // Within the ratio the same option stays quiet.
        cand.histograms[0].p99 = 20.0;
        assert!(!diff_reports(&base, &cand, &gated).has_regressions());
        // Shrink direction is symmetric.
        cand.histograms[0].p99 = 4.0;
        assert!(diff_reports(&base, &cand, &gated).has_regressions());
    }

    #[test]
    fn regressions_sort_before_context() {
        let base = report(vec![("core.x.solve", 100_000)], vec![("core.x.solves", 5)]);
        let cand = report(vec![("core.x.solve", 300_000)], vec![("core.x.solves", 6)]);
        let d = diff_reports(&base, &cand, &DiffOptions::default());
        assert_eq!(d.entries[0].severity, Severity::Regression);
        assert_eq!(d.entries.last().unwrap().severity, Severity::Info);
    }
}
