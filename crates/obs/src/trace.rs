//! The flight recorder: a fixed-capacity, generation-stamped ring
//! buffer of structured per-decision [`TraceEvent`]s.
//!
//! Counters answer *how often* (`core.channel.rejected{reason=…}` rose
//! by 41); the recorder answers *which* and *why*: every channel
//! candidate a solver accepted or rejected, every tree-growth round,
//! every protocol step the simulator bridged — one ordered stream,
//! stamped with a process-global sequence number.
//!
//! Recording only happens at [`ObsLevel::Trace`]; below that,
//! [`record_event`] is one relaxed atomic load. On the hot path a
//! record is: build a `Copy` event on the stack, take the ring lock,
//! write into a preallocated slot. No allocation, ever — when the ring
//! is full the oldest event is evicted and `obs.trace.dropped`
//! incremented, so the recorder holds the *latest* `capacity` decisions
//! of a run (a flight recorder, not an unbounded log).
//!
//! [`write_trace_jsonl`] exports the ring as JSON Lines alongside the
//! run reports, one event per line in sequence order.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde_json::Value;

use crate::level::{enabled, ObsLevel};

/// Default ring capacity; override with `MUERP_OBS_TRACE_CAP` or
/// [`set_trace_capacity`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One structured solver/protocol decision.
///
/// Variants are `Copy` and carry only scalars and `&'static str`s so
/// recording never allocates. Node ids are raw indices (`u32`), rates
/// are the exact `f64` the solver compared on, and `epoch` is the
/// [`CapacityMap` epoch] the decision was made under — joining an event
/// back to the exact residual-capacity state that produced it.
///
/// [`CapacityMap` epoch]: https://example.org/muerp (see DESIGN.md §8)
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A channel-candidate decision of Algorithm 1 / Yen: the max-rate
    /// channel between `source` and `destination` was produced
    /// (`accepted`, `reason = "ok"`/`"ksp"`, `cost` = entanglement
    /// rate) or refused (`reason = "disconnected"`, …).
    Candidate {
        /// Source user (raw node index).
        source: u32,
        /// Destination user (raw node index).
        destination: u32,
        /// Whether a channel was produced.
        accepted: bool,
        /// Why: `"ok"`, `"ksp"`, `"disconnected"`, …
        reason: &'static str,
        /// Entanglement rate of the produced channel; 0.0 on rejection.
        cost: f64,
        /// Capacity epoch the decision was made under.
        epoch: u64,
    },
    /// One single-source Algorithm-1 run: `rejected_full` distinct
    /// switches were unusable for relaying under capacity `epoch`.
    FinderRun {
        /// Source user of the run.
        source: u32,
        /// Distinct switches rejected for lack of free qubits.
        rejected_full: u64,
        /// Capacity epoch the run searched under.
        epoch: u64,
    },
    /// A tree-growth round committed a channel (Prim / Alg-3 phase 2).
    TreeStep {
        /// Algorithm family (`"alg3"`, `"alg4"`, …).
        algo: &'static str,
        /// 1-based growth round.
        round: u32,
        /// Source endpoint of the committed channel.
        source: u32,
        /// Destination endpoint of the committed channel.
        destination: u32,
        /// The committed channel's rate.
        rate: f64,
        /// Capacity epoch the round's candidates were ranked under.
        epoch: u64,
    },
    /// An Alg-3 phase-1 admission verdict on a precomputed channel.
    Admission {
        /// Algorithm family (`"alg3"`).
        algo: &'static str,
        /// `true` when the channel fit residual capacity and was kept.
        accepted: bool,
        /// The channel's rate.
        rate: f64,
        /// Capacity epoch the verdict was reached under.
        epoch: u64,
    },
    /// One beam-search round: `expanded` states generated, `kept`
    /// survived dedup + width pruning.
    BeamRound {
        /// 1-based growth round.
        round: u32,
        /// States generated this round.
        expanded: u32,
        /// States kept after pruning.
        kept: u32,
    },
    /// Local search accepted an exchange move.
    MoveAccepted {
        /// Channels exchanged simultaneously (1 or 2).
        arity: u32,
        /// Product rate of the removed channels.
        old_rate: f64,
        /// Product rate of the replacement channels.
        new_rate: f64,
    },
    /// A protocol step bridged from the simulator's slot traces:
    /// `kind` is `"link"`, `"swap"`, `"fusion"`, or `"slot"`.
    Protocol {
        /// Protocol step kind.
        kind: &'static str,
        /// Channel index within the plan (fusion: center node index).
        channel: u32,
        /// Step-specific index: link index, switch node, fusion arity.
        index: u32,
        /// Whether the step succeeded.
        success: bool,
    },
    /// A scheduled network fault was injected (survivability replay):
    /// `kind` is `"link-cut"`, `"switch-death"`, or `"capacity-loss"`.
    Failure {
        /// Fault kind tag.
        kind: &'static str,
        /// The failed subject: one endpoint node index for a link cut,
        /// the switch node index otherwise.
        subject: u32,
        /// Kind-specific detail: the other endpoint for a link cut,
        /// qubits lost for capacity loss, 0 for switch death.
        detail: u32,
        /// Protocol slot at which the fault fired.
        at_slot: u64,
    },
    /// The repair engine answered a fault: `method` is
    /// `"untouched"`, `"local-reroute"`, `"reattach"`,
    /// `"full-resolve"`, or `"unrepairable"`.
    Repair {
        /// Repair-ladder rung tag.
        method: &'static str,
        /// Channels of the running plan the fault broke.
        broken: u32,
        /// Channel-finder searches the repair spent (its latency).
        finder_runs: u64,
        /// Entanglement rate of the repaired plan; 0.0 when
        /// unrepairable.
        rate: f64,
    },
    /// An online/streaming admission request was rejected: `reason` is
    /// `"no-users"` (too few idle users to form the group) or
    /// `"capacity"` (no capacity-respecting tree over the residual
    /// network).
    Blocked {
        /// Rejection reason tag.
        reason: &'static str,
        /// Requested group size.
        group_size: u32,
        /// Arrival slot of the rejected request.
        at_slot: u64,
    },
}

impl TraceEvent {
    /// Short kebab-case tag used as the JSONL `type` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Candidate { .. } => "candidate",
            TraceEvent::FinderRun { .. } => "finder_run",
            TraceEvent::TreeStep { .. } => "tree_step",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::BeamRound { .. } => "beam_round",
            TraceEvent::MoveAccepted { .. } => "move_accepted",
            TraceEvent::Protocol { .. } => "protocol",
            TraceEvent::Failure { .. } => "failure",
            TraceEvent::Repair { .. } => "repair",
            TraceEvent::Blocked { .. } => "blocked",
        }
    }

    /// The event as a flat JSON object (without the sequence stamp).
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("type".into(), Value::from(self.kind()));
        match *self {
            TraceEvent::Candidate {
                source,
                destination,
                accepted,
                reason,
                cost,
                epoch,
            } => {
                m.insert("source".into(), Value::from(source));
                m.insert("destination".into(), Value::from(destination));
                m.insert("accepted".into(), Value::from(accepted));
                m.insert("reason".into(), Value::from(reason));
                m.insert("cost".into(), Value::from(cost));
                m.insert("epoch".into(), Value::from(epoch));
            }
            TraceEvent::FinderRun {
                source,
                rejected_full,
                epoch,
            } => {
                m.insert("source".into(), Value::from(source));
                m.insert("rejected_full".into(), Value::from(rejected_full));
                m.insert("epoch".into(), Value::from(epoch));
            }
            TraceEvent::TreeStep {
                algo,
                round,
                source,
                destination,
                rate,
                epoch,
            } => {
                m.insert("algo".into(), Value::from(algo));
                m.insert("round".into(), Value::from(round));
                m.insert("source".into(), Value::from(source));
                m.insert("destination".into(), Value::from(destination));
                m.insert("rate".into(), Value::from(rate));
                m.insert("epoch".into(), Value::from(epoch));
            }
            TraceEvent::Admission {
                algo,
                accepted,
                rate,
                epoch,
            } => {
                m.insert("algo".into(), Value::from(algo));
                m.insert("accepted".into(), Value::from(accepted));
                m.insert("rate".into(), Value::from(rate));
                m.insert("epoch".into(), Value::from(epoch));
            }
            TraceEvent::BeamRound {
                round,
                expanded,
                kept,
            } => {
                m.insert("round".into(), Value::from(round));
                m.insert("expanded".into(), Value::from(expanded));
                m.insert("kept".into(), Value::from(kept));
            }
            TraceEvent::MoveAccepted {
                arity,
                old_rate,
                new_rate,
            } => {
                m.insert("arity".into(), Value::from(arity));
                m.insert("old_rate".into(), Value::from(old_rate));
                m.insert("new_rate".into(), Value::from(new_rate));
            }
            TraceEvent::Protocol {
                kind,
                channel,
                index,
                success,
            } => {
                m.insert("kind".into(), Value::from(kind));
                m.insert("channel".into(), Value::from(channel));
                m.insert("index".into(), Value::from(index));
                m.insert("success".into(), Value::from(success));
            }
            TraceEvent::Failure {
                kind,
                subject,
                detail,
                at_slot,
            } => {
                m.insert("kind".into(), Value::from(kind));
                m.insert("subject".into(), Value::from(subject));
                m.insert("detail".into(), Value::from(detail));
                m.insert("at_slot".into(), Value::from(at_slot));
            }
            TraceEvent::Repair {
                method,
                broken,
                finder_runs,
                rate,
            } => {
                m.insert("method".into(), Value::from(method));
                m.insert("broken".into(), Value::from(broken));
                m.insert("finder_runs".into(), Value::from(finder_runs));
                m.insert("rate".into(), Value::from(rate));
            }
            TraceEvent::Blocked {
                reason,
                group_size,
                at_slot,
            } => {
                m.insert("reason".into(), Value::from(reason));
                m.insert("group_size".into(), Value::from(group_size));
                m.insert("at_slot".into(), Value::from(at_slot));
            }
        }
        Value::Object(m)
    }
}

/// A recorded event plus its generation stamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stamped {
    /// Process-global sequence number (0-based, never reused until
    /// [`FlightRecorder::reset`]).
    pub seq: u64,
    /// Microseconds since the process obs epoch — the same timebase as
    /// span `start_us`, so trace events and spans line up on one
    /// timeline (and in the Chrome-trace export).
    pub ts_us: u64,
    /// Obs-internal id of the recording thread (matches span `thread`).
    pub thread: u64,
    /// The event.
    pub event: TraceEvent,
}

struct Ring {
    /// Preallocated storage; grows to `capacity` once, then wraps.
    slots: Vec<Stamped>,
    /// Index of the oldest live event when `slots` is at capacity.
    head: usize,
    /// Next sequence number to hand out.
    next_seq: u64,
    /// Target capacity (slots.len() never exceeds this).
    capacity: usize,
}

/// A fixed-capacity, generation-stamped ring buffer of [`TraceEvent`]s.
///
/// Thread-safe; the process-global instance behind [`record_event`] is
/// reached via [`recorder`]. Private instances serve tests.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    dropped: std::sync::atomic::AtomicU64,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` events
    /// (capacity 0 is clamped to 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(Ring {
                slots: Vec::new(),
                head: 0,
                next_seq: 0,
                capacity: capacity.max(1),
            }),
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records one event unconditionally (level gating is the caller's
    /// job — [`record_event`] does it for the global instance). Returns
    /// `true` when an older event was evicted to make room.
    pub fn record(&self, event: TraceEvent) -> bool {
        let ts_us = crate::span::micros_since_epoch();
        let thread = crate::span::current_thread_id();
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let stamped = Stamped {
            seq,
            ts_us,
            thread,
            event,
        };
        if ring.slots.len() < ring.capacity {
            // Fill phase: the one-time allocation happens here, slot by
            // slot, never again once the ring has reached capacity.
            ring.slots.push(stamped);
            false
        } else {
            let head = ring.head;
            ring.slots[head] = stamped;
            ring.head = (head + 1) % ring.capacity;
            drop(ring);
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            true
        }
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().slots.len()
    }

    /// `true` when nothing has been recorded (or everything was reset).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the live events, oldest first (sequence order).
    pub fn snapshot(&self) -> Vec<Stamped> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.slots.len());
        out.extend_from_slice(&ring.slots[ring.head..]);
        out.extend_from_slice(&ring.slots[..ring.head]);
        out
    }

    /// Clears the ring, the sequence counter, and the dropped tally.
    pub fn reset(&self) {
        let mut ring = self.ring.lock();
        ring.slots.clear();
        ring.head = 0;
        ring.next_seq = 0;
        self.dropped.store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Clears the ring and re-targets its capacity (storage for the new
    /// capacity is re-filled lazily by subsequent records).
    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = self.ring.lock();
        ring.slots = Vec::new();
        ring.head = 0;
        ring.next_seq = 0;
        ring.capacity = capacity.max(1);
        self.dropped.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

/// The process-global flight recorder behind [`record_event`]. Its
/// capacity comes from `MUERP_OBS_TRACE_CAP` (default
/// [`DEFAULT_TRACE_CAPACITY`]) and can be re-targeted with
/// [`set_trace_capacity`].
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cap = std::env::var("MUERP_OBS_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_TRACE_CAPACITY);
        FlightRecorder::with_capacity(cap)
    })
}

/// `true` when the current level admits trace events. Call sites use
/// this to skip even building the event:
///
/// ```
/// if qnet_obs::trace_enabled() {
///     qnet_obs::record_event(qnet_obs::TraceEvent::BeamRound {
///         round: 1,
///         expanded: 9,
///         kept: 3,
///     });
/// }
/// ```
#[inline]
pub fn trace_enabled() -> bool {
    enabled(ObsLevel::Trace)
}

/// Records `event` into the global recorder when the level admits
/// traces; below [`ObsLevel::Trace`] this is one relaxed atomic load.
/// Evictions surface as the `obs.trace.dropped` counter.
#[inline]
pub fn record_event(event: TraceEvent) {
    if !enabled(ObsLevel::Trace) {
        return;
    }
    if recorder().record(event) {
        crate::counter!("obs.trace.dropped");
    }
}

/// Copies out the global recorder's live events, oldest first.
pub fn trace_snapshot() -> Vec<Stamped> {
    recorder().snapshot()
}

/// Clears the global recorder (ring, sequence counter, dropped tally).
/// Pair with [`crate::global()`]`.reset()` / [`crate::reset_spans`]
/// between runs.
pub fn reset_trace() {
    recorder().reset();
}

/// Re-targets the global recorder's capacity, clearing it.
pub fn set_trace_capacity(capacity: usize) {
    recorder().set_capacity(capacity);
}

/// Writes the global recorder's events as JSON Lines to
/// `<dir>/<run>.trace.jsonl` (creating `dir`), one
/// `{"seq":…,"type":…,…}` object per line, oldest first. The run name
/// is sanitized like [`crate::write_report`]. Returns the written path.
pub fn write_trace_jsonl(dir: &Path, run: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{stem}.trace.jsonl"));
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    for stamped in trace_snapshot() {
        let mut obj = stamped.event.to_json();
        if let Value::Object(m) = &mut obj {
            // Present first in the rendered line for scannability.
            m.insert("seq".into(), Value::from(stamped.seq));
            m.insert("ts_us".into(), Value::from(stamped.ts_us));
            m.insert("thread".into(), Value::from(stamped.thread));
        }
        let line = serde_json::to_string(&obj)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(i: u32) -> TraceEvent {
        TraceEvent::Candidate {
            source: i,
            destination: i + 1,
            accepted: true,
            reason: "ok",
            cost: 0.5,
            epoch: 7,
        }
    }

    #[test]
    fn ring_keeps_the_latest_events_in_order() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..6 {
            rec.record(candidate(i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(rec.dropped(), 2);
        let seqs: Vec<u64> = snap.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest two evicted");
        assert_eq!(snap[0].event, candidate(2));
    }

    #[test]
    fn reset_restarts_sequencing() {
        let rec = FlightRecorder::with_capacity(2);
        rec.record(candidate(0));
        rec.record(candidate(1));
        rec.record(candidate(2));
        assert_eq!(rec.dropped(), 1);
        rec.reset();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        rec.record(candidate(9));
        assert_eq!(rec.snapshot()[0].seq, 0);
    }

    #[test]
    fn below_trace_level_records_nothing_globally() {
        let _serial = crate::serial_guard();
        crate::set_level(ObsLevel::Full);
        reset_trace();
        record_event(candidate(1));
        assert!(trace_snapshot().is_empty());
        crate::set_level(ObsLevel::Trace);
        record_event(candidate(1));
        assert_eq!(trace_snapshot().len(), 1);
        reset_trace();
        crate::set_level(ObsLevel::Counters);
    }

    #[test]
    fn every_variant_serializes_with_its_kind_tag() {
        let events = [
            candidate(0),
            TraceEvent::FinderRun {
                source: 1,
                rejected_full: 3,
                epoch: 5,
            },
            TraceEvent::TreeStep {
                algo: "alg4",
                round: 2,
                source: 0,
                destination: 4,
                rate: 0.25,
                epoch: 9,
            },
            TraceEvent::Admission {
                algo: "alg3",
                accepted: false,
                rate: 0.5,
                epoch: 2,
            },
            TraceEvent::BeamRound {
                round: 1,
                expanded: 9,
                kept: 3,
            },
            TraceEvent::MoveAccepted {
                arity: 2,
                old_rate: 0.2,
                new_rate: 0.6,
            },
            TraceEvent::Protocol {
                kind: "swap",
                channel: 0,
                index: 3,
                success: true,
            },
            TraceEvent::Failure {
                kind: "link-cut",
                subject: 2,
                detail: 7,
                at_slot: 40,
            },
            TraceEvent::Repair {
                method: "local-reroute",
                broken: 1,
                finder_runs: 4,
                rate: 0.125,
            },
            TraceEvent::Blocked {
                reason: "capacity",
                group_size: 3,
                at_slot: 17,
            },
        ];
        for e in events {
            let v = e.to_json();
            assert_eq!(v.get("type").and_then(|t| t.as_str()), Some(e.kind()));
        }
    }

    #[test]
    fn jsonl_export_writes_one_line_per_event() {
        let _serial = crate::serial_guard();
        crate::set_level(ObsLevel::Trace);
        reset_trace();
        record_event(candidate(1));
        record_event(TraceEvent::Protocol {
            kind: "link",
            channel: 0,
            index: 0,
            success: false,
        });
        let dir = std::env::temp_dir().join("qnet_obs_trace_test");
        let path = write_trace_jsonl(&dir, "unit run").expect("write succeeds");
        crate::set_level(ObsLevel::Counters);
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "unit_run.trace.jsonl"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(v.get("seq").and_then(|s| s.as_u64()), Some(i as u64));
        }
        reset_trace();
        let _ = std::fs::remove_file(&path);
    }
}
