//! The global observability level and its `MUERP_OBS` switch.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much instrumentation is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Everything disabled; instrumentation sites cost one relaxed
    /// atomic load.
    Off = 0,
    /// Counters and histograms only (lock-free atomic adds).
    Counters = 1,
    /// Counters plus hierarchical spans (one mutex op per span).
    Full = 2,
    /// Everything, plus per-decision [`crate::TraceEvent`]s into the
    /// flight recorder (one mutex op per event).
    Trace = 3,
}

impl ObsLevel {
    /// Canonical lowercase name (`off` / `counters` / `full` / `trace`).
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
            ObsLevel::Trace => "trace",
        }
    }

    /// Parses a `MUERP_OBS` value; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ObsLevel::Off),
            "counters" | "1" => Some(ObsLevel::Counters),
            "full" | "2" => Some(ObsLevel::Full),
            "trace" | "3" => Some(ObsLevel::Trace),
            _ => None,
        }
    }
}

/// Sentinel meaning "not initialized from the environment yet".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

#[cold]
fn init_from_env() -> ObsLevel {
    let level = std::env::var("MUERP_OBS")
        .ok()
        .and_then(|v| ObsLevel::parse(&v))
        .unwrap_or(ObsLevel::Counters);
    // Racing initializers agree on the value (env is read-only here),
    // so a plain store is fine.
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

fn decode(raw: u8) -> ObsLevel {
    match raw {
        0 => ObsLevel::Off,
        1 => ObsLevel::Counters,
        2 => ObsLevel::Full,
        _ => ObsLevel::Trace,
    }
}

/// The current level. After first use this is a single relaxed atomic
/// load — the entire cost of instrumentation at `MUERP_OBS=off`.
#[inline]
pub fn level() -> ObsLevel {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == UNINIT {
        init_from_env()
    } else {
        decode(raw)
    }
}

/// `true` when the current level is at least `wanted`.
#[inline]
pub fn enabled(wanted: ObsLevel) -> bool {
    level() >= wanted
}

/// Overrides the level at runtime (tests, benches, `--obs-report`).
pub fn set_level(l: ObsLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_values() {
        assert_eq!(ObsLevel::parse("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse(" Counters "), Some(ObsLevel::Counters));
        assert_eq!(ObsLevel::parse("FULL"), Some(ObsLevel::Full));
        assert_eq!(ObsLevel::parse("trace"), Some(ObsLevel::Trace));
        assert_eq!(ObsLevel::parse("bogus"), None);
    }

    #[test]
    fn set_level_round_trips() {
        let _serial = crate::serial_guard();
        let before = level();
        set_level(ObsLevel::Full);
        assert!(enabled(ObsLevel::Counters));
        assert!(enabled(ObsLevel::Full));
        set_level(ObsLevel::Off);
        assert!(!enabled(ObsLevel::Counters));
        set_level(before);
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!(ObsLevel::Off < ObsLevel::Counters);
        assert!(ObsLevel::Counters < ObsLevel::Full);
        assert!(ObsLevel::Full < ObsLevel::Trace);
    }
}
