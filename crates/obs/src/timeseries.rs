//! Windowed time-series metrics: how a run *evolves*, not just its
//! totals.
//!
//! The registry's counters and histograms aggregate over a whole run;
//! under sustained load (the online admission stream) that hides
//! exactly what matters — when blocking sets in, how admission latency
//! drifts as capacity fills, whether the finder cache keeps earning its
//! hits. A [`TimeSeries`] slices a run into fixed-width **windows of
//! virtual time** and snapshots three series kinds at every window
//! boundary:
//!
//! * **rates** — monotone per-window event tallies (arrivals, blocks),
//!   reset to zero at each boundary;
//! * **gauges** — last-write-wins instantaneous values (active
//!   sessions, free qubits), carried forward across boundaries so a
//!   quiet window still reports the standing level;
//! * **latencies** — per-window log-bucketed histograms using the exact
//!   bucket scheme of [`crate::Histogram`], summarized per window with
//!   the same [`quantiles_from_buckets`] estimator the run reports use.
//!
//! ## The virtual clock
//!
//! Windows are indexed by **slot**, never wall-clock: the caller drives
//! [`TimeSeries::advance_to`] with its own simulation slot counter, so
//! a fixed-seed run produces byte-identical series on any machine at
//! any thread count. Window `w` covers slots
//! `[w·window_slots, (w+1)·window_slots)`; advancing past a boundary
//! closes the elapsed windows in order (a long quiet gap closes each
//! intervening window with zero rates and carried gauges).
//!
//! ## The ring
//!
//! Closed windows land in a fixed-capacity ring: when full, the oldest
//! window is evicted and tallied (exactly, in
//! [`TimeSeriesSection::evicted`] and the `obs.timeseries.evicted`
//! counter) — bounded memory under unbounded load, like the flight
//! recorder. [`TimeSeries::finish`] closes the final partial window and
//! freezes everything into a serializable [`TimeSeriesSection`], which
//! rides in schema-4 [`RunReport`]s and exports as a JSONL metrics
//! stream via [`write_metrics_jsonl`].
//!
//! [`write_prometheus`] is the second sink: a Prometheus-style text
//! exposition of a report's *final* counters and histogram summaries,
//! for scraping the end state of a run.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::registry::{quantiles_from_buckets, HISTOGRAM_BUCKETS};
use crate::report::RunReport;

/// Shape of a [`TimeSeries`]: window width in slots and ring capacity
/// in windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeSeriesConfig {
    /// Virtual-time width of one window, in slots (clamped to ≥ 1).
    pub window_slots: u64,
    /// Maximum closed windows retained; older ones are evicted
    /// (clamped to ≥ 1).
    pub capacity: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            window_slots: 64,
            capacity: 256,
        }
    }
}

/// A plain (single-threaded) log-bucketed histogram for one window,
/// using the identical bucket scheme as the registry's
/// [`crate::Histogram`]: bucket `i` holds samples of bit length `i`
/// (bucket 0 = zeros, bucket `i` covers `[2^(i-1), 2^i)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for WindowHistogram {
    fn default() -> Self {
        WindowHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl WindowHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        WindowHistogram::default()
    }

    /// Records one sample (same bucketing as [`crate::Histogram`]).
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Adds every bucket of `other` into `self` — the exact union of
    /// the two sample sets, since the bucket scheme is shared.
    pub fn merge(&mut self, other: &WindowHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_index, count)` pairs, ascending.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// `(p50, p90, p99)` via the run-report estimator
    /// [`quantiles_from_buckets`]; all zero when empty.
    pub fn quantiles(&self) -> (f64, f64, f64) {
        quantiles_from_buckets(self.count, &self.sparse_buckets())
    }

    fn from_sparse(count: u64, sum: u64, sparse: &[(usize, u64)]) -> Option<WindowHistogram> {
        let mut h = WindowHistogram::new();
        for &(i, n) in sparse {
            if i >= HISTOGRAM_BUCKETS {
                return None;
            }
            h.buckets[i] = n;
        }
        h.count = count;
        h.sum = sum;
        Some(h)
    }
}

/// One closed window: the state of every registered series over slots
/// `[start_slot, end_slot)`.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSnapshot {
    /// 0-based window number since the series started (survives ring
    /// eviction — the first retained window of a long run may have a
    /// large index).
    pub index: u64,
    /// First slot the window covers.
    pub start_slot: u64,
    /// One past the last slot the window covers.
    pub end_slot: u64,
    /// Gauge values at window close (last write wins, carried forward
    /// from earlier windows when unwritten).
    pub gauges: BTreeMap<String, f64>,
    /// Per-window event tallies, zeroed at each boundary.
    pub rates: BTreeMap<String, u64>,
    /// Per-window latency histograms, reset at each boundary.
    pub latencies: BTreeMap<String, WindowHistogram>,
}

impl WindowSnapshot {
    /// The window as a flat JSON object (deterministic key order).
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("window".into(), Value::from(self.index));
        m.insert("start_slot".into(), Value::from(self.start_slot));
        m.insert("end_slot".into(), Value::from(self.end_slot));
        let mut gauges = serde_json::Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), Value::from(*v));
        }
        m.insert("gauges".into(), Value::Object(gauges));
        let mut rates = serde_json::Map::new();
        for (k, v) in &self.rates {
            rates.insert(k.clone(), Value::from(*v));
        }
        m.insert("rates".into(), Value::Object(rates));
        let mut lats = serde_json::Map::new();
        for (k, h) in &self.latencies {
            let (p50, p90, p99) = h.quantiles();
            let mut l = serde_json::Map::new();
            l.insert("count".into(), Value::from(h.count()));
            l.insert("sum".into(), Value::from(h.sum()));
            l.insert("p50".into(), Value::from(p50));
            l.insert("p90".into(), Value::from(p90));
            l.insert("p99".into(), Value::from(p99));
            l.insert(
                "buckets".into(),
                Value::Array(
                    h.sparse_buckets()
                        .iter()
                        .map(|&(i, n)| Value::Array(vec![Value::from(i as u64), Value::from(n)]))
                        .collect(),
                ),
            );
            lats.insert(k.clone(), Value::Object(l));
        }
        m.insert("latencies".into(), Value::Object(lats));
        Value::Object(m)
    }

    fn from_json(v: &Value) -> Option<WindowSnapshot> {
        let mut gauges = BTreeMap::new();
        for (k, g) in v.get("gauges")?.as_object()? {
            gauges.insert(k.clone(), g.as_f64()?);
        }
        let mut rates = BTreeMap::new();
        for (k, r) in v.get("rates")?.as_object()? {
            rates.insert(k.clone(), r.as_u64()?);
        }
        let mut latencies = BTreeMap::new();
        for (k, l) in v.get("latencies")?.as_object()? {
            let sparse = l
                .get("buckets")?
                .as_array()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_u64()? as usize, pair.get(1)?.as_u64()?))
                })
                .collect::<Option<Vec<_>>>()?;
            let h = WindowHistogram::from_sparse(
                l.get("count")?.as_u64()?,
                l.get("sum")?.as_u64()?,
                &sparse,
            )?;
            latencies.insert(k.clone(), h);
        }
        Some(WindowSnapshot {
            index: v.get("window")?.as_u64()?,
            start_slot: v.get("start_slot")?.as_u64()?,
            end_slot: v.get("end_slot")?.as_u64()?,
            gauges,
            rates,
            latencies,
        })
    }
}

/// A live windowed time-series recorder (see the [module docs]).
///
/// Instance-based, single-owner, no interior locking: the recorder
/// belongs to the loop that drives the virtual clock. Series names are
/// `&'static str` so recording never allocates on the per-event path
/// (the per-window snapshot at each boundary is where strings are
/// materialized).
///
/// [module docs]: crate::timeseries
#[derive(Debug)]
pub struct TimeSeries {
    window_slots: u64,
    capacity: usize,
    /// Window currently accumulating.
    current: u64,
    gauges: BTreeMap<&'static str, f64>,
    rates: BTreeMap<&'static str, u64>,
    latencies: BTreeMap<&'static str, WindowHistogram>,
    ring: VecDeque<WindowSnapshot>,
    evicted: u64,
    closed: u64,
}

impl TimeSeries {
    /// An empty series positioned at window 0.
    pub fn new(cfg: TimeSeriesConfig) -> TimeSeries {
        TimeSeries {
            window_slots: cfg.window_slots.max(1),
            capacity: cfg.capacity.max(1),
            current: 0,
            gauges: BTreeMap::new(),
            rates: BTreeMap::new(),
            latencies: BTreeMap::new(),
            ring: VecDeque::new(),
            evicted: 0,
            closed: 0,
        }
    }

    /// Width of one window in slots.
    pub fn window_slots(&self) -> u64 {
        self.window_slots
    }

    /// Windows closed so far (including evicted ones).
    pub fn closed_windows(&self) -> u64 {
        self.closed
    }

    /// Windows evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Moves the virtual clock to `slot`, closing every window whose
    /// boundary was crossed. Idempotent within a window; the clock is
    /// monotonic.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is behind a window already closed — the virtual
    /// clock never runs backwards.
    pub fn advance_to(&mut self, slot: u64) {
        let target = slot / self.window_slots;
        assert!(
            target >= self.current,
            "virtual clock moved backwards: slot {slot} is in window {target}, \
             window {} already accumulating",
            self.current,
        );
        while self.current < target {
            self.close_current();
        }
    }

    /// Sets gauge `name` for the current window (last write wins); the
    /// value carries forward into later windows until overwritten.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Adds `n` to rate `name` in the current window. Once registered,
    /// the series reports an explicit 0 in event-free windows.
    pub fn rate_add(&mut self, name: &'static str, n: u64) {
        *self.rates.entry(name).or_insert(0) += n;
    }

    /// Records one latency sample into series `name` for the current
    /// window. Once registered, the series reports an explicit empty
    /// histogram in sample-free windows.
    pub fn latency(&mut self, name: &'static str, value: u64) {
        self.latencies.entry(name).or_default().record(value);
    }

    fn close_current(&mut self) {
        let index = self.current;
        let snapshot = WindowSnapshot {
            index,
            start_slot: index * self.window_slots,
            end_slot: (index + 1) * self.window_slots,
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            rates: self
                .rates
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            latencies: self
                .latencies
                .iter()
                .map(|(k, h)| (k.to_string(), h.clone()))
                .collect(),
        };
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
            crate::counter!("obs.timeseries.evicted");
        }
        self.ring.push_back(snapshot);
        self.closed += 1;
        self.current += 1;
        // Rates and latencies are per-window: reset in place, keeping
        // the keys registered. Gauges carry forward untouched.
        for v in self.rates.values_mut() {
            *v = 0;
        }
        for h in self.latencies.values_mut() {
            *h = WindowHistogram::new();
        }
    }

    /// Closes the current (possibly partial) window and freezes the
    /// series into its serializable section.
    pub fn finish(mut self) -> TimeSeriesSection {
        self.close_current();
        TimeSeriesSection {
            window_slots: self.window_slots,
            total_windows: self.closed,
            evicted: self.evicted,
            windows: self.ring.into_iter().collect(),
        }
    }
}

/// The frozen output of a [`TimeSeries`], carried by schema-4
/// [`RunReport`]s and exported by [`write_metrics_jsonl`].
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeriesSection {
    /// Window width the series was recorded at.
    pub window_slots: u64,
    /// Total windows closed over the run (≥ `windows.len()`).
    pub total_windows: u64,
    /// Windows evicted from the ring (oldest first); exactly
    /// `total_windows - windows.len()`.
    pub evicted: u64,
    /// The retained windows, oldest first.
    pub windows: Vec<WindowSnapshot>,
}

impl TimeSeriesSection {
    /// The section as a JSON value.
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("window_slots".into(), Value::from(self.window_slots));
        m.insert("total_windows".into(), Value::from(self.total_windows));
        m.insert("evicted".into(), Value::from(self.evicted));
        m.insert(
            "windows".into(),
            Value::Array(self.windows.iter().map(WindowSnapshot::to_json).collect()),
        );
        Value::Object(m)
    }

    /// Rebuilds a section from its JSON form; `None` when the shape
    /// does not match.
    pub fn from_json(v: &Value) -> Option<TimeSeriesSection> {
        Some(TimeSeriesSection {
            window_slots: v.get("window_slots")?.as_u64()?,
            total_windows: v.get("total_windows")?.as_u64()?,
            evicted: v.get("evicted")?.as_u64()?,
            windows: v
                .get("windows")?
                .as_array()?
                .iter()
                .map(WindowSnapshot::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// The sum of rate series `name` over every retained window —
    /// equals the run-level total when nothing was evicted. Missing
    /// windows contribute zero, so an unregistered name sums to 0.
    pub fn merged_rate(&self, name: &str) -> u64 {
        self.windows.iter().filter_map(|w| w.rates.get(name)).sum()
    }

    /// The bucket-wise union of every retained window's latency series
    /// `name` — equals the run-level histogram when nothing was
    /// evicted.
    pub fn merged_latency(&self, name: &str) -> WindowHistogram {
        let mut merged = WindowHistogram::new();
        for w in &self.windows {
            if let Some(h) = w.latencies.get(name) {
                merged.merge(h);
            }
        }
        merged
    }
}

/// Writes a section as a JSON Lines metrics stream to
/// `<dir>/<run>.metrics.jsonl` (creating `dir`): one compact object
/// per window, oldest first, deterministic key order. The run name is
/// sanitized like [`crate::write_report`]. Returns the written path.
pub fn write_metrics_jsonl(
    dir: &Path,
    run: &str,
    section: &TimeSeriesSection,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.metrics.jsonl", sanitize(run)));
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    for window in &section.windows {
        let line = serde_json::to_string(&window.to_json())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(path)
}

/// Renders a report's final counters and histogram summaries in the
/// Prometheus text exposition format (metric names mangled to
/// `[a-zA-Z0-9_]`, one `# TYPE` line per family, histograms as
/// summaries with `quantile` labels).
pub fn prometheus_text(report: &RunReport) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for c in &report.counters {
        let (name, label) = prom_key(&c.key);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} counter\n"));
            last_family = name.clone();
        }
        match label {
            Some((k, v)) => out.push_str(&format!("{name}{{{k}=\"{v}\"}} {}\n", c.value)),
            None => out.push_str(&format!("{name} {}\n", c.value)),
        }
    }
    for h in &report.histograms {
        let (name, _) = prom_key(&h.key);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Writes [`prometheus_text`] to `<dir>/<run>.prom` (creating `dir`),
/// run name sanitized like [`crate::write_report`]. Returns the
/// written path.
pub fn write_prometheus(dir: &Path, run: &str, report: &RunReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.prom", sanitize(run)));
    std::fs::write(&path, prometheus_text(report))?;
    Ok(path)
}

/// Splits a rendered metric key (`a.b.c` or `a.b.c{k=v}`) into a
/// Prometheus-safe family name and optional label pair.
fn prom_key(key: &str) -> (String, Option<(String, String)>) {
    let (name, label) = match key.split_once('{') {
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').unwrap_or(rest);
            let label = body
                .split_once('=')
                .map(|(k, v)| (prom_ident(k), v.to_string()));
            (name, label)
        }
        None => (key, None),
    };
    (prom_ident(name), label)
}

fn prom_ident(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn sanitize(run: &str) -> String {
    run.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(window: u64, cap: usize) -> TimeSeries {
        TimeSeries::new(TimeSeriesConfig {
            window_slots: window,
            capacity: cap,
        })
    }

    #[test]
    fn windows_close_on_slot_boundaries() {
        let mut ts = series(4, 16);
        ts.rate_add("arrivals", 1);
        ts.advance_to(3); // still window 0
        ts.rate_add("arrivals", 2);
        ts.advance_to(4); // closes window 0
        ts.rate_add("arrivals", 5);
        let section = ts.finish();
        assert_eq!(section.total_windows, 2);
        assert_eq!(section.windows.len(), 2);
        assert_eq!(section.windows[0].rates["arrivals"], 3);
        assert_eq!(section.windows[0].start_slot, 0);
        assert_eq!(section.windows[0].end_slot, 4);
        assert_eq!(section.windows[1].rates["arrivals"], 5);
        assert_eq!(section.windows[1].index, 1);
    }

    #[test]
    fn gauges_carry_forward_rates_do_not() {
        let mut ts = series(2, 16);
        ts.gauge("active", 7.5);
        ts.rate_add("blocks", 4);
        ts.advance_to(6); // closes windows 0, 1, 2
        let section = ts.finish();
        assert_eq!(section.windows.len(), 4);
        for w in &section.windows {
            assert_eq!(w.gauges["active"], 7.5, "gauge carried into {}", w.index);
        }
        assert_eq!(section.windows[0].rates["blocks"], 4);
        for w in &section.windows[1..] {
            assert_eq!(w.rates["blocks"], 0, "rate reset in window {}", w.index);
        }
    }

    #[test]
    fn ring_evicts_oldest_windows_exactly() {
        let mut ts = series(1, 3);
        for slot in 0..10 {
            ts.advance_to(slot);
            ts.rate_add("n", slot);
        }
        let section = ts.finish();
        assert_eq!(section.total_windows, 10);
        assert_eq!(section.evicted, 7);
        assert_eq!(section.windows.len(), 3);
        let kept: Vec<u64> = section.windows.iter().map(|w| w.index).collect();
        assert_eq!(kept, vec![7, 8, 9], "oldest evicted, newest retained");
        assert_eq!(
            section.evicted,
            section.total_windows - section.windows.len() as u64
        );
    }

    #[test]
    #[should_panic(expected = "virtual clock moved backwards")]
    fn clock_regression_panics() {
        let mut ts = series(4, 4);
        ts.advance_to(9);
        ts.advance_to(3);
    }

    #[test]
    fn window_histogram_matches_registry_bucketing() {
        let mut h = WindowHistogram::new();
        for v in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let sparse = h.sparse_buckets();
        assert_eq!(sparse, vec![(0, 1), (1, 1), (2, 2), (11, 1), (63, 1)]);
        // Same estimator as the run reports.
        assert_eq!(
            h.quantiles(),
            quantiles_from_buckets(h.count(), &h.sparse_buckets())
        );
    }

    #[test]
    fn section_round_trips_through_json() {
        let mut ts = series(8, 16);
        ts.gauge("free_qubits", 42.25);
        ts.rate_add("arrivals", 3);
        ts.latency("admission", 17);
        ts.latency("admission", 300);
        ts.advance_to(8);
        ts.latency("admission", 5);
        let section = ts.finish();
        let v = section.to_json();
        let text = serde_json::to_string(&v).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let back = TimeSeriesSection::from_json(&parsed).expect("section shape matches");
        assert_eq!(back, section);
    }

    #[test]
    fn merged_rate_sums_every_window() {
        let mut ts = series(4, 16);
        let counts = [2u64, 0, 5, 1, 3];
        for (i, &n) in counts.iter().enumerate() {
            ts.advance_to(i as u64 * 4);
            ts.rate_add("admitted", n);
        }
        let section = ts.finish();
        assert_eq!(section.merged_rate("admitted"), counts.iter().sum::<u64>());
        assert_eq!(section.merged_rate("never-registered"), 0);
    }

    #[test]
    fn merged_latency_unions_every_window() {
        let mut ts = series(4, 16);
        let samples = [3u64, 9, 4, 1000, 0, 7, 7];
        let mut reference = WindowHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            ts.advance_to(i as u64 * 3);
            ts.latency("lat", s);
            reference.record(s);
        }
        let section = ts.finish();
        assert_eq!(section.merged_latency("lat"), reference);
    }

    #[test]
    fn metrics_jsonl_writes_one_line_per_window() {
        let mut ts = series(2, 8);
        ts.rate_add("arrivals", 1);
        ts.latency("lat", 9);
        ts.advance_to(5);
        let section = ts.finish();
        let dir = std::env::temp_dir().join("qnet_obs_timeseries_test");
        let path = write_metrics_jsonl(&dir, "unit run", &section).expect("write succeeds");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "unit_run.metrics.jsonl"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), section.windows.len());
        for (line, w) in lines.iter().zip(&section.windows) {
            let v: Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(v.get("window").and_then(|x| x.as_u64()), Some(w.index));
            assert!(v.get("rates").is_some() && v.get("latencies").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prometheus_text_mangles_keys_and_types_families() {
        use crate::registry::{CounterSnapshot, HistogramSnapshot};
        let report = RunReport {
            schema_version: crate::report::SCHEMA_VERSION,
            run: "prom".into(),
            level: "counters".into(),
            spans: vec![],
            counters: vec![
                CounterSnapshot {
                    key: "core.stream.blocked{reason=capacity}".into(),
                    value: 4,
                },
                CounterSnapshot {
                    key: "core.stream.blocked{reason=no_users}".into(),
                    value: 2,
                },
                CounterSnapshot {
                    key: "graph.dijkstra.calls".into(),
                    value: 7,
                },
            ],
            histograms: vec![HistogramSnapshot {
                key: "core.stream.admission_searches".into(),
                count: 4,
                sum: 22,
                mean: 5.5,
                p50: 5.0,
                p90: 7.0,
                p99: 7.0,
                buckets: vec![(3, 4)],
            }],
            profile: None,
            timeseries: None,
        };
        let text = prometheus_text(&report);
        assert_eq!(
            text.matches("# TYPE core_stream_blocked counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("core_stream_blocked{reason=\"capacity\"} 4"));
        assert!(text.contains("core_stream_blocked{reason=\"no_users\"} 2"));
        assert!(text.contains("graph_dijkstra_calls 7"));
        assert!(text.contains("# TYPE core_stream_admission_searches summary"));
        assert!(text.contains("core_stream_admission_searches{quantile=\"0.99\"} 7"));
        assert!(text.contains("core_stream_admission_searches_count 4"));
        assert!(text.ends_with('\n'));
    }
}
