//! # qnet-obs — workspace-wide observability
//!
//! A zero-heavy-dependency instrumentation layer shared by every crate
//! in the MUERP workspace: the graph substrate counts Dijkstra/Yen
//! work, the solvers emit span trees and channel-rejection counters,
//! the simulator aggregates per-slot outcomes, and the experiments
//! runner snapshots everything into machine-readable run reports under
//! `results/obs/`.
//!
//! ## Switch
//!
//! The global level is read once from the `MUERP_OBS` environment
//! variable:
//!
//! | value      | spans | counters/histograms | trace events | typical cost             |
//! |------------|-------|---------------------|--------------|--------------------------|
//! | `off`      | no    | no                  | no           | one relaxed atomic load  |
//! | `counters` | no    | yes                 | no           | a few atomic adds        |
//! | `full`     | yes   | yes                 | no           | + one mutex op per span  |
//! | `trace`    | yes   | yes                 | yes          | + one mutex op per event |
//!
//! Unset defaults to `counters`. [`set_level`] overrides the variable at
//! runtime (used by benches, tests, and `repro --obs-report`).
//!
//! At `trace`, every solver decision (channel candidates, tree-growth
//! rounds, beam prunes, local-search moves) and every bridged protocol
//! step lands in the [flight recorder](FlightRecorder) — a
//! fixed-capacity, generation-stamped ring exported as JSONL next to
//! the run reports. [`diff_reports`] compares two serialized
//! [`RunReport`]s and powers the `repro obs-diff` regression gate.
//!
//! For sustained-load runs, the [`timeseries`](TimeSeries) module adds
//! windowed metrics over a deterministic virtual clock (per-window
//! rates, gauges, and latency quantiles, frozen into schema-4 reports
//! and a JSONL metrics stream), and [`TraceSampler`] thins
//! per-admission trace emission 1-in-N so the flight recorder covers
//! the whole run instead of its tail.
//!
//! ## Naming convention
//!
//! Metrics are `<crate>.<component>.<name>` (e.g. `graph.dijkstra.calls`,
//! `core.channel.rejected`). Labels are static key/value pairs:
//! `core.channel.rejected{reason=qubit_capacity}`.
//!
//! ## Quick tour
//!
//! ```
//! use qnet_obs::{span, counter, histogram, ObsLevel, RunReport};
//!
//! qnet_obs::set_level(ObsLevel::Full);
//! {
//!     let _solve = span!("docs.example.solve");
//!     counter!("docs.example.calls");
//!     counter!("docs.channel.rejected", reason = "qubit_capacity");
//!     histogram!("docs.slot.duration_us", 17);
//! }
//! let report = RunReport::capture("doctest");
//! assert_eq!(report.counter_total("docs.example.calls"), 1);
//! let json = report.to_json();
//! assert!(serde_json::to_string(&json).unwrap().contains("docs.example.solve"));
//! ```

// The crate is `unsafe`-free except for the one `GlobalAlloc` impl the
// `alloc-profile` feature brings in (see `alloc.rs`).
#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod chrome_trace;
mod diff;
mod level;
mod profile;
mod registry;
mod report;
mod sample;
mod span;
mod timeseries;
mod trace;

#[cfg(feature = "alloc-profile")]
pub use alloc::CountingAllocator;
pub use alloc::{alloc_profiling_compiled, peak_rss_bytes, AllocScope};
pub use chrome_trace::{chrome_trace_value, write_chrome_trace};
pub use diff::{diff_reports, DiffEntry, DiffKind, DiffOptions, ReportDiff, Severity};
pub use level::{enabled, level, set_level, ObsLevel};
pub use profile::{AllocSummary, ProfileRow, ProfileSection};
pub use registry::{
    global, quantiles_from_buckets, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
    MetricKey, Registry,
};
pub use report::{write_report, RunReport, SpanSnapshot, SCHEMA_VERSION};
pub use sample::TraceSampler;
pub use span::{
    adopt_span_context, enter, reset_spans, span_context, SpanContext, SpanContextGuard, SpanGuard,
    DEFAULT_SPAN_CAP,
};
pub use timeseries::{
    prometheus_text, write_metrics_jsonl, write_prometheus, TimeSeries, TimeSeriesConfig,
    TimeSeriesSection, WindowHistogram, WindowSnapshot,
};
pub use trace::{
    record_event, recorder, reset_trace, set_trace_capacity, trace_enabled, trace_snapshot,
    write_trace_jsonl, FlightRecorder, Stamped, TraceEvent, DEFAULT_TRACE_CAPACITY,
};

/// Serializes unit tests that mutate the process-global level or span
/// store, since the default test harness runs them in parallel.
#[cfg(test)]
pub(crate) fn serial_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    LOCK.lock()
}

/// Increments a named counter when the level admits counters.
///
/// The counter handle is resolved once per call site and cached in a
/// `OnceLock`, so the steady-state cost is one relaxed level load plus
/// one relaxed `fetch_add`. An optional static label refines the metric:
///
/// ```
/// qnet_obs::counter!("core.alg1.runs");
/// qnet_obs::counter!("core.channel.rejected", reason = "disconnected");
/// qnet_obs::counter!("sim.slot.success"; 42); // add an explicit amount
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal $(, $key:ident = $value:literal)? $(,)?) => {
        $crate::counter!($name $(, $key = $value)?; 1)
    };
    ($name:literal $(, $key:ident = $value:literal)?; $amount:expr) => {{
        if $crate::enabled($crate::ObsLevel::Counters) {
            static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            __HANDLE
                .get_or_init(|| {
                    $crate::global().counter($crate::MetricKey {
                        name: $name,
                        label: $crate::counter!(@label $($key = $value)?),
                    })
                })
                .add($amount);
        }
    }};
    (@label) => {
        ::core::option::Option::None
    };
    (@label $key:ident = $value:literal) => {
        ::core::option::Option::Some((stringify!($key), $value))
    };
}

/// Records a value into a named log-bucketed histogram when the level
/// admits counters.
///
/// ```
/// qnet_obs::histogram!("sim.slot.duration_us", 125);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:literal, $value:expr $(,)?) => {{
        if $crate::enabled($crate::ObsLevel::Counters) {
            static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            __HANDLE
                .get_or_init(|| {
                    $crate::global().histogram($crate::MetricKey {
                        name: $name,
                        label: ::core::option::Option::None,
                    })
                })
                .record($value);
        }
    }};
}

/// Opens a hierarchical timing span, closed when the returned guard
/// drops. A no-op (no allocation, no lock) below [`ObsLevel::Full`].
///
/// ```
/// let _guard = qnet_obs::span!("core.prim_based.solve");
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::enter($name)
    };
}
