//! Hierarchical timing spans.
//!
//! A span records a name, its parent span, the owning thread, and a
//! monotonic start/duration pair. Spans only exist at
//! [`ObsLevel::Full`]; below that, [`enter`] returns an inert guard
//! without touching any shared state.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::level::{enabled, ObsLevel};

/// One finished (or still-open) span as stored in the collector.
#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    /// Static span name, e.g. `core.prim_based.solve`.
    pub name: &'static str,
    /// Index of the parent span in the store, if nested.
    pub parent: Option<usize>,
    /// Arbitrary id distinguishing the recording thread.
    pub thread: u64,
    /// Start offset from the process obs epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds; `None` while the span is open.
    pub duration_us: Option<u64>,
}

struct Store {
    spans: Mutex<Vec<SpanRecord>>,
    epoch: Instant,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        spans: Mutex::new(Vec::new()),
        epoch: Instant::now(),
    })
}

thread_local! {
    /// Innermost open span on this thread (index into the store).
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == 0 {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
            id.set(NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        }
        id.get()
    })
}

/// Guard returned by [`enter`]; ends the span when dropped.
///
/// The inert form (level below `Full`) carries no state and its drop is
/// a no-op.
#[must_use = "a span ends when its guard drops; bind it to a variable"]
pub struct SpanGuard {
    /// `Some((index, start))` when the span is live.
    live: Option<(usize, Instant)>,
}

/// Opens a span named `name` under the innermost open span of this
/// thread. Returns an inert guard below [`ObsLevel::Full`].
pub fn enter(name: &'static str) -> SpanGuard {
    if !enabled(ObsLevel::Full) {
        return SpanGuard { live: None };
    }
    let store = store();
    let start = Instant::now();
    let parent = CURRENT.with(|c| c.get());
    let record = SpanRecord {
        name,
        parent,
        thread: thread_id(),
        start_us: start.duration_since(store.epoch).as_micros() as u64,
        duration_us: None,
    };
    let index = {
        let mut spans = store.spans.lock();
        spans.push(record);
        spans.len() - 1
    };
    CURRENT.with(|c| c.set(Some(index)));
    SpanGuard {
        live: Some((index, start)),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((index, start)) = self.live else {
            return;
        };
        let elapsed = start.elapsed().as_micros() as u64;
        let store = store();
        let mut spans = store.spans.lock();
        if let Some(record) = spans.get_mut(index) {
            record.duration_us = Some(elapsed);
            let parent = record.parent;
            CURRENT.with(|c| c.set(parent));
        }
    }
}

/// Copies out every recorded span (open spans have `duration_us: None`).
pub(crate) fn snapshot_spans() -> Vec<SpanRecord> {
    store().spans.lock().clone()
}

/// Clears the span store. Open guards from before the reset will write
/// their duration into whatever record now occupies their index, so only
/// reset between runs, not mid-span.
pub fn reset_spans() {
    store().spans.lock().clear();
    CURRENT.with(|c| c.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::set_level;

    #[test]
    fn spans_nest_and_record_parents() {
        let _serial = crate::serial_guard();
        set_level(ObsLevel::Full);
        reset_spans();
        {
            let _outer = enter("test.span.outer");
            {
                let _inner = enter("test.span.inner");
            }
            let _sibling = enter("test.span.sibling");
        }
        let spans = snapshot_spans();
        set_level(ObsLevel::Counters);
        assert_eq!(spans.len(), 3);
        let outer = spans
            .iter()
            .position(|s| s.name == "test.span.outer")
            .unwrap();
        let inner = &spans[spans
            .iter()
            .position(|s| s.name == "test.span.inner")
            .unwrap()];
        let sibling = &spans[spans
            .iter()
            .position(|s| s.name == "test.span.sibling")
            .unwrap()];
        assert_eq!(spans[outer].parent, None);
        assert_eq!(inner.parent, Some(outer));
        assert_eq!(
            sibling.parent,
            Some(outer),
            "parent restored after inner closed"
        );
        assert!(spans.iter().all(|s| s.duration_us.is_some()));
    }

    #[test]
    fn below_full_no_spans_are_recorded() {
        let _serial = crate::serial_guard();
        set_level(ObsLevel::Counters);
        reset_spans();
        {
            let _g = enter("test.span.suppressed");
        }
        assert!(snapshot_spans().is_empty());
    }
}
