//! Hierarchical timing spans.
//!
//! A span records a name, its parent span, the owning thread, and a
//! monotonic start/duration pair. Parent links come from a
//! *thread-local span stack*: [`enter`] pushes the new span as the
//! thread's innermost open span, and the guard's drop pops it back to
//! whatever was innermost before — so a span's parent is always a span
//! opened earlier **on the same thread**, never a span from another
//! thread (`tests/span_tree.rs` hammers this under concurrency).
//!
//! Spans only exist at [`ObsLevel::Full`]; below that, [`enter`] returns
//! an inert guard without touching any shared state. The store is
//! bounded: past `MUERP_OBS_SPAN_CAP` records (default
//! [`DEFAULT_SPAN_CAP`]) new spans are dropped and tallied under the
//! `obs.spans.dropped` counter instead of growing without limit.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::level::{enabled, ObsLevel};

/// Default cap on stored span records; override with
/// `MUERP_OBS_SPAN_CAP`.
pub const DEFAULT_SPAN_CAP: usize = 1 << 20;

/// One finished (or still-open) span as stored in the collector.
#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    /// Static span name, e.g. `core.prim_based.solve`.
    pub name: &'static str,
    /// Index of the parent span in the store, if nested.
    pub parent: Option<usize>,
    /// Arbitrary id distinguishing the recording thread.
    pub thread: u64,
    /// Start offset from the process obs epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds; `None` while the span is open.
    pub duration_us: Option<u64>,
}

struct Store {
    spans: Mutex<Vec<SpanRecord>>,
    epoch: Instant,
    cap: usize,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        spans: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        cap: std::env::var("MUERP_OBS_SPAN_CAP")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SPAN_CAP)
            .max(1),
    })
}

thread_local! {
    /// Innermost open span on this thread (index into the store).
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == 0 {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
            id.set(NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
        }
        id.get()
    })
}

/// The obs-internal id of the calling thread (also stamped onto spans
/// and trace events recorded by this thread).
pub(crate) fn current_thread_id() -> u64 {
    thread_id()
}

/// Microseconds elapsed since the process obs epoch — the shared
/// timebase of span `start_us` offsets and trace-event timestamps.
pub(crate) fn micros_since_epoch() -> u64 {
    Instant::now().duration_since(store().epoch).as_micros() as u64
}

/// Guard returned by [`enter`]; ends the span when dropped.
///
/// The inert form (level below `Full`, or a capped-out store) carries no
/// state and its drop is a no-op.
#[must_use = "a span ends when its guard drops; bind it to a variable"]
pub struct SpanGuard {
    /// Live state when the span was actually recorded.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    /// Index of this span's record in the store.
    index: usize,
    /// Start instant (duration source; `start_us` is derived separately).
    start: Instant,
    /// The thread's innermost open span when this one was entered; the
    /// drop restores it, popping the thread-local span stack.
    prev: Option<usize>,
    /// Thread the span was opened on. A guard that migrates to another
    /// thread (scoped-thread moves, async executors) still closes its
    /// span, but must not touch the *other* thread's span stack.
    thread: u64,
}

/// Opens a span named `name` under the innermost open span of this
/// thread. Returns an inert guard below [`ObsLevel::Full`] or when the
/// span store has reached its cap (tallied as `obs.spans.dropped`).
pub fn enter(name: &'static str) -> SpanGuard {
    if !enabled(ObsLevel::Full) {
        return SpanGuard { live: None };
    }
    let store = store();
    let start = Instant::now();
    let prev = CURRENT.with(|c| c.get());
    let thread = thread_id();
    let record = SpanRecord {
        name,
        parent: prev,
        thread,
        start_us: start.duration_since(store.epoch).as_micros() as u64,
        duration_us: None,
    };
    let index = {
        let mut spans = store.spans.lock();
        if spans.len() >= store.cap {
            drop(spans);
            crate::counter!("obs.spans.dropped");
            return SpanGuard { live: None };
        }
        spans.push(record);
        spans.len() - 1
    };
    CURRENT.with(|c| c.set(Some(index)));
    SpanGuard {
        live: Some(LiveSpan {
            index,
            start,
            prev,
            thread,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(LiveSpan {
            index,
            start,
            prev,
            thread,
        }) = self.live.take()
        else {
            return;
        };
        let elapsed = start.elapsed().as_micros() as u64;
        let store = store();
        {
            let mut spans = store.spans.lock();
            if let Some(record) = spans.get_mut(index) {
                record.duration_us = Some(elapsed);
            }
        }
        // Pop the span stack of the *opening* thread only: restoring the
        // saved `prev` on a different thread would graft that thread's
        // next spans under a parent it never opened (a cross-thread
        // parent link).
        if thread_id() == thread {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

/// An opaque capture of one thread's innermost open span, taken with
/// [`span_context`] on the submitting thread and re-installed with
/// [`adopt_span_context`] on a worker thread — the handoff that keeps a
/// thread pool's spans in *one* causal tree instead of per-worker roots.
///
/// The capture is a plain value (`Copy + Send`): carry it into the pool
/// task by value. It is only meaningful within the span store it was
/// captured from, i.e. don't hold one across [`reset_spans`].
#[derive(Clone, Copy, Debug)]
pub struct SpanContext {
    current: Option<usize>,
}

/// Captures the calling thread's innermost open span (or `None` at top
/// level / below [`ObsLevel::Full`]) for adoption on another thread.
pub fn span_context() -> SpanContext {
    SpanContext {
        current: CURRENT.with(|c| c.get()),
    }
}

/// Guard returned by [`adopt_span_context`]; restores the thread's own
/// span stack when dropped.
#[must_use = "the adopted parent is popped when this guard drops"]
pub struct SpanContextGuard {
    prev: Option<usize>,
}

/// Installs `ctx` as the calling thread's innermost open span, so spans
/// this thread opens next parent under the *submitting* thread's span.
/// The returned guard restores the previous state on drop; drop it on
/// the adopting thread (pool workers do, naturally, as the adoption is
/// scoped to one task or one worker loop).
pub fn adopt_span_context(ctx: SpanContext) -> SpanContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx.current));
    SpanContextGuard { prev }
}

impl Drop for SpanContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Copies out every recorded span (open spans have `duration_us: None`).
pub(crate) fn snapshot_spans() -> Vec<SpanRecord> {
    store().spans.lock().clone()
}

/// Clears the span store. Open guards from before the reset will write
/// their duration into whatever record now occupies their index, so only
/// reset between runs, not mid-span.
pub fn reset_spans() {
    store().spans.lock().clear();
    CURRENT.with(|c| c.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::set_level;

    #[test]
    fn spans_nest_and_record_parents() {
        let _serial = crate::serial_guard();
        set_level(ObsLevel::Full);
        reset_spans();
        {
            let _outer = enter("test.span.outer");
            {
                let _inner = enter("test.span.inner");
            }
            let _sibling = enter("test.span.sibling");
        }
        let spans = snapshot_spans();
        set_level(ObsLevel::Counters);
        assert_eq!(spans.len(), 3);
        let outer = spans
            .iter()
            .position(|s| s.name == "test.span.outer")
            .unwrap();
        let inner = &spans[spans
            .iter()
            .position(|s| s.name == "test.span.inner")
            .unwrap()];
        let sibling = &spans[spans
            .iter()
            .position(|s| s.name == "test.span.sibling")
            .unwrap()];
        assert_eq!(spans[outer].parent, None);
        assert_eq!(inner.parent, Some(outer));
        assert_eq!(
            sibling.parent,
            Some(outer),
            "parent restored after inner closed"
        );
        assert!(spans.iter().all(|s| s.duration_us.is_some()));
    }

    #[test]
    fn below_full_no_spans_are_recorded() {
        let _serial = crate::serial_guard();
        set_level(ObsLevel::Counters);
        reset_spans();
        {
            let _g = enter("test.span.suppressed");
        }
        assert!(snapshot_spans().is_empty());
    }

    #[test]
    fn guard_dropped_on_another_thread_never_links_stacks() {
        let _serial = crate::serial_guard();
        set_level(ObsLevel::Full);
        reset_spans();
        {
            let _outer = enter("test.span.migrating_outer");
            let inner = enter("test.span.migrated");
            // Ship the guard to a second thread and drop it there. The
            // span still closes, but the dropping thread must not
            // inherit this thread's span stack: its own next span has to
            // be a root, not a child of `migrating_outer`.
            std::thread::spawn(move || {
                drop(inner);
                let _foreign = enter("test.span.foreign_root");
            })
            .join()
            .unwrap();
        }
        let spans = snapshot_spans();
        set_level(ObsLevel::Counters);
        let migrated = spans
            .iter()
            .find(|s| s.name == "test.span.migrated")
            .unwrap();
        let foreign = spans
            .iter()
            .find(|s| s.name == "test.span.foreign_root")
            .unwrap();
        assert!(migrated.duration_us.is_some(), "migrated span closed");
        assert_eq!(
            foreign.parent, None,
            "a guard dropped on a foreign thread must not seed that \
             thread's span stack (cross-thread parent link)"
        );
        for s in &spans {
            if let Some(p) = s.parent {
                assert_eq!(spans[p].thread, s.thread, "parents stay same-thread");
            }
        }
    }
}
