//! Counters, log-bucketed histograms, and the registry that owns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// Identifies a metric: a static name plus an optional static label
/// pair, e.g. `core.channel.rejected{reason=qubit_capacity}`.
///
/// Names follow the `<crate>.<component>.<name>` convention; labels are
/// drawn from static sets so metric registration never allocates on the
/// hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`<crate>.<component>.<name>`).
    pub name: &'static str,
    /// Optional `(key, value)` label refinement.
    pub label: Option<(&'static str, &'static str)>,
}

impl MetricKey {
    /// The canonical rendered form, `name` or `name{key=value}`.
    pub fn render(&self) -> String {
        match self.label {
            Some((k, v)) => format!("{}{{{}={}}}", self.name, k, v),
            None => self.name.to_string(),
        }
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value `v` satisfies
/// `2^(i-1) ≤ v < 2^i` (bucket 0 counts `v == 0`), i.e. the bucket index
/// is the sample's bit length. Recording is three relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        // value == u64::MAX has bit length 64; clamp into the top bucket.
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Rendered metric key (`name` or `name{key=value}`).
    pub key: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Rendered metric key.
    pub key: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Estimated median (see [`quantiles_from_buckets`]).
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Non-empty `(bucket_index, count)` pairs; bucket `i` covers
    /// `[2^(i-1), 2^i)` with bucket 0 holding zeros.
    pub buckets: Vec<(usize, u64)>,
}

/// Estimates the (p50, p90, p99) summary quantiles of a log-bucketed
/// histogram from its sparse `(bucket_index, count)` pairs.
///
/// The rank of quantile `q` is `ceil(q·count)` (1-based); the estimate
/// interpolates linearly inside the bucket holding that rank, whose
/// value range is `[2^(i-1), 2^i)` (bucket 0 is exactly 0). Samples are
/// integers, so the interpolation targets the bucket's largest
/// *attainable* value `2^i − 1`, never the exclusive upper edge — a
/// single-bucket histogram of all-ones therefore reports exactly 1, not
/// 2. Bounded by construction to at most one octave of error — the
/// price of sparse fixed-size buckets over full sample retention.
pub fn quantiles_from_buckets(count: u64, buckets: &[(usize, u64)]) -> (f64, f64, f64) {
    if count == 0 {
        return (0.0, 0.0, 0.0);
    }
    let one = |q: f64| -> f64 {
        let rank = (q * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in buckets {
            if seen + n >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u128 << (i - 1)) as f64;
                let hi = ((1u128 << i) - 1) as f64;
                let into = (rank - seen) as f64 / n as f64;
                return lo + into * (hi - lo);
            }
            seen += n;
        }
        // Ranks beyond the recorded mass (impossible when count matches
        // the bucket totals): the top bucket's largest attainable value.
        buckets
            .last()
            .map_or(0.0, |&(i, _)| ((1u128 << i.min(127)) - 1) as f64)
    };
    (one(0.50), one(0.90), one(0.99))
}

/// Owns all counters and histograms for one scope (usually the process,
/// via [`global`]; tests may build private registries).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<MetricKey, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `key`, creating it on first use.
    /// The returned handle stays valid (and keeps counting into this
    /// registry) for the registry's lifetime; [`Registry::reset`] zeroes
    /// values without invalidating handles.
    pub fn counter(&self, key: MetricKey) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The histogram registered under `key`, creating it on first use.
    pub fn histogram(&self, key: MetricKey) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(&key) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Snapshot of all counters with non-zero values (sorted by key).
    pub fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        self.counters
            .read()
            .iter()
            .filter(|(_, c)| c.get() > 0)
            .map(|(k, c)| CounterSnapshot {
                key: k.render(),
                value: c.get(),
            })
            .collect()
    }

    /// Snapshot of all histograms with samples (sorted by key).
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.histograms
            .read()
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| {
                let count = h.count();
                let buckets: Vec<(usize, u64)> = h
                    .buckets()
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, n)| n > 0)
                    .collect();
                let (p50, p90, p99) = quantiles_from_buckets(count, &buckets);
                HistogramSnapshot {
                    key: k.render(),
                    count,
                    sum: h.sum(),
                    mean: h.mean(),
                    p50,
                    p90,
                    p99,
                    buckets,
                }
            })
            .collect()
    }

    /// Total across every counter sharing `name`, regardless of label.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .read()
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Zeroes all metrics **in place**: cached handles (e.g. the
    /// per-call-site `OnceLock`s behind `counter!`) remain valid.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
    }
}

/// The process-wide registry used by the `counter!` / `histogram!`
/// macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: MetricKey = MetricKey {
        name: "test.registry.counter",
        label: None,
    };

    #[test]
    fn counter_identity_is_stable() {
        let reg = Registry::new();
        let a = reg.counter(KEY);
        let b = reg.counter(KEY);
        a.inc();
        b.add(4);
        assert_eq!(reg.counter(KEY).get(), 5);
        reg.reset();
        assert_eq!(a.get(), 0);
        a.inc();
        assert_eq!(b.get(), 1, "handles stay live across reset");
    }

    #[test]
    fn labels_split_metrics_and_totals_merge_them() {
        let reg = Registry::new();
        let hit = MetricKey {
            name: "test.cache.requests",
            label: Some(("outcome", "hit")),
        };
        let miss = MetricKey {
            name: "test.cache.requests",
            label: Some(("outcome", "miss")),
        };
        reg.counter(hit).add(7);
        reg.counter(miss).add(3);
        assert_eq!(reg.counter_total("test.cache.requests"), 10);
        let snaps = reg.counter_snapshots();
        assert_eq!(snaps.len(), 2);
        assert!(snaps
            .iter()
            .any(|s| s.key == "test.cache.requests{outcome=hit}" && s.value == 7));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        h.record(u64::MAX); // clamped to bucket 63
        assert_eq!(h.count(), 6);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[11], 1);
        assert_eq!(buckets[63], 1);
        let wrapped_sum = 1030u64.wrapping_add(u64::MAX); // sum wraps on overflow
        assert!((h.mean() - wrapped_sum as f64 / 6.0).abs() < 1.0);
    }

    #[test]
    fn quantiles_interpolate_within_log_buckets() {
        // 100 samples: 50 zeros, 40 in bucket 4 ([8,16)), 10 in
        // bucket 10 ([512,1024)).
        let buckets = [(0usize, 50u64), (4, 40), (10, 10)];
        let (p50, p90, p99) = quantiles_from_buckets(100, &buckets);
        assert_eq!(p50, 0.0, "rank 50 lands on the zero bucket");
        // Rank 90 is the last of bucket 4 → its largest attainable
        // value (15; the exclusive edge 16 is not a sample).
        assert_eq!(p90, 15.0);
        // Rank 99 is 9/10 into bucket 10: 512 + 0.9·512.
        assert!((p99 - (512.0 + 0.9 * 511.0)).abs() < 1e-9);
        assert_eq!(quantiles_from_buckets(0, &[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn single_bucket_of_identical_samples_reports_that_value() {
        // n samples that are all exactly 1 live alone in bucket 1
        // ([1,2)); every quantile must come back as 1, not as the
        // bucket's exclusive upper edge 2.
        for n in [1u64, 2, 100] {
            let (p50, p90, p99) = quantiles_from_buckets(n, &[(1, n)]);
            assert_eq!((p50, p90, p99), (1.0, 1.0, 1.0), "n={n}");
        }
        // A lone sample anywhere interpolates to its bucket's largest
        // attainable value.
        let (p50, p90, p99) = quantiles_from_buckets(1, &[(4, 1)]);
        assert_eq!((p50, p90, p99), (15.0, 15.0, 15.0));
    }

    #[test]
    fn empty_histogram_edges_are_total_functions() {
        // count 0 with stray buckets, and count > 0 with no buckets
        // (an impossible-but-seen shape in hand-edited baselines): both
        // must return finite estimates, not panic or NaN.
        assert_eq!(quantiles_from_buckets(0, &[(3, 4)]), (0.0, 0.0, 0.0));
        let (p50, p90, p99) = quantiles_from_buckets(5, &[]);
        assert_eq!((p50, p90, p99), (0.0, 0.0, 0.0));
        // Count larger than the bucket mass: overflow ranks fall back
        // to the top bucket's largest attainable value.
        let (_, _, p99) = quantiles_from_buckets(100, &[(1, 1)]);
        assert_eq!(p99, 1.0);
    }

    #[test]
    fn snapshot_quantiles_match_the_helper() {
        let reg = Registry::new();
        let key = MetricKey {
            name: "test.registry.latency",
            label: None,
        };
        let h = reg.histogram(key);
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        let snap = &reg.histogram_snapshots()[0];
        let (p50, p90, p99) = quantiles_from_buckets(snap.count, &snap.buckets);
        assert_eq!((snap.p50, snap.p90, snap.p99), (p50, p90, p99));
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
    }

    #[test]
    fn snapshots_skip_empty_metrics() {
        let reg = Registry::new();
        reg.counter(KEY); // registered but never incremented
        assert!(reg.counter_snapshots().is_empty());
        assert!(reg.histogram_snapshots().is_empty());
    }
}
