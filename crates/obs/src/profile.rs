//! Perf attribution over the span tree.
//!
//! Turns the flat span list of a [`RunReport`] into per-phase cost
//! rows: for every span name, how many spans ran, their **total** time
//! (wall time with children included) and their **self** time (total
//! minus the direct children — the time the phase spent in its own
//! code). Self time is the partition that adds up: summed over the
//! whole tree it equals the root spans' wall time, so an attribution
//! table built from it accounts for (approximately) 100% of a run.
//!
//! The resulting [`ProfileSection`] rides inside schema-version-3 run
//! reports, next to the optional allocation tallies from
//! [`crate::alloc`].

use serde_json::Value;

use crate::report::SpanSnapshot;

/// Aggregated cost of one span name (one "phase").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name (`<crate>.<component>.<name>`).
    pub name: String,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Summed duration including children, microseconds. Nested spans
    /// of the *same* name each contribute, so recursive phases can
    /// exceed wall time — self time is the additive column.
    pub total_us: u64,
    /// Summed duration minus direct children, microseconds.
    pub self_us: u64,
}

/// Allocation tallies for one profiled scope (only populated when the
/// `alloc-profile` feature and its counting global allocator are in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSummary {
    /// Number of heap allocations.
    pub allocs: u64,
    /// Total bytes requested across those allocations.
    pub bytes: u64,
    /// Peak live heap bytes observed during the scope.
    pub peak_bytes: u64,
}

/// The per-phase attribution section of a schema-version-3 report.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSection {
    /// One row per distinct span name, sorted by name (deterministic
    /// serialization; sort by `self_us` at display time).
    pub rows: Vec<ProfileRow>,
    /// Summed duration of all root spans, microseconds — the wall time
    /// the attribution should account for.
    pub root_total_us: u64,
    /// Summed self time across every span, microseconds. Coverage is
    /// `attributed_us / root_total_us`.
    pub attributed_us: u64,
    /// Allocation tallies for the profiled scope, when counted.
    pub alloc: Option<AllocSummary>,
    /// Process peak RSS in bytes (from `/proc/self/status` `VmHWM`),
    /// when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl ProfileSection {
    /// Builds the attribution from a report's spans. Open spans
    /// (duration 0) contribute nothing; a child longer than its parent
    /// (clock jitter between `Instant` reads) saturates the parent's
    /// self time at 0 instead of wrapping.
    pub fn from_spans(spans: &[SpanSnapshot]) -> ProfileSection {
        let mut child_us = vec![0u64; spans.len()];
        let mut root_total_us = 0u64;
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) if p < i => child_us[p] += s.duration_us,
                _ => root_total_us += s.duration_us,
            }
        }
        let mut by_name: std::collections::BTreeMap<&str, ProfileRow> = Default::default();
        let mut attributed_us = 0u64;
        for (i, s) in spans.iter().enumerate() {
            let self_us = s.duration_us.saturating_sub(child_us[i]);
            attributed_us += self_us;
            let row = by_name
                .entry(s.name.as_str())
                .or_insert_with(|| ProfileRow {
                    name: s.name.clone(),
                    count: 0,
                    total_us: 0,
                    self_us: 0,
                });
            row.count += 1;
            row.total_us += s.duration_us;
            row.self_us += self_us;
        }
        ProfileSection {
            rows: by_name.into_values().collect(),
            root_total_us,
            attributed_us,
            alloc: None,
            peak_rss_bytes: None,
        }
    }

    /// Fraction of root wall time the self-time rows account for, in
    /// `[0, 1]`-ish (jitter can push it past 1). 1.0 for an empty run.
    pub fn coverage(&self) -> f64 {
        if self.root_total_us == 0 {
            1.0
        } else {
            self.attributed_us as f64 / self.root_total_us as f64
        }
    }

    /// The section as a JSON value (the `"profile"` key of a v3
    /// report).
    pub fn to_json(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "rows".into(),
            Value::Array(
                self.rows
                    .iter()
                    .map(|r| {
                        let mut row = serde_json::Map::new();
                        row.insert("name".into(), Value::from(r.name.as_str()));
                        row.insert("count".into(), Value::from(r.count));
                        row.insert("total_us".into(), Value::from(r.total_us));
                        row.insert("self_us".into(), Value::from(r.self_us));
                        Value::Object(row)
                    })
                    .collect(),
            ),
        );
        m.insert("root_total_us".into(), Value::from(self.root_total_us));
        m.insert("attributed_us".into(), Value::from(self.attributed_us));
        m.insert(
            "alloc".into(),
            self.alloc.map_or(Value::Null, |a| {
                let mut alloc = serde_json::Map::new();
                alloc.insert("allocs".into(), Value::from(a.allocs));
                alloc.insert("bytes".into(), Value::from(a.bytes));
                alloc.insert("peak_bytes".into(), Value::from(a.peak_bytes));
                Value::Object(alloc)
            }),
        );
        m.insert(
            "peak_rss_bytes".into(),
            self.peak_rss_bytes.map_or(Value::Null, Value::from),
        );
        Value::Object(m)
    }

    /// Inverse of [`ProfileSection::to_json`]; `None` when the shape
    /// does not match.
    pub fn from_json(v: &Value) -> Option<ProfileSection> {
        let rows = v
            .get("rows")?
            .as_array()?
            .iter()
            .map(|r| {
                Some(ProfileRow {
                    name: r.get("name")?.as_str()?.to_string(),
                    count: r.get("count")?.as_u64()?,
                    total_us: r.get("total_us")?.as_u64()?,
                    self_us: r.get("self_us")?.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let alloc = match v.get("alloc")? {
            Value::Null => None,
            a => Some(AllocSummary {
                allocs: a.get("allocs")?.as_u64()?,
                bytes: a.get("bytes")?.as_u64()?,
                peak_bytes: a.get("peak_bytes")?.as_u64()?,
            }),
        };
        let peak_rss_bytes = match v.get("peak_rss_bytes")? {
            Value::Null => None,
            n => Some(n.as_u64()?),
        };
        Some(ProfileSection {
            rows,
            root_total_us: v.get("root_total_us")?.as_u64()?,
            attributed_us: v.get("attributed_us")?.as_u64()?,
            alloc,
            peak_rss_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, parent: Option<usize>, start_us: u64, duration_us: u64) -> SpanSnapshot {
        SpanSnapshot {
            name: name.into(),
            parent,
            thread: 1,
            start_us,
            duration_us,
        }
    }

    #[test]
    fn self_time_partitions_root_wall_time() {
        // root(100) -> a(60) -> b(25), root -> a(30); plus a second
        // root(10) on its own.
        let spans = vec![
            span("root", None, 0, 100),
            span("a", Some(0), 5, 60),
            span("b", Some(1), 10, 25),
            span("a", Some(0), 70, 30),
            span("root2", None, 200, 10),
        ];
        let p = ProfileSection::from_spans(&spans);
        assert_eq!(p.root_total_us, 110);
        assert_eq!(p.attributed_us, 110, "self times sum to root wall time");
        assert!((p.coverage() - 1.0).abs() < 1e-12);
        let a = p.rows.iter().find(|r| r.name == "a").unwrap();
        assert_eq!((a.count, a.total_us, a.self_us), (2, 90, 65));
        let root = p.rows.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(root.self_us, 100 - 60 - 30);
    }

    #[test]
    fn overlong_children_saturate_instead_of_wrapping() {
        let spans = vec![span("root", None, 0, 10), span("a", Some(0), 0, 25)];
        let p = ProfileSection::from_spans(&spans);
        let root = p.rows.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(root.self_us, 0);
        assert_eq!(p.attributed_us, 25);
    }

    #[test]
    fn json_round_trips_with_and_without_alloc() {
        let mut p = ProfileSection::from_spans(&[span("root", None, 0, 10)]);
        assert_eq!(ProfileSection::from_json(&p.to_json()).unwrap(), p);
        p.alloc = Some(AllocSummary {
            allocs: 12,
            bytes: 4096,
            peak_bytes: 2048,
        });
        p.peak_rss_bytes = Some(1 << 20);
        assert_eq!(ProfileSection::from_json(&p.to_json()).unwrap(), p);
    }

    #[test]
    fn empty_run_has_full_coverage() {
        let p = ProfileSection::from_spans(&[]);
        assert_eq!(p.coverage(), 1.0);
        assert!(p.rows.is_empty());
    }
}
