//! Window-boundary behavior of the time-series quantiles.
//!
//! The per-window latency histograms are reset at every boundary, so
//! the estimator [`quantiles_from_buckets`] constantly re-runs on
//! freshly-reset state: all-zero windows (no samples at all) and
//! single-sample windows (one arrival right at a boundary) are the
//! steady diet, not edge cases. The deterministic tests pin those; the
//! proptests relate per-window quantiles to the run-level quantiles.
//!
//! On the bounding property: the *value-level* claim "the merged
//! quantile lies within [min, max] of the window quantiles" is false
//! in general — two 5-sample windows confined to one bucket each
//! estimate p90 at the bucket's top (rank ceil(4.5) = 5 of 5), while
//! the 10-sample merge interpolates rank 9 of 10 *below* the top — so
//! the proptest asserts the octave-granular version instead, which
//! does hold: the **bucket** holding the merged quantile's rank lies
//! within [min, max] of the buckets holding each window's rank. That
//! is exactly the estimator's documented one-octave resolution.

use proptest::prelude::*;
use qnet_obs::{quantiles_from_buckets, TimeSeries, TimeSeriesConfig, WindowHistogram};

fn series(window_slots: u64, capacity: usize) -> TimeSeries {
    TimeSeries::new(TimeSeriesConfig {
        window_slots,
        capacity,
    })
}

/// The bucket index holding rank `ceil(q·count)` — the octave the
/// estimator interpolates inside. `None` when empty.
fn rank_bucket(count: u64, sparse: &[(usize, u64)], q: f64) -> Option<usize> {
    if count == 0 {
        return None;
    }
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for &(i, n) in sparse {
        if seen + n >= rank {
            return Some(i);
        }
        seen += n;
    }
    sparse.last().map(|&(i, _)| i)
}

#[test]
fn freshly_reset_window_reports_all_zero_quantiles() {
    let mut ts = series(4, 16);
    ts.latency("admission", 900);
    ts.latency("admission", 7);
    // Windows 1 and 2 elapse without a single sample: the series key
    // stays registered, the histogram is freshly reset each time.
    ts.advance_to(12);
    let section = ts.finish();
    assert_eq!(section.windows.len(), 4);
    let loud = &section.windows[0].latencies["admission"];
    assert_eq!(loud.count(), 2);
    assert!(loud.quantiles().0 > 0.0);
    for w in &section.windows[1..] {
        let h = &w.latencies["admission"];
        assert_eq!(h.count(), 0, "window {} must be reset", w.index);
        assert_eq!(
            h.quantiles(),
            (0.0, 0.0, 0.0),
            "empty window {} quantiles",
            w.index
        );
        // And the estimator agrees when called directly on the reset
        // shape.
        assert_eq!(
            quantiles_from_buckets(h.count(), &h.sparse_buckets()),
            (0.0, 0.0, 0.0)
        );
    }
}

#[test]
fn single_sample_windows_straddling_a_boundary_stay_separate() {
    let mut ts = series(8, 16);
    // Last slot of window 0 and first slot of window 1: one sample
    // each, in different octaves.
    ts.advance_to(7);
    ts.latency("admission", 1); // bucket 1, top value 1
    ts.advance_to(8);
    ts.latency("admission", 100); // bucket 7 ([64,128)), top value 127
    let section = ts.finish();
    assert_eq!(section.windows.len(), 2);
    let w0 = &section.windows[0].latencies["admission"];
    let w1 = &section.windows[1].latencies["admission"];
    assert_eq!((w0.count(), w1.count()), (1, 1));
    // A single sample makes every quantile the same rank: the sample's
    // bucket-top estimate.
    assert_eq!(w0.quantiles(), (1.0, 1.0, 1.0));
    assert_eq!(w1.quantiles(), (127.0, 127.0, 127.0));
    // A single zero sample is exactly zero, not a bucket edge.
    let mut ts = series(8, 16);
    ts.latency("admission", 0);
    let section = ts.finish();
    assert_eq!(
        section.windows[0].latencies["admission"].quantiles(),
        (0.0, 0.0, 0.0)
    );
}

proptest! {
    /// Bucket-wise merging of the per-window histograms reconstructs
    /// the run-level histogram exactly — windowing loses no samples
    /// (when nothing is evicted) and the shared bucket scheme makes
    /// the union exact.
    #[test]
    fn windows_merge_back_to_the_run_level_histogram(
        samples in proptest::collection::vec((0u64..8, 0u64..100_000), 1..200),
    ) {
        let mut samples = samples;
        // The virtual clock is monotone; deliver in window order.
        samples.sort_by_key(|&(w, _)| w);
        let mut ts = series(1, 64);
        let mut reference = WindowHistogram::new();
        for &(w, v) in &samples {
            ts.advance_to(w);
            ts.latency("lat", v);
            reference.record(v);
        }
        let section = ts.finish();
        prop_assert_eq!(section.evicted, 0);
        prop_assert_eq!(section.merged_latency("lat"), reference);
    }

    /// Octave-granular bounding: for each summary quantile, the bucket
    /// the merged (run-level) rank falls in lies within [min, max] of
    /// the buckets the per-window ranks fall in. (See the module docs
    /// for why the value-level version of this claim is too strong.)
    #[test]
    fn merged_rank_bucket_is_bounded_by_window_rank_buckets(
        samples in proptest::collection::vec((0u64..6, 0u64..1_000_000), 1..200),
    ) {
        let mut samples = samples;
        samples.sort_by_key(|&(w, _)| w);
        let mut ts = series(1, 64);
        for &(w, v) in &samples {
            ts.advance_to(w);
            ts.latency("lat", v);
        }
        let section = ts.finish();
        let merged = section.merged_latency("lat");
        for q in [0.50, 0.90, 0.99] {
            let run_bucket = rank_bucket(merged.count(), &merged.sparse_buckets(), q)
                .expect("at least one sample");
            let window_buckets: Vec<usize> = section
                .windows
                .iter()
                .filter_map(|w| w.latencies.get("lat"))
                .filter(|h| h.count() > 0)
                .map(|h| rank_bucket(h.count(), &h.sparse_buckets(), q).unwrap())
                .collect();
            let lo = *window_buckets.iter().min().unwrap();
            let hi = *window_buckets.iter().max().unwrap();
            prop_assert!(
                (lo..=hi).contains(&run_bucket),
                "q={}: run-level rank bucket {} outside window range [{}, {}]",
                q, run_bucket, lo, hi
            );
        }
    }

    /// Per-window summary quantiles are always ordered and finite,
    /// whatever lands in the window.
    #[test]
    fn window_quantiles_are_ordered_and_finite(
        values in proptest::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let mut h = WindowHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let (p50, p90, p99) = h.quantiles();
        prop_assert!(p50.is_finite() && p90.is_finite() && p99.is_finite());
        prop_assert!(p50 <= p90 && p90 <= p99);
    }
}
