//! Span-tree causality under concurrency, plus the golden Chrome-trace
//! fixture.
//!
//! The first half hammers the thread-local span stack from many threads
//! and asserts the structural invariants the Chrome exporter and the
//! attribution layer build on: parents precede children, every parent
//! link stays on one thread, and nesting depths match what each thread
//! actually opened. The second half pins the `trace.json` on-disk
//! format (`tests/golden/trace.json`) and validates it against the
//! Chrome trace-event schema's required keys.
//!
//! Regenerate the golden after an intentional exporter change with
//! `UPDATE_GOLDEN=1 cargo test -p qnet-obs --test span_tree`.

use std::path::PathBuf;
use std::sync::Mutex;

use qnet_obs::{ObsLevel, RunReport, SpanSnapshot, Stamped, TraceEvent, SCHEMA_VERSION};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

const THREADS: usize = 8;
const REPEATS: usize = 200;

#[test]
fn concurrent_span_nesting_never_crosses_threads() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Full);
    qnet_obs::global().reset();
    qnet_obs::reset_spans();

    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for _ in 0..REPEATS {
                    let _outer = qnet_obs::span!("test.tree.outer");
                    {
                        let _mid = qnet_obs::span!("test.tree.mid");
                        let _leaf = qnet_obs::span!("test.tree.leaf");
                    }
                    let _sibling = qnet_obs::span!("test.tree.sibling");
                }
            });
        }
    })
    .expect("no worker panicked");

    let report = RunReport::capture("span-tree-concurrency");
    let spans = &report.spans;
    let expected = THREADS * REPEATS * 4;
    assert_eq!(spans.len(), expected, "no span lost or duplicated");

    let mut roots_per_thread: std::collections::HashMap<u64, usize> = Default::default();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            None => {
                assert_eq!(s.name, "test.tree.outer", "only outer spans are roots");
                *roots_per_thread.entry(s.thread).or_default() += 1;
            }
            Some(p) => {
                assert!(p < i, "parents precede children in the store");
                let parent = &spans[p];
                assert_eq!(
                    parent.thread, s.thread,
                    "span {i} ({}) links to a parent on another thread",
                    s.name
                );
                // The tree each thread built: mid and sibling under
                // outer, leaf under mid.
                let expected_parent = match s.name.as_str() {
                    "test.tree.mid" | "test.tree.sibling" => "test.tree.outer",
                    "test.tree.leaf" => "test.tree.mid",
                    other => panic!("unexpected nested span {other}"),
                };
                assert_eq!(parent.name, expected_parent, "span {i} mis-nested");
            }
        }
    }
    assert_eq!(
        roots_per_thread.len(),
        THREADS,
        "each worker got its own track"
    );
    for (thread, roots) in roots_per_thread {
        assert_eq!(roots, REPEATS, "thread {thread} lost a root span");
    }

    qnet_obs::set_level(ObsLevel::Counters);
    qnet_obs::reset_spans();
}

#[test]
fn concurrent_spans_export_to_balanced_chrome_tracks() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Full);
    qnet_obs::global().reset();
    qnet_obs::reset_spans();

    crossbeam::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|_| {
                for _ in 0..50 {
                    let _outer = qnet_obs::span!("test.track.outer");
                    let _inner = qnet_obs::span!("test.track.inner");
                }
            });
        }
    })
    .expect("no worker panicked");

    let report = RunReport::capture("span-tracks");
    let trace = qnet_obs::chrome_trace_value(&report, &[]);
    let events = trace.get("traceEvents").and_then(|e| e.as_array()).unwrap();
    // Per-tid B/E balance, never negative — regardless of how the OS
    // interleaved the workers.
    let mut depth: std::collections::HashMap<u64, i64> = Default::default();
    for ev in events {
        let Some(tid) = ev.get("tid").and_then(|t| t.as_u64()) else {
            panic!("event without tid: {ev}");
        };
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("B") => *depth.entry(tid).or_default() += 1,
            Some("E") => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E before B on tid {tid}");
            }
            _ => {}
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");

    qnet_obs::set_level(ObsLevel::Counters);
    qnet_obs::reset_spans();
}

#[test]
fn adopted_context_parents_worker_spans_under_the_submitter() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Full);
    qnet_obs::global().reset();
    qnet_obs::reset_spans();

    // The thread-pool handoff: the submitting thread captures its
    // innermost open span, each worker adopts it for the duration of a
    // task, and the worker's own spans graft under the submitter's —
    // one causal tree instead of per-worker roots.
    {
        let _batch = qnet_obs::span!("test.adopt.batch");
        let ctx = qnet_obs::span_context();
        crossbeam::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|_| {
                    let _adopted = qnet_obs::adopt_span_context(ctx);
                    let _task = qnet_obs::span!("test.adopt.task");
                    let _leaf = qnet_obs::span!("test.adopt.leaf");
                });
                scope.spawn(|_| {
                    // A worker that never adopts stays a root.
                    let _orphan = qnet_obs::span!("test.adopt.orphan");
                });
            }
        })
        .expect("no worker panicked");
        // After the scope, this thread's stack is intact: a sibling
        // still parents under the batch span.
        let _sibling = qnet_obs::span!("test.adopt.sibling");
    }

    let report = RunReport::capture("span-adoption");
    let spans = &report.spans;
    qnet_obs::set_level(ObsLevel::Counters);
    qnet_obs::reset_spans();

    let batch = spans
        .iter()
        .position(|s| s.name == "test.adopt.batch")
        .expect("batch span recorded");
    assert_eq!(spans[batch].parent, None);
    let mut tasks = 0;
    for s in spans.iter() {
        match s.name.as_str() {
            "test.adopt.task" => {
                tasks += 1;
                assert_eq!(
                    s.parent,
                    Some(batch),
                    "worker task must parent under the submitting span"
                );
                assert_ne!(
                    s.thread, spans[batch].thread,
                    "the adopted parent link crosses threads by design"
                );
            }
            "test.adopt.leaf" => {
                let p = s.parent.expect("leaf nests under its task");
                assert_eq!(spans[p].name, "test.adopt.task");
                assert_eq!(
                    spans[p].thread, s.thread,
                    "nesting within one worker stays on that worker"
                );
            }
            "test.adopt.orphan" => {
                assert_eq!(s.parent, None, "non-adopting workers stay roots");
            }
            "test.adopt.sibling" => {
                assert_eq!(
                    s.parent,
                    Some(batch),
                    "submitter's stack survives the workers' adoption"
                );
            }
            _ => {}
        }
    }
    assert_eq!(tasks, 3, "every adopted task span recorded");
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace.json")
}

/// A fixed report + flight-recorder pair covering every exporter
/// branch: nested spans, a second thread, an overlong child (clamped),
/// and two instant events.
fn fixture() -> (RunReport, Vec<Stamped>) {
    let report = RunReport {
        schema_version: SCHEMA_VERSION,
        run: "golden-trace".into(),
        level: "trace".into(),
        spans: vec![
            SpanSnapshot {
                name: "core.prim_based.solve".into(),
                parent: None,
                thread: 1,
                start_us: 100,
                duration_us: 900,
            },
            SpanSnapshot {
                name: "core.prim_based.round".into(),
                parent: Some(0),
                thread: 1,
                start_us: 120,
                duration_us: 300,
            },
            SpanSnapshot {
                // Ends 20µs after its parent — the exporter clamps it.
                name: "core.channel.finder_run".into(),
                parent: Some(0),
                thread: 1,
                start_us: 500,
                duration_us: 520,
            },
            SpanSnapshot {
                name: "exp.runner.mean_rates".into(),
                parent: None,
                thread: 2,
                start_us: 90,
                duration_us: 1500,
            },
        ],
        counters: vec![],
        histograms: vec![],
        profile: None,
        timeseries: None,
    };
    let events = vec![
        Stamped {
            seq: 0,
            ts_us: 130,
            thread: 1,
            event: TraceEvent::TreeStep {
                algo: "alg4",
                round: 1,
                source: 3,
                destination: 9,
                rate: 0.25,
                epoch: 4,
            },
        },
        Stamped {
            seq: 1,
            ts_us: 140,
            thread: 2,
            event: TraceEvent::BeamRound {
                round: 2,
                expanded: 12,
                kept: 5,
            },
        },
    ];
    (report, events)
}

fn render(report: &RunReport, events: &[Stamped]) -> String {
    let value = qnet_obs::chrome_trace_value(report, events);
    let mut text = serde_json::to_string_pretty(&value).expect("trace serializes");
    text.push('\n');
    text
}

#[test]
fn golden_trace_matches_the_exporter() {
    let _serial = serial();
    let (report, events) = fixture();
    let expected = render(&report, &events);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &expected).unwrap();
        return;
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        on_disk, expected,
        "trace.json format drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_trace_satisfies_the_trace_event_schema() {
    let _serial = serial();
    let on_disk = std::fs::read_to_string(golden_path()).expect("golden file present");
    let trace = serde_json::from_str(&on_disk).expect("golden trace is valid JSON");

    // Top level: the JSON-object form of the format — a traceEvents
    // array plus displayTimeUnit.
    let events = trace
        .get("traceEvents")
        .and_then(|e: &serde_json::Value| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert_eq!(
        trace.get("displayTimeUnit").and_then(|u| u.as_str()),
        Some("ms")
    );

    for ev in events {
        // Keys every duration/instant/metadata event must carry.
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
        assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
        assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some());
        assert!(ev.get("tid").and_then(|t| t.as_u64()).is_some());
        match ph {
            "B" | "E" | "i" => {
                assert!(ev.get("ts").and_then(|t| t.as_u64()).is_some(), "{ev}");
                if ph == "i" {
                    assert_eq!(
                        ev.get("s").and_then(|s| s.as_str()),
                        Some("t"),
                        "instants are thread-scoped"
                    );
                }
            }
            "M" => {
                assert!(
                    ev.get("args").and_then(|a| a.get("name")).is_some(),
                    "metadata events name their process/thread: {ev}"
                );
            }
            other => panic!("unexpected phase {other}"),
        }
    }

    // The fixture's overlong child must have been clamped inside its
    // parent: every E on tid 1 nests.
    let mut stack: Vec<u64> = Vec::new();
    for ev in events {
        if ev.get("tid").and_then(|t| t.as_u64()) != Some(1) {
            continue;
        }
        let ts = ev.get("ts").and_then(|t| t.as_u64());
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("B") => stack.push(ts.unwrap()),
            Some("E") => {
                let began = stack.pop().expect("balanced");
                assert!(ts.unwrap() >= began, "span ends before it begins");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "tid 1 track is balanced");
}
