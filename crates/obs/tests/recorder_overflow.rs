//! Overflow behavior of the flight recorder: the ring wraps at
//! capacity, the *oldest* events are the ones evicted, and the dropped
//! tally (and the `obs.trace.dropped` counter on the global path)
//! accounts for every eviction exactly.
//!
//! Lives in its own integration-test binary so the global level and
//! recorder it mutates are isolated from the unit tests' process.

use std::sync::Mutex;

use proptest::prelude::*;
use qnet_obs::{FlightRecorder, ObsLevel, TraceEvent};

/// Tests in this file share process-global obs state; run them one at
/// a time even under the default parallel harness.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn event(i: u64) -> TraceEvent {
    TraceEvent::Candidate {
        source: (i % 1000) as u32,
        destination: ((i + 1) % 1000) as u32,
        accepted: !i.is_multiple_of(3),
        reason: if !i.is_multiple_of(3) {
            "ok"
        } else {
            "disconnected"
        },
        cost: 1.0 / (i + 1) as f64,
        epoch: i,
    }
}

proptest! {
    /// For any capacity and event count: length saturates at capacity,
    /// exactly the newest `len` events survive in order, and
    /// `dropped == max(0, pushed - capacity)`.
    #[test]
    fn ring_wraps_and_counts_drops_exactly(
        capacity in 1usize..128,
        pushed in 0u64..512,
    ) {
        let rec = FlightRecorder::with_capacity(capacity);
        for i in 0..pushed {
            rec.record(event(i));
        }
        let snap = rec.snapshot();
        let expected_len = (pushed as usize).min(capacity);
        prop_assert_eq!(snap.len(), expected_len);
        prop_assert_eq!(rec.dropped(), pushed.saturating_sub(capacity as u64));
        // Oldest evicted: the survivors are the last `expected_len`
        // pushes, contiguous and in order.
        let first_surviving = pushed - expected_len as u64;
        for (offset, stamped) in snap.iter().enumerate() {
            let expected_seq = first_surviving + offset as u64;
            prop_assert_eq!(stamped.seq, expected_seq);
            prop_assert_eq!(stamped.event, event(expected_seq));
        }
    }

    /// Reset always restores an empty, zero-dropped, zero-sequence ring,
    /// whatever happened before.
    #[test]
    fn reset_is_total(capacity in 1usize..64, pushed in 0u64..256) {
        let rec = FlightRecorder::with_capacity(capacity);
        for i in 0..pushed {
            rec.record(event(i));
        }
        rec.reset();
        prop_assert!(rec.is_empty());
        prop_assert_eq!(rec.dropped(), 0);
        rec.record(event(7));
        prop_assert_eq!(rec.snapshot()[0].seq, 0);
    }
}

/// The global path mirrors evictions into the `obs.trace.dropped`
/// counter exactly.
#[test]
fn global_dropped_counter_matches_evictions() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Trace);
    qnet_obs::global().reset();
    qnet_obs::set_trace_capacity(16);

    const PUSHED: u64 = 100;
    for i in 0..PUSHED {
        qnet_obs::record_event(event(i));
    }
    let report = qnet_obs::RunReport::capture("overflow");
    assert_eq!(report.counter_total("obs.trace.dropped"), PUSHED - 16);
    assert_eq!(qnet_obs::recorder().dropped(), PUSHED - 16);
    assert_eq!(qnet_obs::trace_snapshot().len(), 16);

    // Back to defaults for any test that follows in this binary.
    qnet_obs::set_trace_capacity(qnet_obs::DEFAULT_TRACE_CAPACITY);
    qnet_obs::global().reset();
    qnet_obs::set_level(ObsLevel::Counters);
}

/// Concurrent recording never loses an event silently: every record
/// either survives in the ring or is tallied as dropped.
#[test]
fn concurrent_records_are_all_accounted_for() {
    let _serial = serial();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let rec = FlightRecorder::with_capacity(1024);
    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            let rec = &rec;
            scope.spawn(move |_| {
                for i in 0..PER_THREAD {
                    rec.record(event(t * PER_THREAD + i));
                }
            });
        }
    })
    .expect("no worker panicked");
    assert_eq!(rec.len() as u64 + rec.dropped(), THREADS * PER_THREAD);
    // Sequence stamps are unique and gapless across threads.
    let snap = rec.snapshot();
    for pair in snap.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "stamps stay ordered");
    }
}
