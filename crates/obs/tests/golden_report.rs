//! Golden-file coverage for the run-report JSON format.
//!
//! `tests/golden/report.json` is the checked-in serialization of a
//! fixed report. The tests pin the on-disk format (so accidental schema
//! drift fails loudly) and prove the full round trip: golden bytes →
//! `from_json` → `RunReport` → `to_json` → identical golden bytes.
//!
//! Regenerate after an intentional schema change with
//! `UPDATE_GOLDEN=1 cargo test -p qnet-obs --test golden_report`.

use std::path::PathBuf;
use std::sync::Mutex;

use qnet_obs::{
    CounterSnapshot, HistogramSnapshot, ObsLevel, RunReport, SpanSnapshot, SCHEMA_VERSION,
};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("report.json")
}

/// A fixed report exercising every field: nested and cross-thread
/// spans, a still-open span (duration 0), labeled and bare counters,
/// and a histogram with sparse buckets.
fn fixture() -> RunReport {
    RunReport {
        schema_version: SCHEMA_VERSION,
        run: "golden".into(),
        level: "full".into(),
        spans: vec![
            SpanSnapshot {
                name: "core.prim_based.solve".into(),
                parent: None,
                thread: 1,
                start_us: 10,
                duration_us: 950,
            },
            SpanSnapshot {
                name: "core.prim_based.round".into(),
                parent: Some(0),
                thread: 1,
                start_us: 12,
                duration_us: 430,
            },
            SpanSnapshot {
                name: "exp.runner.mean_rates".into(),
                parent: None,
                thread: 2,
                start_us: 15,
                duration_us: 0,
            },
        ],
        counters: vec![
            CounterSnapshot {
                key: "core.channel.rejected{reason=qubit_capacity}".into(),
                value: 41,
            },
            CounterSnapshot {
                key: "graph.dijkstra.calls".into(),
                value: 7,
            },
        ],
        histograms: vec![HistogramSnapshot {
            key: "sim.slot.duration_us".into(),
            count: 4,
            sum: 22,
            mean: 5.5,
            // From the buckets: rank 2 is 1/3 into bucket 3 ([4,8),
            // largest attainable value 7); ranks for p90/p99 land on
            // that value.
            p50: 4.0 + (1.0 / 3.0) * 3.0,
            p90: 7.0,
            p99: 7.0,
            buckets: vec![(2, 1), (3, 3)],
        }],
        // The v3 attribution section, derived from the spans above:
        // solve's self time is its 950µs minus the nested round's 430.
        profile: Some(qnet_obs::ProfileSection {
            rows: vec![
                qnet_obs::ProfileRow {
                    name: "core.prim_based.round".into(),
                    count: 1,
                    total_us: 430,
                    self_us: 430,
                },
                qnet_obs::ProfileRow {
                    name: "core.prim_based.solve".into(),
                    count: 1,
                    total_us: 950,
                    self_us: 520,
                },
                qnet_obs::ProfileRow {
                    name: "exp.runner.mean_rates".into(),
                    count: 1,
                    total_us: 0,
                    self_us: 0,
                },
            ],
            root_total_us: 950,
            attributed_us: 950,
            alloc: Some(qnet_obs::AllocSummary {
                allocs: 18,
                bytes: 8192,
                peak_bytes: 4096,
            }),
            peak_rss_bytes: Some(52_428_800),
        }),
        // The v4 streaming section: two 8-slot windows with a carried
        // gauge, a reset rate, and a per-window latency histogram.
        timeseries: Some({
            let mut ts = qnet_obs::TimeSeries::new(qnet_obs::TimeSeriesConfig {
                window_slots: 8,
                capacity: 16,
            });
            ts.gauge("active_sessions", 3.0);
            ts.rate_add("arrivals", 5);
            ts.latency("admission_searches", 6);
            ts.latency("admission_searches", 21);
            ts.advance_to(8);
            ts.rate_add("arrivals", 2);
            ts.latency("admission_searches", 9);
            ts.finish()
        }),
    }
}

fn render(report: &RunReport) -> String {
    let mut text = serde_json::to_string_pretty(&report.to_json()).expect("report serializes");
    text.push('\n');
    text
}

#[test]
fn golden_file_matches_serialized_fixture() {
    let _serial = serial();
    let path = golden_path();
    let expected = render(&fixture());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &expected).unwrap();
        return;
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        on_disk, expected,
        "run-report JSON schema drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_round_trips_through_the_typed_report() {
    let _serial = serial();
    let on_disk = std::fs::read_to_string(golden_path()).expect("golden file present");
    let value = serde_json::from_str(&on_disk).expect("golden file is valid JSON");
    let report = RunReport::from_json(&value).expect("golden file matches the report shape");

    let fix = fixture();
    assert_eq!(report.run, fix.run);
    assert_eq!(report.level, fix.level);
    assert_eq!(report.spans, fix.spans);
    assert_eq!(report.counters, fix.counters);
    assert_eq!(report.histograms, fix.histograms);
    assert_eq!(report.profile, fix.profile);
    assert_eq!(report.timeseries, fix.timeseries);
    // The fixture's hand-written attribution rows must agree with the
    // real derivation from its spans.
    let derived = qnet_obs::ProfileSection::from_spans(&fix.spans);
    let fix_profile = fix.profile.unwrap();
    assert_eq!(derived.rows, fix_profile.rows);
    assert_eq!(derived.root_total_us, fix_profile.root_total_us);
    assert_eq!(derived.attributed_us, fix_profile.attributed_us);
    assert_eq!(render(&report), on_disk, "to_json(from_json(x)) == x");
}

#[test]
fn version_one_golden_file_still_parses() {
    // `report_v1.json` is the PR-1 on-disk format, frozen: no
    // `schema_version`, histograms without quantiles. It must keep
    // loading (as version 1, quantiles recomputed) so `obs-diff` can
    // compare old baselines against new reports.
    let _serial = serial();
    let path = golden_path().with_file_name("report_v1.json");
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing legacy golden {}: {e}", path.display()));
    let value = serde_json::from_str(&on_disk).expect("legacy golden is valid JSON");
    let report = RunReport::from_json(&value).expect("legacy shape accepted");
    assert_eq!(report.schema_version, 1);

    let fix = fixture();
    assert_eq!(report.run, fix.run);
    assert_eq!(report.spans, fix.spans);
    assert_eq!(report.counters, fix.counters);
    assert_eq!(
        report.histograms, fix.histograms,
        "migration recomputes the quantiles the v1 file lacks"
    );
    assert_eq!(report.profile, None, "pre-3 reports have no profile");
    assert_eq!(report.timeseries, None, "pre-4 reports have no timeseries");
}

#[test]
fn version_two_golden_file_still_parses() {
    // `report_v2.json` is the PR-3 on-disk format, frozen: explicit
    // schema_version 2 with stored quantiles, no `profile` key. It must
    // keep loading *as written* — the stored quantiles are trusted, not
    // recomputed, so old baselines diff cleanly.
    let _serial = serial();
    let path = golden_path().with_file_name("report_v2.json");
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing legacy golden {}: {e}", path.display()));
    let value = serde_json::from_str(&on_disk).expect("legacy golden is valid JSON");
    let report = RunReport::from_json(&value).expect("legacy shape accepted");
    assert_eq!(report.schema_version, 2);
    let fix = fixture();
    assert_eq!(report.run, fix.run);
    assert_eq!(report.spans, fix.spans);
    assert_eq!(report.counters, fix.counters);
    assert_eq!(report.profile, None, "v2 reports have no profile");
    let h = &report.histograms[0];
    assert_eq!(
        (h.p50, h.p90, h.p99),
        (4.0 + 4.0 / 3.0, 8.0, 8.0),
        "v2 quantiles are read back verbatim (old upper-edge estimates)"
    );
    // Re-serialization upgrades to the current version and stays
    // loadable.
    let upgraded = report.to_json();
    assert_eq!(
        upgraded.get("schema_version").and_then(|v| v.as_u64()),
        Some(SCHEMA_VERSION as u64)
    );
    assert!(RunReport::from_json(&upgraded).is_some());
}

#[test]
fn version_three_golden_file_still_parses() {
    // `report_v3.json` is the PR-6 on-disk format, frozen: explicit
    // schema_version 3 with a `profile` section, no `timeseries` key.
    // It must keep loading as version 3 — profile intact, no
    // timeseries — so pre-streaming baselines diff cleanly, and
    // `obs-diff` can tell the caller a migration happened (the parsed
    // schema_version stays 3).
    let _serial = serial();
    let path = golden_path().with_file_name("report_v3.json");
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing legacy golden {}: {e}", path.display()));
    let value = serde_json::from_str(&on_disk).expect("legacy golden is valid JSON");
    let report = RunReport::from_json(&value).expect("legacy shape accepted");
    assert_eq!(report.schema_version, 3);
    let fix = fixture();
    assert_eq!(report.run, fix.run);
    assert_eq!(report.spans, fix.spans);
    assert_eq!(report.counters, fix.counters);
    assert_eq!(
        report.profile, fix.profile,
        "the v3 profile section survives migration untouched"
    );
    assert_eq!(report.timeseries, None, "v3 reports have no timeseries");
    // Re-serialization upgrades to v4 (with an explicit null
    // timeseries) and stays loadable.
    let upgraded = report.to_json();
    assert_eq!(
        upgraded.get("schema_version").and_then(|v| v.as_u64()),
        Some(SCHEMA_VERSION as u64)
    );
    assert!(upgraded
        .get("timeseries")
        .is_some_and(|t| matches!(t, serde_json::Value::Null)));
    assert!(RunReport::from_json(&upgraded).is_some());
}

#[test]
fn live_capture_preserves_span_nesting_and_order() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Full);
    qnet_obs::global().reset();
    qnet_obs::reset_spans();

    {
        let _outer = qnet_obs::span!("test.golden.outer");
        {
            let _mid = qnet_obs::span!("test.golden.mid");
            let _inner = qnet_obs::span!("test.golden.inner");
        }
        let _sibling = qnet_obs::span!("test.golden.sibling");
    }

    let report = RunReport::capture("live");
    let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "test.golden.outer",
            "test.golden.mid",
            "test.golden.inner",
            "test.golden.sibling"
        ],
        "spans appear in open order, parents before children"
    );
    assert_eq!(report.spans[0].parent, None);
    assert_eq!(report.spans[1].parent, Some(0));
    assert_eq!(report.spans[2].parent, Some(1));
    assert_eq!(
        report.spans[3].parent,
        Some(0),
        "sibling re-attaches to outer"
    );

    // And the live capture survives its own JSON round trip.
    let value = serde_json::from_str(&render(&report)).expect("live report parses");
    let back = RunReport::from_json(&value).expect("live report shape matches");
    assert_eq!(back.spans, report.spans);

    qnet_obs::set_level(ObsLevel::Counters);
    qnet_obs::reset_spans();
}
