//! Concurrency guarantees: counters and histograms accept increments
//! from many threads without losing a single event.
//!
//! Lives in its own integration-test binary so the global registry and
//! level it mutates are isolated from the unit tests' process.

use std::sync::Mutex;

use qnet_obs::{global, MetricKey, ObsLevel};

/// Tests in this file share process-global obs state; run them one at
/// a time even under the default parallel harness.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

const THREADS: usize = 8;
const INCREMENTS: u64 = 25_000;

#[test]
fn concurrent_counter_increments_are_exact() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Counters);
    global().reset();

    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for _ in 0..INCREMENTS {
                    qnet_obs::counter!("test.concurrency.hits");
                }
            });
        }
    })
    .expect("no worker panicked");

    let report = qnet_obs::RunReport::capture("concurrency");
    assert_eq!(
        report.counter_total("test.concurrency.hits"),
        THREADS as u64 * INCREMENTS,
        "every increment from every thread must be observed exactly once"
    );
}

#[test]
fn concurrent_labeled_counters_stay_separate() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Counters);
    global().reset();

    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move |_| {
                for _ in 0..INCREMENTS {
                    if t % 2 == 0 {
                        qnet_obs::counter!("test.concurrency.rejected", reason = "even");
                    } else {
                        qnet_obs::counter!("test.concurrency.rejected", reason = "odd");
                    }
                }
            });
        }
    })
    .expect("no worker panicked");

    let per_label = (THREADS as u64 / 2) * INCREMENTS;
    let even = global()
        .counter(MetricKey {
            name: "test.concurrency.rejected",
            label: Some(("reason", "even")),
        })
        .get();
    let odd = global()
        .counter(MetricKey {
            name: "test.concurrency.rejected",
            label: Some(("reason", "odd")),
        })
        .get();
    assert_eq!(even, per_label);
    assert_eq!(odd, per_label);
    let report = qnet_obs::RunReport::capture("concurrency-labels");
    assert_eq!(
        report.counter_total("test.concurrency.rejected"),
        THREADS as u64 * INCREMENTS,
        "totals across labels must merge without loss"
    );
}

#[test]
fn concurrent_histogram_records_are_exact() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Counters);
    global().reset();

    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for v in 0..INCREMENTS {
                    qnet_obs::histogram!("test.concurrency.latency_us", v);
                }
            });
        }
    })
    .expect("no worker panicked");

    let h = global().histogram(MetricKey {
        name: "test.concurrency.latency_us",
        label: None,
    });
    let n = THREADS as u64 * INCREMENTS;
    assert_eq!(h.count(), n);
    // Each thread records 0..INCREMENTS, summing to I*(I-1)/2.
    let per_thread_sum = INCREMENTS * (INCREMENTS - 1) / 2;
    assert_eq!(h.sum(), THREADS as u64 * per_thread_sum);
}

#[test]
fn off_level_records_nothing() {
    let _serial = serial();
    qnet_obs::set_level(ObsLevel::Off);
    global().reset();

    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for _ in 0..100 {
                    qnet_obs::counter!("test.concurrency.dark");
                    qnet_obs::histogram!("test.concurrency.dark_us", 1);
                }
            });
        }
    })
    .expect("no worker panicked");

    let report = qnet_obs::RunReport::capture("off");
    assert_eq!(report.counter_total("test.concurrency.dark"), 0);
    assert!(report.histograms.is_empty());
    qnet_obs::set_level(ObsLevel::Counters);
}
