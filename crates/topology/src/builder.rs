//! Shared machinery for the topology generators: node placement, exact-size
//! weighted edge sampling, and connectivity repair.

use qnet_graph::connectivity::{bridges, connected_components};
use qnet_graph::{Graph, NodeId};
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::point::Point;
use crate::spec::SpatialGraph;

/// Places `n` nodes uniformly at random in the square `[0, area]²`.
pub fn place_nodes<R: Rng>(n: usize, area: f64, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..=area), rng.random_range(0.0..=area)))
        .collect()
}

/// Samples exactly `m` distinct node pairs without replacement, where pair
/// `(i, j)` is drawn with probability proportional to `weights[k]` (`k` in
/// the same order as `pairs`). Zero-weight pairs are never selected unless
/// the positive-weight pool is exhausted.
///
/// # Panics
///
/// Panics if `m > pairs.len()` or the slices disagree in length.
pub fn sample_weighted_pairs<R: Rng>(
    pairs: &[(usize, usize)],
    weights: &[f64],
    m: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    assert_eq!(pairs.len(), weights.len(), "pairs/weights length mismatch");
    assert!(
        m <= pairs.len(),
        "cannot sample {m} edges from {} candidate pairs",
        pairs.len()
    );
    let mut remaining: Vec<usize> = (0..pairs.len()).collect();
    let mut out = Vec::with_capacity(m);
    while out.len() < m {
        let total: f64 = remaining.iter().map(|&k| weights[k]).sum();
        let picked_pos = if total > 0.0 {
            let mut target = rng.random_range(0.0..total);
            let mut pos = remaining.len() - 1; // fallback for fp round-off
            for (idx, &k) in remaining.iter().enumerate() {
                target -= weights[k];
                if target < 0.0 {
                    pos = idx;
                    break;
                }
            }
            pos
        } else {
            // All remaining weights are zero: fall back to uniform.
            rng.random_range(0..remaining.len())
        };
        let k = remaining.swap_remove(picked_pos);
        out.push(pairs[k]);
    }
    out
}

/// Builds a [`SpatialGraph`] from node positions and an edge list of node
/// index pairs; edge payloads are Euclidean lengths.
pub fn assemble(positions: &[Point], edges: &[(usize, usize)]) -> SpatialGraph {
    let mut g: SpatialGraph = Graph::with_capacity(positions.len(), edges.len());
    for &p in positions {
        g.add_node(p);
    }
    for &(a, b) in edges {
        let length = positions[a].distance(positions[b]);
        g.add_edge(NodeId::new(a), NodeId::new(b), length);
    }
    g
}

/// Repairs connectivity while preserving the edge count.
///
/// While the graph is disconnected: add the shortest absent edge joining
/// two different components, then remove a random non-bridge edge (which
/// exists whenever we just closed a gap in a graph with a cycle; if the
/// graph is a forest, the added edge is kept and the count grows by one —
/// with the paper's default of `D = 6 ≥ 2` this never happens in practice).
pub fn ensure_connected<R: Rng>(g: SpatialGraph, rng: &mut R) -> SpatialGraph {
    let mut g = g;
    loop {
        let (labels, comps) = connected_components(&g);
        if comps <= 1 {
            return g;
        }
        // Find the shortest cross-component pair.
        let mut best: Option<(f64, usize, usize)> = None;
        for a in 0..g.node_count() {
            for b in (a + 1)..g.node_count() {
                if labels[a] != labels[b] {
                    let d = g.node(NodeId::new(a)).distance(*g.node(NodeId::new(b)));
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, a, b));
                    }
                }
            }
        }
        let (_, a, b) = best.expect("disconnected graph has a cross pair");

        // Remove one random non-bridge edge to keep |E| constant, but never
        // one we cannot afford (a forest keeps all edges).
        let bridge_set: std::collections::HashSet<_> = bridges(&g).into_iter().collect();
        let removable: Vec<_> = g.edge_ids().filter(|e| !bridge_set.contains(e)).collect();
        let to_remove = removable.choose(rng).copied();

        let mut next: SpatialGraph = Graph::with_capacity(g.node_count(), g.edge_count() + 1);
        for n in g.node_ids() {
            next.add_node(*g.node(n));
        }
        for e in g.edge_refs() {
            if Some(e.id) != to_remove {
                next.add_edge(e.a, e.b, *e.payload);
            }
        }
        let (na, nb) = (NodeId::new(a), NodeId::new(b));
        let length = next.node(na).distance(*next.node(nb));
        next.add_edge(na, nb, length);
        g = next;
    }
}

/// All unordered node pairs `(i, j)`, `i < j`, for `n` nodes.
pub fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn place_nodes_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = place_nodes(100, 10_000.0, &mut rng);
        assert_eq!(pts.len(), 100);
        assert!(pts
            .iter()
            .all(|p| (0.0..=10_000.0).contains(&p.x) && (0.0..=10_000.0).contains(&p.y)));
    }

    #[test]
    fn weighted_sampling_exact_count_and_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = all_pairs(10);
        let weights = vec![1.0; pairs.len()];
        let picked = sample_weighted_pairs(&pairs, &weights, 20, &mut rng);
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "no duplicate pairs");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = vec![(0, 1), (0, 2), (1, 2)];
        let weights = vec![1000.0, 0.0001, 0.0001];
        let mut hits = 0;
        for _ in 0..100 {
            let picked = sample_weighted_pairs(&pairs, &weights, 1, &mut rng);
            if picked[0] == (0, 1) {
                hits += 1;
            }
        }
        assert!(hits > 95, "heavy pair picked {hits}/100 times");
    }

    #[test]
    fn weighted_sampling_zero_weights_fall_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = all_pairs(5);
        let weights = vec![0.0; pairs.len()];
        let picked = sample_weighted_pairs(&pairs, &weights, pairs.len(), &mut rng);
        assert_eq!(picked.len(), pairs.len());
    }

    #[test]
    fn assemble_sets_lengths() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let g = assemble(&pts, &[(0, 1)]);
        let e = g.edge_ids().next().unwrap();
        assert_eq!(*g.edge(e).payload, 5.0);
    }

    #[test]
    fn ensure_connected_repairs_and_preserves_edge_count() {
        let mut rng = StdRng::seed_from_u64(5);
        // Two separate triangles.
        let pts: Vec<Point> = (0..6)
            .map(|i| Point::new(i as f64 * 100.0, if i < 3 { 0.0 } else { 5000.0 }))
            .collect();
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let g = assemble(&pts, &edges);
        assert!(!is_connected(&g));
        let repaired = ensure_connected(g, &mut rng);
        assert!(is_connected(&repaired));
        assert_eq!(repaired.edge_count(), 6);
    }

    #[test]
    fn ensure_connected_noop_when_connected() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let g = assemble(&pts, &[(0, 1)]);
        let repaired = ensure_connected(g, &mut rng);
        assert_eq!(repaired.edge_count(), 1);
    }

    #[test]
    fn all_pairs_count() {
        assert_eq!(all_pairs(5).len(), 10);
        assert!(all_pairs(1).is_empty());
    }
}
