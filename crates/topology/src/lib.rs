//! Random quantum-network topology generation.
//!
//! The paper's simulation setup (§V-A) places quantum switches and users
//! uniformly at random in a 10 000 × 10 000 unit area (1 unit ≈ 1 km) and
//! wires them with one of three generators, with the total edge count fixed
//! by a target average degree `D`:
//!
//! * **Waxman** ([`waxman`]) — geometric random graph where closer pairs
//!   are exponentially more likely to be connected (Waxman 1988).
//! * **Watts–Strogatz** ([`watts_strogatz`]) — small-world ring lattice
//!   with rewiring (Watts & Strogatz 1998), laid over the spatial
//!   placement by connecting angular neighbors.
//! * **Volchenkov** ([`volchenkov`]) — power-law degree distribution
//!   (Volchenkov & Blanchard 2002), realized as a Chung–Lu style weighted
//!   edge sampler with exact edge count.
//!
//! All generators return a [`SpatialGraph`] — a [`qnet_graph::Graph`] whose
//! node payloads are [`Point`]s and whose edge payloads are fiber lengths —
//! and guarantee connectivity via a repair step that preserves the edge
//! count ([`builder::ensure_connected`]).
//!
//! # Example
//!
//! ```
//! use qnet_topology::{TopologySpec, TopologyKind};
//!
//! let spec = TopologySpec {
//!     kind: TopologyKind::Waxman,
//!     nodes: 60,
//!     avg_degree: 6.0,
//!     area: 10_000.0,
//! };
//! let g = spec.generate(7);
//! assert_eq!(g.node_count(), 60);
//! assert_eq!(g.edge_count(), 180); // 60 * 6 / 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod grid;
pub mod point;
pub mod reference;
pub mod spec;
pub mod volchenkov;
pub mod watts_strogatz;
pub mod waxman;

pub use point::Point;
pub use spec::{SpatialGraph, TopologyKind, TopologySpec};
