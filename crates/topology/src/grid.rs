//! Regular lattice topologies.
//!
//! The fidelity-aware routing line of work the paper cites (Li et al.
//! \[15\]) evaluates on 2-D lattices; a regular grid is also the standard
//! worst case for the "average degree" knob (every interior node has
//! degree 4, no shortcuts). This module builds `rows × cols` grids with
//! uniform spacing — deterministic, no RNG — plus an optional diagonal
//! variant.

use qnet_graph::{Graph, NodeId};

use crate::point::Point;
use crate::spec::SpatialGraph;

/// Builds a `rows × cols` lattice with `spacing` length units between
/// horizontal/vertical neighbors. Node `(r, c)` has index `r * cols + c`.
///
/// # Panics
///
/// Panics when `rows == 0`, `cols == 0`, or `spacing <= 0`.
///
/// # Example
///
/// ```
/// use qnet_topology::grid::grid;
/// let g = grid(3, 4, 1000.0);
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
/// ```
pub fn grid(rows: usize, cols: usize, spacing: f64) -> SpatialGraph {
    assert!(rows > 0 && cols > 0, "grid needs positive dimensions");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut g: SpatialGraph = Graph::with_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            g.add_node(Point::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), spacing);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), spacing);
            }
        }
    }
    g
}

/// Like [`grid`], additionally wiring both diagonals of every cell
/// (length `spacing·√2`), giving interior nodes degree 8.
pub fn grid_with_diagonals(rows: usize, cols: usize, spacing: f64) -> SpatialGraph {
    let mut g = grid(rows, cols, spacing);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    let diag = spacing * std::f64::consts::SQRT_2;
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            g.add_edge(id(r, c), id(r + 1, c + 1), diag);
            g.add_edge(id(r, c + 1), id(r + 1, c), diag);
        }
    }
    g
}

/// The node id at grid coordinates `(row, col)` for a grid of `cols`
/// columns.
pub fn grid_node(row: usize, col: usize, cols: usize) -> NodeId {
    NodeId::new(row * cols + col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::is_connected;
    use qnet_graph::paths::bfs_path;

    #[test]
    fn counts_and_connectivity() {
        let g = grid(5, 7, 500.0);
        assert_eq!(g.node_count(), 35);
        assert_eq!(g.edge_count(), 5 * 6 + 4 * 7);
        assert!(is_connected(&g));
    }

    #[test]
    fn interior_degree_is_four_corners_two() {
        let g = grid(4, 4, 100.0);
        assert_eq!(g.degree(grid_node(0, 0, 4)), 2);
        assert_eq!(g.degree(grid_node(1, 1, 4)), 4);
        assert_eq!(g.degree(grid_node(0, 1, 4)), 3);
    }

    #[test]
    fn manhattan_distances_in_hops() {
        let g = grid(6, 6, 100.0);
        let p = bfs_path(&g, grid_node(0, 0, 6), grid_node(5, 5, 6)).unwrap();
        assert_eq!(p.len(), 10, "hop distance = Manhattan distance");
    }

    #[test]
    fn edge_lengths_match_spacing() {
        let g = grid(3, 3, 250.0);
        for e in g.edge_refs() {
            assert!((e.payload - 250.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diagonals_add_shortcuts() {
        let plain = grid(4, 4, 100.0);
        let diag = grid_with_diagonals(4, 4, 100.0);
        assert_eq!(diag.edge_count(), plain.edge_count() + 2 * 9);
        let p = bfs_path(&diag, grid_node(0, 0, 4), grid_node(3, 3, 4)).unwrap();
        assert_eq!(p.len(), 3, "diagonals cut hop distance");
        assert_eq!(diag.degree(grid_node(1, 1, 4)), 8);
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid(1, 5, 100.0);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(qnet_graph::connectivity::bridges(&g).len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_dimension_rejected() {
        grid(0, 3, 100.0);
    }
}
