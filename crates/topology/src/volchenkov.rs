//! Power-law degree-distribution generator (Volchenkov & Blanchard,
//! Physica A 2002).
//!
//! Volchenkov and Blanchard describe an algorithm producing random graphs
//! whose degree distribution follows a power law `P(k) ∝ k^(−γ)`. We
//! realize the same degree statistics with a Chung–Lu style sampler that
//! fits the paper's exact-edge-count regime: each node `i` receives an
//! expected-degree weight `w_i ∝ (i+1)^(−1/(γ−1))` (the standard
//! transformation producing a power-law tail with exponent γ), and exactly
//! `m` distinct pairs are drawn with probability proportional to
//! `w_i · w_j`. Hub nodes therefore emerge with high degree while most
//! nodes stay low-degree.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::{all_pairs, assemble, ensure_connected, place_nodes, sample_weighted_pairs};
use crate::spec::SpatialGraph;

/// Power-law generator parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VolchenkovParams {
    /// Target power-law exponent γ (> 2 for a finite mean). Classic
    /// Internet-like value 2.5.
    pub gamma: f64,
}

impl Default for VolchenkovParams {
    fn default() -> Self {
        VolchenkovParams { gamma: 2.5 }
    }
}

/// Generates a connected power-law graph with `n` spatially placed nodes
/// and exactly `⌊avg_degree · n / 2⌋` edges.
///
/// # Panics
///
/// Panics if `n < 2` or `gamma <= 2`.
pub fn volchenkov<R: Rng>(
    n: usize,
    avg_degree: f64,
    area: f64,
    params: VolchenkovParams,
    rng: &mut R,
) -> SpatialGraph {
    assert!(n >= 2, "need at least two nodes, got {n}");
    assert!(
        params.gamma > 2.0,
        "gamma must exceed 2 for a finite-mean power law, got {}",
        params.gamma
    );
    let m = ((avg_degree * n as f64) / 2.0).floor() as usize;
    let positions = place_nodes(n, area, rng);

    // Expected-degree weights with a power-law tail; shuffle the rank→node
    // assignment so hubs land at random positions, not at low node ids.
    let exponent = -1.0 / (params.gamma - 1.0);
    let mut ranks: Vec<usize> = (0..n).collect();
    ranks.shuffle(rng);
    let mut node_weight = vec![0.0f64; n];
    for (rank, &node) in ranks.iter().enumerate() {
        node_weight[node] = ((rank + 1) as f64).powf(exponent);
    }

    let pairs = all_pairs(n);
    let weights: Vec<f64> = pairs
        .iter()
        .map(|&(i, j)| node_weight[i] * node_weight[j])
        .collect();
    let edges = sample_weighted_pairs(&pairs, &weights, m, rng);
    let g = assemble(&positions, &edges);
    ensure_connected(g, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count_and_connected() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = volchenkov(60, 6.0, 10_000.0, VolchenkovParams::default(), &mut rng);
        assert_eq!(g.node_count(), 60);
        assert_eq!(g.edge_count(), 180);
        assert!(is_connected(&g));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        // Aggregate over several graphs: the max degree should far exceed
        // the average (hubs), and the median should sit below the mean.
        let mut max_deg = 0usize;
        let mut degrees: Vec<usize> = Vec::new();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = volchenkov(80, 6.0, 10_000.0, VolchenkovParams::default(), &mut rng);
            for v in g.node_ids() {
                let d = g.degree(v);
                degrees.push(d);
                max_deg = max_deg.max(d);
            }
        }
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let mean: f64 = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            max_deg as f64 > 3.0 * mean,
            "no hub: max {max_deg} vs mean {mean}"
        );
        assert!(
            (median as f64) < mean,
            "median {median} not below mean {mean}: not right-skewed"
        );
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 2")]
    fn shallow_gamma_rejected() {
        let mut rng = StdRng::seed_from_u64(31);
        volchenkov(10, 4.0, 100.0, VolchenkovParams { gamma: 1.5 }, &mut rng);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let p = VolchenkovParams::default();
        let g1 = volchenkov(40, 5.0, 1000.0, p, &mut StdRng::seed_from_u64(9));
        let g2 = volchenkov(40, 5.0, 1000.0, p, &mut StdRng::seed_from_u64(9));
        let e1: Vec<_> = g1.edge_refs().map(|e| (e.a, e.b)).collect();
        let e2: Vec<_> = g2.edge_refs().map(|e| (e.a, e.b)).collect();
        assert_eq!(e1, e2);
    }
}
