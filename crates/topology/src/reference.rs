//! Reference real-world topologies.
//!
//! The paper evaluates on synthetic random graphs; real deployments run
//! over historical backbone shapes. This module ships an approximate
//! **NSFNET T1** backbone (14 nodes, 21 links) with planar coordinates
//! derived from the member cities' geography (1 unit ≈ 1 km, equirect-
//! angular projection) — a standard reference instance in optical- and
//! quantum-network papers, useful for examples and regression tests that
//! want a fixed, meaningful topology instead of a random one.

use qnet_graph::{Graph, NodeId};

use crate::point::Point;
use crate::spec::SpatialGraph;

/// One named site of a reference topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Site {
    /// Human-readable city name.
    pub name: &'static str,
    /// Planar position (km).
    pub position: Point,
}

/// (latitude, longitude) → planar km, equirectangular around the US.
const fn km(lat: f64, lon: f64) -> Point {
    // x: degrees east of 125°W at ~87 km/deg (cos 38° · 111 km);
    // y: degrees north of 25°N at 111 km/deg.
    Point::new((lon + 125.0) * 87.0, (lat - 25.0) * 111.0)
}

/// The 14 NSFNET sites with approximate coordinates.
pub const NSFNET_SITES: [Site; 14] = [
    Site {
        name: "Seattle",
        position: km(47.6, -122.3),
    },
    Site {
        name: "Palo Alto",
        position: km(37.4, -122.1),
    },
    Site {
        name: "San Diego",
        position: km(32.7, -117.2),
    },
    Site {
        name: "Salt Lake City",
        position: km(40.8, -111.9),
    },
    Site {
        name: "Boulder",
        position: km(40.0, -105.3),
    },
    Site {
        name: "Lincoln",
        position: km(40.8, -96.7),
    },
    Site {
        name: "Champaign",
        position: km(40.1, -88.2),
    },
    Site {
        name: "Houston",
        position: km(29.8, -95.4),
    },
    Site {
        name: "Ann Arbor",
        position: km(42.3, -83.7),
    },
    Site {
        name: "Pittsburgh",
        position: km(40.4, -80.0),
    },
    Site {
        name: "Ithaca",
        position: km(42.4, -76.5),
    },
    Site {
        name: "College Park",
        position: km(39.0, -76.9),
    },
    Site {
        name: "Princeton",
        position: km(40.4, -74.7),
    },
    Site {
        name: "Atlanta",
        position: km(33.7, -84.4),
    },
];

/// The 21 NSFNET T1 links (site indices into [`NSFNET_SITES`]).
pub const NSFNET_LINKS: [(usize, usize); 21] = [
    (0, 1),
    (0, 2),
    (0, 7),
    (1, 2),
    (1, 3),
    (2, 5),
    (3, 4),
    (3, 10),
    (4, 5),
    (4, 6),
    (5, 9),
    (5, 13),
    (6, 7),
    (6, 9),
    (7, 8),
    (8, 9),
    (8, 11),
    (8, 12),
    (10, 11),
    (10, 13),
    (11, 12),
];

/// Builds the NSFNET backbone as a [`SpatialGraph`]: node payloads are
/// positions, edge payloads are great-circle-ish planar lengths in km.
///
/// # Example
///
/// ```
/// use qnet_topology::reference::nsfnet;
/// let g = nsfnet();
/// assert_eq!(g.node_count(), 14);
/// assert_eq!(g.edge_count(), 21);
/// ```
pub fn nsfnet() -> SpatialGraph {
    let mut g: SpatialGraph = Graph::with_capacity(NSFNET_SITES.len(), NSFNET_LINKS.len());
    for site in NSFNET_SITES {
        g.add_node(site.position);
    }
    for (a, b) in NSFNET_LINKS {
        let length = NSFNET_SITES[a].position.distance(NSFNET_SITES[b].position);
        g.add_edge(NodeId::new(a), NodeId::new(b), length);
    }
    g
}

/// Name of NSFNET site `i` (panics when out of range).
pub fn nsfnet_name(node: NodeId) -> &'static str {
    NSFNET_SITES[node.index()].name
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::{bridges, is_connected};

    #[test]
    fn shape_is_14_nodes_21_links() {
        let g = nsfnet();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 21);
        assert!(is_connected(&g));
        assert!((g.average_degree() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_lengths_are_plausible_km() {
        let g = nsfnet();
        for e in g.edge_refs() {
            let len = *e.payload;
            assert!(
                (100.0..5000.0).contains(&len),
                "{} – {}: {len} km is not plausible",
                nsfnet_name(e.a),
                nsfnet_name(e.b)
            );
        }
        // Seattle–Palo Alto ≈ 1130 km (planar approximation tolerant).
        let e = g
            .find_edge(NodeId::new(0), NodeId::new(1))
            .expect("Seattle–Palo Alto link");
        let len = *g.edge(e).payload;
        assert!((900.0..1400.0).contains(&len), "got {len}");
    }

    #[test]
    fn backbone_is_two_connected() {
        // The real NSFNET was designed without single points of failure.
        assert!(bridges(&nsfnet()).is_empty());
    }

    #[test]
    fn names_resolve() {
        assert_eq!(nsfnet_name(NodeId::new(0)), "Seattle");
        assert_eq!(nsfnet_name(NodeId::new(13)), "Atlanta");
    }
}
