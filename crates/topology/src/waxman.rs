//! Waxman random graph generator (Waxman, JSAC 1988).
//!
//! Pair `(u, v)` is connected with probability proportional to
//! `β · exp(−d(u, v) / (α_w · L))`, where `L` is the maximum possible
//! distance in the area. The paper fixes the *total* edge count through the
//! average degree `D` ("We determine the total number of edges based on an
//! average degree D of nodes"), so we sample exactly `⌊D·n/2⌋` distinct
//! pairs weighted by the Waxman kernel instead of tossing independent
//! coins, and then repair connectivity preserving the count.

use rand::Rng;

use crate::builder::{all_pairs, assemble, ensure_connected, place_nodes, sample_weighted_pairs};
use crate::point::Point;
use crate::spec::SpatialGraph;

/// Waxman kernel parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaxmanParams {
    /// Locality parameter `α_w ∈ (0, 1]`: smaller values concentrate edges
    /// on short pairs. Classic value 0.4.
    pub alpha: f64,
    /// Scale parameter `β` (cancels out under exact-count sampling, kept
    /// for fidelity with the literature). Classic value 0.1.
    pub beta: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            alpha: 0.4,
            beta: 0.1,
        }
    }
}

/// Generates a connected Waxman graph with `n` nodes in `[0, area]²` and
/// exactly `⌊avg_degree · n / 2⌋` edges.
///
/// # Panics
///
/// Panics if the requested edge count exceeds `n·(n−1)/2` or `n < 2`.
pub fn waxman<R: Rng>(
    n: usize,
    avg_degree: f64,
    area: f64,
    params: WaxmanParams,
    rng: &mut R,
) -> SpatialGraph {
    assert!(n >= 2, "need at least two nodes, got {n}");
    let m = ((avg_degree * n as f64) / 2.0).floor() as usize;
    let positions = place_nodes(n, area, rng);
    let g = waxman_over(&positions, m, area, params, rng);
    ensure_connected(g, rng)
}

/// Waxman edges over pre-placed positions (no connectivity repair); used
/// by tests and by generators that control placement themselves.
pub fn waxman_over<R: Rng>(
    positions: &[Point],
    m: usize,
    area: f64,
    params: WaxmanParams,
    rng: &mut R,
) -> SpatialGraph {
    let l_max = area * std::f64::consts::SQRT_2;
    let pairs = all_pairs(positions.len());
    let weights: Vec<f64> = pairs
        .iter()
        .map(|&(i, j)| {
            let d = positions[i].distance(positions[j]);
            params.beta * (-d / (params.alpha * l_max)).exp()
        })
        .collect();
    let edges = sample_weighted_pairs(&pairs, &weights, m, rng);
    assemble(positions, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count_and_connected() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = waxman(60, 6.0, 10_000.0, WaxmanParams::default(), &mut rng);
        assert_eq!(g.node_count(), 60);
        assert_eq!(g.edge_count(), 180);
        assert!(is_connected(&g));
        assert!((g.average_degree() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn short_edges_dominate() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = waxman(80, 6.0, 10_000.0, WaxmanParams::default(), &mut rng);
        let mean_edge: f64 = g.edge_refs().map(|e| *e.payload).sum::<f64>() / g.edge_count() as f64;
        // Compare against the mean distance over *all* pairs of the same
        // placed nodes: the Waxman kernel must pull the selected edges
        // well below that baseline regardless of the RNG stream.
        let nodes: Vec<_> = g.node_payloads().copied().collect();
        let mut all_sum = 0.0;
        let mut all_n = 0u64;
        for (i, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(i + 1) {
                all_sum += a.distance(*b);
                all_n += 1;
            }
        }
        let mean_pair = all_sum / all_n as f64;
        assert!(
            mean_edge < 0.9 * mean_pair,
            "mean edge length {mean_edge} not biased below uniform-pair mean {mean_pair}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let g1 = waxman(
            30,
            4.0,
            1000.0,
            WaxmanParams::default(),
            &mut StdRng::seed_from_u64(42),
        );
        let g2 = waxman(
            30,
            4.0,
            1000.0,
            WaxmanParams::default(),
            &mut StdRng::seed_from_u64(42),
        );
        let e1: Vec<_> = g1.edge_refs().map(|e| (e.a, e.b)).collect();
        let e2: Vec<_> = g2.edge_refs().map(|e| (e.a, e.b)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn small_alpha_is_more_local() {
        let mean = |alpha: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let params = WaxmanParams { alpha, beta: 0.1 };
            let mut total = 0.0;
            let trials = 5;
            for t in 0..trials {
                let _ = t;
                let g = waxman(60, 6.0, 10_000.0, params, &mut rng);
                total += g.edge_refs().map(|e| *e.payload).sum::<f64>() / g.edge_count() as f64;
            }
            total / trials as f64
        };
        assert!(mean(0.05, 1) < mean(2.0, 1));
    }
}
