//! Declarative topology specification — the serializable configuration the
//! experiment harness sweeps over.

use qnet_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::volchenkov::{volchenkov, VolchenkovParams};
use crate::watts_strogatz::{watts_strogatz, WattsStrogatzParams};
use crate::waxman::{waxman, WaxmanParams};

/// A spatially embedded network: node payloads are positions, edge
/// payloads are fiber lengths in area units (≈ km).
pub type SpatialGraph = Graph<Point, f64>;

/// Which random-network generation method to use (paper §V-A lists all
/// three).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Waxman 1988 geometric random graph (the paper's default).
    Waxman,
    /// Watts–Strogatz 1998 small-world graph.
    WattsStrogatz,
    /// Volchenkov–Blanchard 2002 power-law graph.
    Volchenkov,
}

impl TopologyKind {
    /// All three kinds, in the order Fig. 5 of the paper presents them.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Waxman,
        TopologyKind::WattsStrogatz,
        TopologyKind::Volchenkov,
    ];

    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Waxman => "Waxman",
            TopologyKind::WattsStrogatz => "Watts-Strogatz",
            TopologyKind::Volchenkov => "Volchenkov",
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full topology specification: generator kind plus size parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Generation method.
    pub kind: TopologyKind,
    /// Total node count (users + switches in the MUERP setting).
    pub nodes: usize,
    /// Target average degree `D` (paper default 6). The resulting edge
    /// count is exactly `⌊D·n/2⌋` for Waxman/Volchenkov and `n·(D/2)` for
    /// Watts–Strogatz (which requires an even integer `D`).
    pub avg_degree: f64,
    /// Side length of the square placement area (paper default 10 000).
    pub area: f64,
}

impl TopologySpec {
    /// The paper's default setup: Waxman, 60 nodes (50 switches + 10
    /// users), average degree 6, 10 000 × 10 000 area.
    pub fn paper_default() -> Self {
        TopologySpec {
            kind: TopologyKind::Waxman,
            nodes: 60,
            avg_degree: 6.0,
            area: 10_000.0,
        }
    }

    /// Candidate strictly smaller specs for counterexample shrinking,
    /// ordered most aggressive first (halve the node count, then step it
    /// down, then lower the average degree).
    ///
    /// Every candidate stays generator-valid: at least `min_nodes` nodes,
    /// average degree at least 2 and — because Watts–Strogatz requires an
    /// even integer degree — reduced in steps of 2 from an even starting
    /// point. Returns an empty vector when the spec is already minimal.
    pub fn shrink_candidates(&self, min_nodes: usize) -> Vec<TopologySpec> {
        let min_nodes = min_nodes.max(4);
        let mut out = Vec::new();
        let mut push_nodes = |nodes: usize| {
            if nodes < self.nodes && nodes >= min_nodes {
                out.push(TopologySpec { nodes, ..*self });
            }
        };
        push_nodes(self.nodes / 2);
        push_nodes(self.nodes.saturating_sub(4));
        push_nodes(self.nodes.saturating_sub(1));
        // Lower the wiring density: fewer edges often preserves a failure
        // while making the counterexample easier to read.
        let degree = self.avg_degree - 2.0;
        if degree >= 2.0 && (degree as usize) < self.nodes {
            out.push(TopologySpec {
                avg_degree: degree,
                ..*self
            });
        }
        out
    }

    /// Generates a connected network from this spec, deterministically for
    /// a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes (see the individual generators) or, for
    /// Watts–Strogatz, when `avg_degree` is not an even integer.
    pub fn generate(&self, seed: u64) -> SpatialGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.kind {
            TopologyKind::Waxman => waxman(
                self.nodes,
                self.avg_degree,
                self.area,
                WaxmanParams::default(),
                &mut rng,
            ),
            TopologyKind::WattsStrogatz => {
                let k = self.avg_degree as usize;
                assert!(
                    (self.avg_degree - k as f64).abs() < 1e-9,
                    "Watts-Strogatz requires an integer average degree, got {}",
                    self.avg_degree
                );
                watts_strogatz(
                    self.nodes,
                    k,
                    self.area,
                    WattsStrogatzParams::default(),
                    &mut rng,
                )
            }
            TopologyKind::Volchenkov => volchenkov(
                self.nodes,
                self.avg_degree,
                self.area,
                VolchenkovParams::default(),
                &mut rng,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::is_connected;

    #[test]
    fn all_kinds_generate_connected_graphs() {
        for kind in TopologyKind::ALL {
            let spec = TopologySpec {
                kind,
                ..TopologySpec::paper_default()
            };
            let g = spec.generate(1234);
            assert_eq!(g.node_count(), 60, "{kind}");
            assert!(is_connected(&g), "{kind}");
            assert_eq!(g.edge_count(), 180, "{kind}");
        }
    }

    #[test]
    fn same_seed_same_graph_different_seed_differs() {
        let spec = TopologySpec::paper_default();
        let a = spec.generate(5);
        let b = spec.generate(5);
        let c = spec.generate(6);
        let ea: Vec<_> = a.edge_refs().map(|e| (e.a, e.b)).collect();
        let eb: Vec<_> = b.edge_refs().map(|e| (e.a, e.b)).collect();
        let ec: Vec<_> = c.edge_refs().map(|e| (e.a, e.b)).collect();
        assert_eq!(ea, eb);
        assert_ne!(ea, ec);
    }

    #[test]
    fn display_names_match_paper_labels() {
        assert_eq!(TopologyKind::Waxman.to_string(), "Waxman");
        assert_eq!(TopologyKind::WattsStrogatz.to_string(), "Watts-Strogatz");
        assert_eq!(TopologyKind::Volchenkov.to_string(), "Volchenkov");
    }

    #[test]
    fn spec_types_are_serde() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<TopologySpec>();
        assert_serde::<TopologyKind>();
    }

    #[test]
    fn shrink_candidates_are_smaller_and_generator_valid() {
        for kind in TopologyKind::ALL {
            let spec = TopologySpec {
                kind,
                ..TopologySpec::paper_default()
            };
            let candidates = spec.shrink_candidates(8);
            assert!(!candidates.is_empty(), "{kind}: paper default must shrink");
            for c in &candidates {
                assert!(
                    c.nodes < spec.nodes || c.avg_degree < spec.avg_degree,
                    "{kind}: candidate {c:?} is not smaller"
                );
                assert!(c.nodes >= 8);
                assert!(c.avg_degree >= 2.0);
                // Every candidate must actually generate.
                let g = c.generate(99);
                assert_eq!(g.node_count(), c.nodes, "{kind}");
            }
        }
    }

    #[test]
    fn shrink_stops_at_the_floor() {
        let spec = TopologySpec {
            kind: TopologyKind::Waxman,
            nodes: 8,
            avg_degree: 2.0,
            area: 10_000.0,
        };
        assert!(spec.shrink_candidates(8).is_empty());
    }
}
