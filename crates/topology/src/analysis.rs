//! Structural statistics over generated topologies.
//!
//! The experiment harness uses these to sanity-check generated networks
//! (degree targets, edge-length profiles) and the Fig. 7(b) analysis uses
//! [`critical_edge_ratio`] to quantify how much of the network hangs on
//! bridges.

use qnet_graph::connectivity::bridges;

use crate::spec::SpatialGraph;

/// Summary statistics of one generated network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average node degree.
    pub avg_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Mean fiber length over all edges.
    pub mean_edge_length: f64,
    /// Longest single fiber.
    pub max_edge_length: f64,
    /// Fraction of edges that are bridges ("critical edges").
    pub bridge_ratio: f64,
}

/// Computes [`TopologyStats`] for a network.
pub fn stats(g: &SpatialGraph) -> TopologyStats {
    let nodes = g.node_count();
    let edges = g.edge_count();
    let degrees: Vec<usize> = g.node_ids().map(|v| g.degree(v)).collect();
    let lengths: Vec<f64> = g.edge_refs().map(|e| *e.payload).collect();
    TopologyStats {
        nodes,
        edges,
        avg_degree: g.average_degree(),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        mean_edge_length: if edges == 0 {
            0.0
        } else {
            lengths.iter().sum::<f64>() / edges as f64
        },
        max_edge_length: lengths.iter().copied().fold(0.0, f64::max),
        bridge_ratio: critical_edge_ratio(g),
    }
}

/// Fraction of edges whose removal disconnects the network — the
/// "critical edges" the paper's Fig. 7(b) discussion identifies as the
/// dominant factor in entanglement-rate degradation.
pub fn critical_edge_ratio(g: &SpatialGraph) -> f64 {
    if g.edge_count() == 0 {
        return 0.0;
    }
    bridges(g).len() as f64 / g.edge_count() as f64
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &SpatialGraph) -> Vec<usize> {
    let max = g.node_ids().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in g.node_ids() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TopologyKind, TopologySpec};

    #[test]
    fn stats_consistency() {
        let g = TopologySpec::paper_default().generate(77);
        let s = stats(&g);
        assert_eq!(s.nodes, 60);
        assert_eq!(s.edges, 180);
        assert!((s.avg_degree - 6.0).abs() < 1e-9);
        assert!(s.min_degree <= 6 && s.max_degree >= 6);
        assert!(s.mean_edge_length > 0.0);
        assert!(s.max_edge_length >= s.mean_edge_length);
        assert!((0.0..=1.0).contains(&s.bridge_ratio));
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = TopologySpec {
            kind: TopologyKind::Volchenkov,
            ..TopologySpec::paper_default()
        }
        .generate(3);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.node_count());
        let mean: f64 = hist
            .iter()
            .enumerate()
            .map(|(d, &c)| d as f64 * c as f64)
            .sum::<f64>()
            / g.node_count() as f64;
        assert!((mean - g.average_degree()).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let g: SpatialGraph = qnet_graph::Graph::new();
        let s = stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_edge_length, 0.0);
        assert_eq!(critical_edge_ratio(&g), 0.0);
    }
}
