//! Watts–Strogatz small-world generator (Watts & Strogatz, Nature 1998),
//! adapted to spatial placement.
//!
//! Nodes are placed uniformly at random in the area, ordered around their
//! centroid by angle (so "ring neighbors" are spatially coherent), wired as
//! a ring lattice where each node connects to its `k` nearest ring
//! neighbors, and each lattice edge is rewired to a random endpoint with
//! probability `p_rewire`. The edge count is exactly `n·k/2`, so choosing
//! `k = D` hits the paper's average-degree target exactly.

use rand::Rng;

use crate::builder::{assemble, ensure_connected, place_nodes};
use crate::spec::SpatialGraph;

/// Watts–Strogatz parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WattsStrogatzParams {
    /// Rewiring probability (classic value 0.1).
    pub p_rewire: f64,
}

impl Default for WattsStrogatzParams {
    fn default() -> Self {
        WattsStrogatzParams { p_rewire: 0.1 }
    }
}

/// Generates a connected Watts–Strogatz graph with `n` spatially placed
/// nodes and ring degree `k` (must be even and `< n`), i.e. exactly
/// `n·k/2` edges.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `n < 3`.
pub fn watts_strogatz<R: Rng>(
    n: usize,
    k: usize,
    area: f64,
    params: WattsStrogatzParams,
    rng: &mut R,
) -> SpatialGraph {
    assert!(n >= 3, "need at least three nodes, got {n}");
    assert!(k.is_multiple_of(2), "ring degree k must be even, got {k}");
    assert!(k < n, "ring degree k = {k} must be < n = {n}");
    assert!(
        (0.0..=1.0).contains(&params.p_rewire),
        "p_rewire must be a probability, got {}",
        params.p_rewire
    );

    let positions = place_nodes(n, area, rng);

    // Order nodes around the centroid so lattice neighbors are nearby.
    let center = crate::point::centroid(&positions);
    let mut ring: Vec<usize> = (0..n).collect();
    ring.sort_by(|&a, &b| {
        positions[a]
            .angle_around(center)
            .partial_cmp(&positions[b].angle_around(center))
            .expect("angles are never NaN")
    });

    // Ring lattice: node i connects to i+1 .. i+k/2 (mod n) along the ring.
    let mut edge_set: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * k / 2);
    let key = |a: usize, b: usize| (a.min(b), a.max(b));
    for i in 0..n {
        for offset in 1..=(k / 2) {
            let (a, b) = (ring[i], ring[(i + offset) % n]);
            if edge_set.insert(key(a, b)) {
                edges.push((a, b));
            }
        }
    }

    // Rewire: with probability p, replace edge (a, b) by (a, random c).
    for edge in edges.iter_mut() {
        if !rng.random_bool(params.p_rewire) {
            continue;
        }
        let (a, b) = *edge;
        // Draw a replacement endpoint avoiding self-loops and duplicates.
        let mut attempts = 0;
        loop {
            let c = rng.random_range(0..n);
            attempts += 1;
            if attempts > 4 * n {
                break; // saturated neighborhood: keep the original edge
            }
            if c == a || edge_set.contains(&key(a, c)) {
                continue;
            }
            edge_set.remove(&key(a, b));
            edge_set.insert(key(a, c));
            *edge = (a, c);
            break;
        }
    }

    let g = assemble(&positions, &edges);
    ensure_connected(g, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_graph::connectivity::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = watts_strogatz(60, 6, 10_000.0, WattsStrogatzParams::default(), &mut rng);
        assert_eq!(g.node_count(), 60);
        assert_eq!(g.edge_count(), 180);
        assert!(is_connected(&g));
    }

    #[test]
    fn zero_rewire_is_a_lattice() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = watts_strogatz(
            20,
            4,
            1000.0,
            WattsStrogatzParams { p_rewire: 0.0 },
            &mut rng,
        );
        // Every node has exactly degree 4 in the pure lattice.
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn full_rewire_still_exact_count() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = watts_strogatz(
            30,
            4,
            1000.0,
            WattsStrogatzParams { p_rewire: 1.0 },
            &mut rng,
        );
        assert_eq!(g.edge_count(), 60);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_rejected() {
        let mut rng = StdRng::seed_from_u64(23);
        watts_strogatz(10, 3, 100.0, WattsStrogatzParams::default(), &mut rng);
    }

    #[test]
    fn rewiring_shortens_diameter_on_average() {
        // Small-world effect: p = 0.1 must not *increase* typical path
        // length relative to the pure ring lattice.
        fn mean_hops(p: f64) -> f64 {
            use qnet_graph::paths::bfs_path;
            let mut total = 0.0;
            let mut count = 0;
            for seed in 0..5u64 {
                let mut rng = StdRng::seed_from_u64(100 + seed);
                let g =
                    watts_strogatz(40, 4, 1000.0, WattsStrogatzParams { p_rewire: p }, &mut rng);
                for t in 1..g.node_count() {
                    if let Some(path) =
                        bfs_path(&g, qnet_graph::NodeId::new(0), qnet_graph::NodeId::new(t))
                    {
                        total += path.len() as f64;
                        count += 1;
                    }
                }
            }
            total / count as f64
        }
        assert!(mean_hops(0.3) < mean_hops(0.0));
    }
}
