//! 2-D geometry for spatial network placement.

use serde::{Deserialize, Serialize};

/// A point in the simulation plane (units ≈ kilometers, per §V-A of the
/// paper: a 10 000 × 10 000 unit area with 1 unit ≈ 1 km).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// # Example
    ///
    /// ```
    /// use qnet_topology::Point;
    /// let d = Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0));
    /// assert_eq!(d, 5.0);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Angle of this point around `center`, in radians in `(-π, π]`.
    ///
    /// Used by the Watts–Strogatz generator to order spatially placed
    /// nodes along a ring.
    pub fn angle_around(self, center: Point) -> f64 {
        (self.y - center.y).atan2(self.x - center.x)
    }
}

/// Centroid of a set of points; the origin for an empty set.
pub fn centroid(points: &[Point]) -> Point {
    if points.is_empty() {
        return Point::default();
    }
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    Point::new(sx / points.len() as f64, sy / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn triangle_inequality() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let c = Point::new(5.0, 5.0);
        assert!(a.distance(b) <= a.distance(c) + c.distance(b) + 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Point::new(1.0, 1.0));
        assert_eq!(centroid(&[]), Point::default());
    }

    #[test]
    fn angles_order_around_center() {
        let c = Point::new(0.0, 0.0);
        let east = Point::new(1.0, 0.0).angle_around(c);
        let north = Point::new(0.0, 1.0).angle_around(c);
        let west = Point::new(-1.0, 0.0).angle_around(c);
        assert!(east < north && north < west);
    }
}
