//! # muerp-bench — benchmark support
//!
//! The benchmark targets live in `benches/`:
//!
//! * `figures` — regenerates every paper figure (Figs. 5–8) at bench
//!   trial counts and times the full pipeline per panel.
//! * `algorithms` — per-algorithm solve latency at growing network
//!   scale, checking the §IV complexity discussion empirically.
//! * `substrates` — the building blocks: Dijkstra/Algorithm 1, topology
//!   generation, union-find, Monte-Carlo slot throughput.
//! * `ablations` — design-choice sensitivity: Algorithm 4 seed policy,
//!   Algorithm 3 retention policy, fidelity hop bounds, fusion models.
//! * `search_core` — fresh-alloc vs reusable-workspace vs epoch-cached
//!   search paths; writes the tracked `BENCH_pr7.json` baseline at the
//!   repo root.
//!
//! This crate's library hosts shared helpers for those benches: network
//! builders, a self-calibrating timing loop, and the `BENCH_*.json`
//! report writer.

use std::time::{Duration, Instant};

use muerp_core::model::{NetworkSpec, QuantumNetwork};

/// Builds the paper-default network family scaled to `switches` switches
/// (10 users, degree 6), used by the scaling benches.
pub fn scaled_network(switches: usize, seed: u64) -> QuantumNetwork {
    let mut spec = NetworkSpec::paper_default();
    spec.topology.nodes = switches + spec.users;
    spec.build(seed)
}

/// `true` when `MUERP_BENCH_QUICK=1`: CI smoke mode — tiny measurement
/// windows, numbers good only for "did it run", not for comparison.
pub fn quick_mode() -> bool {
    std::env::var_os("MUERP_BENCH_QUICK").is_some_and(|v| v == *"1")
}

fn bench_window() -> Duration {
    if quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

/// Times `op` with the same calibrate-then-fill-the-window scheme the
/// vendored criterion stub uses; returns mean ns per call.
pub fn measure_ns(mut op: impl FnMut()) -> f64 {
    let window = bench_window();
    // Warm-up + calibration: run until ~10% of the window is spent,
    // doubling the batch each time.
    let calibration_budget = window / 10;
    let mut batch: u64 = 1;
    let mut calibration_iters: u64 = 0;
    let calib_start = Instant::now();
    loop {
        for _ in 0..batch {
            op();
        }
        calibration_iters += batch;
        if calib_start.elapsed() >= calibration_budget || batch >= (1 << 20) {
            break;
        }
        batch *= 2;
    }
    let per_iter = calib_start.elapsed().as_secs_f64() / calibration_iters as f64;
    let iterations = ((window.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
    let start = Instant::now();
    for _ in 0..iterations {
        op();
    }
    start.elapsed().as_secs_f64() * 1e9 / iterations as f64
}

/// Median of three [`measure_ns`] rounds — discards a scheduler spike
/// without tripling the reported number's meaning.
pub fn measure_ns_median(mut op: impl FnMut()) -> f64 {
    let mut rounds = [0.0f64; 3];
    for r in &mut rounds {
        *r = measure_ns(&mut op);
    }
    median(&mut rounds)
}

/// Paired A/B timing: alternates five [`measure_ns`] rounds between the
/// two ops and returns `(median_a, median_b)`.
///
/// Two independent [`measure_ns_median`] calls seconds apart each absorb
/// whatever the host was doing during *their* window, so a transient
/// slowdown (scheduler pressure, container CPU-quota throttling, clock
/// ramping) lands on one side only and skews the ratio by 10–20% on a
/// noisy host. Interleaving makes both sides sample the same conditions,
/// which is what an *assertion about the ratio* needs — use this for any
/// bench invariant of the form "path A must not be slower than path B".
pub fn measure_ns_paired(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut rounds_a = [0.0f64; 5];
    let mut rounds_b = [0.0f64; 5];
    for (ra, rb) in rounds_a.iter_mut().zip(&mut rounds_b) {
        *ra = measure_ns(&mut a);
        *rb = measure_ns(&mut b);
    }
    (median(&mut rounds_a), median(&mut rounds_b))
}

fn median(rounds: &mut [f64]) -> f64 {
    rounds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    rounds[rounds.len() / 2]
}

/// Writes a `BENCH_*.json` report at the repo root (pretty-printed,
/// trailing newline) and returns the path written.
///
/// The repo root is resolved relative to this crate's manifest so the
/// result is independent of the bench runner's working directory.
pub fn write_bench_report(file_name: &str, report: &serde_json::Value) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name);
    let body = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("bench report is writable");
    path.canonicalize().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_network_has_requested_size() {
        let net = scaled_network(30, 1);
        assert_eq!(net.switch_count(), 30);
        assert_eq!(net.user_count(), 10);
    }

    #[test]
    fn measure_ns_returns_positive_time() {
        std::env::set_var("MUERP_BENCH_QUICK", "1");
        let ns = measure_ns(|| {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(ns > 0.0 && ns.is_finite());
    }
}
