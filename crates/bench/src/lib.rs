//! # muerp-bench — benchmark support
//!
//! The benchmark targets live in `benches/`:
//!
//! * `figures` — regenerates every paper figure (Figs. 5–8) at bench
//!   trial counts and times the full pipeline per panel.
//! * `algorithms` — per-algorithm solve latency at growing network
//!   scale, checking the §IV complexity discussion empirically.
//! * `substrates` — the building blocks: Dijkstra/Algorithm 1, topology
//!   generation, union-find, Monte-Carlo slot throughput.
//! * `ablations` — design-choice sensitivity: Algorithm 4 seed policy,
//!   Algorithm 3 retention policy, fidelity hop bounds, fusion models.
//!
//! This crate's library only hosts shared helpers for those benches.

use muerp_core::model::{NetworkSpec, QuantumNetwork};

/// Builds the paper-default network family scaled to `switches` switches
/// (10 users, degree 6), used by the scaling benches.
pub fn scaled_network(switches: usize, seed: u64) -> QuantumNetwork {
    let mut spec = NetworkSpec::paper_default();
    spec.topology.nodes = switches + spec.users;
    spec.build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_network_has_requested_size() {
        let net = scaled_network(30, 1);
        assert_eq!(net.switch_count(), 30);
        assert_eq!(net.user_count(), 10);
    }
}
