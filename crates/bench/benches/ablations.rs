//! Ablation benches: runtime cost of the design-choice variants whose
//! *quality* impact is tabulated by `muerp-experiments`' ablations module
//! (see DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muerp_bench::scaled_network;
use muerp_core::algorithms::RetentionPolicy;
use muerp_core::algorithms::{ConflictFree, PrimBased, SeedChoice};
use muerp_core::extensions::{FidelityAwarePrim, FidelityModel};
use muerp_core::prelude::*;

fn bench_seed_choice(c: &mut Criterion) {
    let net = scaled_network(50, 3);
    let mut group = c.benchmark_group("alg4_seed_choice");
    for (label, seed) in [
        ("first_user", SeedChoice::FirstUser),
        ("random", SeedChoice::Random(3)),
        ("best_of_all", SeedChoice::BestOfAll),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &seed, |b, &seed| {
            b.iter(|| std::hint::black_box(PrimBased { seed }.solve(&net)))
        });
    }
    group.finish();
}

fn bench_retention_policy(c: &mut Criterion) {
    let net = scaled_network(50, 4);
    let mut group = c.benchmark_group("alg3_retention");
    for (label, retention) in [
        ("max_rate_first", RetentionPolicy::MaxRateFirst),
        (
            "fewest_switches_first",
            RetentionPolicy::FewestSwitchesFirst,
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &retention,
            |b, &retention| b.iter(|| std::hint::black_box(ConflictFree { retention }.solve(&net))),
        );
    }
    group.finish();
}

fn bench_fidelity_bound(c: &mut Criterion) {
    // Hop-layered Algorithm 1 costs grow with the hop budget; quantify.
    let net = scaled_network(50, 5);
    let mut group = c.benchmark_group("fidelity_hop_bound");
    for floor in [0.90f64, 0.95, 0.97] {
        let model = FidelityModel {
            link_fidelity: 0.99,
            min_fidelity: floor,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("floor_{floor}")),
            &model,
            |b, &model| b.iter(|| std::hint::black_box(FidelityAwarePrim { model }.solve(&net))),
        );
    }
    group.finish();
}

fn bench_fusion_models(c: &mut Criterion) {
    use muerp_core::algorithms::baselines::FusionSuccess;
    let net = scaled_network(50, 6);
    let mut group = c.benchmark_group("nfusion_model");
    for (label, fusion) in [
        ("power_law", FusionSuccess::PowerLaw),
        ("fixed", FusionSuccess::Fixed(0.5)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &fusion, |b, &fusion| {
            b.iter(|| std::hint::black_box(NFusion { fusion }.solve(&net)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_seed_choice,
    bench_retention_policy,
    bench_fidelity_bound,
    bench_fusion_models
);
criterion_main!(benches);
