//! Cost of the qnet-obs instrumentation layer.
//!
//! Two questions, answered separately:
//!
//! 1. **Macro-level:** how does a real solve compare across
//!    `MUERP_OBS=off`, `counters`, `full`, and `trace`? Reported as four
//!    criterion measurements of `PrimBased::solve` on the paper-default
//!    network. The first three must stay within noise of each other's
//!    historical values with the flight recorder compiled in; `trace`
//!    pays one mutex op per decision event.
//! 2. **Micro-level:** what does a disabled instrumentation site cost?
//!    An interleaved A/B measurement of the same synthetic kernel with
//!    and without `counter!`/`histogram!`/`span!` sites, with the level
//!    at `off`. The run *asserts* the overhead stays near the ~2%
//!    design budget (5% allowed, absorbing scheduler noise); a
//!    regression here means the off path stopped being a single
//!    relaxed load.
//! 3. **Windowed series:** the same off-path question for
//!    [`qnet_obs::TimeSeries`] recording sites gated behind
//!    `enabled(Counters)`, plus the on-path ns-per-op cost of
//!    `rate_add`/`gauge`/`latency`/`advance_to`. The off-path ratio is
//!    asserted under the same 5% noise budget and the numbers are
//!    tracked in `BENCH_pr8.json` at the repo root.

use std::collections::BTreeMap;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use muerp_bench::{measure_ns_median, quick_mode, scaled_network, write_bench_report};
use muerp_core::prelude::*;
use qnet_obs::{ObsLevel, TimeSeries, TimeSeriesConfig};
use serde_json::Value;

fn bench_solve_per_level(c: &mut Criterion) {
    let net = scaled_network(50, 42);
    let mut group = c.benchmark_group("obs_overhead/solve");
    for (label, level) in [
        ("off", ObsLevel::Off),
        ("counters", ObsLevel::Counters),
        ("full", ObsLevel::Full),
        ("trace", ObsLevel::Trace),
    ] {
        qnet_obs::set_level(level);
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(PrimBased::with_seed(1).solve(&net)))
        });
        // Keep the span store and ring bounded across iterations.
        qnet_obs::reset_spans();
        qnet_obs::reset_trace();
        qnet_obs::global().reset();
    }
    qnet_obs::set_level(ObsLevel::Counters);
    group.finish();
}

/// Synthetic per-iteration work: enough arithmetic that one relaxed
/// atomic load per iteration must stay in the low single-digit percents.
/// `inline(never)` keeps the machine code identical between the plain
/// and instrumented loops, so the A/B difference is the obs sites alone.
#[inline(never)]
fn kernel_step(x: u64) -> u64 {
    let mut v = x;
    // ~128 dependent ops ≈ the work of a short Dijkstra relaxation run,
    // the granularity at which real call sites are instrumented.
    for _ in 0..128 {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v ^= v >> 29;
    }
    v
}

const ITERS: u64 = 50_000;
const ROUNDS: usize = 21;

fn run_plain() -> (u64, std::time::Duration) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        acc = acc.wrapping_add(kernel_step(i));
    }
    (std::hint::black_box(acc), start.elapsed())
}

fn run_instrumented() -> (u64, std::time::Duration) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        let _span = qnet_obs::span!("bench.obs_overhead.step");
        qnet_obs::counter!("bench.obs_overhead.steps");
        acc = acc.wrapping_add(kernel_step(i));
        qnet_obs::histogram!("bench.obs_overhead.acc_us", acc & 0xff);
        // A disabled flight-recorder site must be as free as the rest.
        if qnet_obs::trace_enabled() {
            qnet_obs::record_event(qnet_obs::TraceEvent::BeamRound {
                round: i as u32,
                expanded: 0,
                kept: 0,
            });
        }
    }
    (std::hint::black_box(acc), start.elapsed())
}

fn assert_off_path_is_free(_c: &mut Criterion) {
    qnet_obs::set_level(ObsLevel::Off);

    // Interleave rounds so frequency scaling and noise hit both sides,
    // then take the median of the paired per-round ratios — pairing
    // cancels slow drift, the median discards scheduler spikes.
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut checksum = 0u64;
    for _ in 0..ROUNDS {
        let (a, t_plain) = run_plain();
        let (b, t_inst) = run_instrumented();
        assert_eq!(a, b, "instrumentation must not change results");
        checksum ^= a;
        ratios.push(t_inst.as_secs_f64() / t_plain.as_secs_f64());
    }
    std::hint::black_box(checksum);
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let ratio = ratios[ROUNDS / 2];

    println!(
        "obs_overhead/off_path: median paired ratio {ratio:.4} over {ROUNDS} rounds \
         (expected ~1.01-1.02, budget 1.05)"
    );
    assert!(
        ratio < 1.05,
        "MUERP_OBS=off overhead {:.2}% blew the ~2% design budget (5% with noise allowance); \
         the off path is no longer a single relaxed load",
        (ratio - 1.0) * 100.0
    );

    qnet_obs::set_level(ObsLevel::Counters);
}

/// The synthetic kernel with windowed-series recording sites, each
/// gated exactly like a real driver would gate an optional series:
/// behind [`qnet_obs::enabled`]. At `MUERP_OBS=off` every site must
/// reduce to one relaxed load — the same contract the counter/span
/// sites keep.
fn run_windowed_instrumented(ts: &mut TimeSeries) -> (u64, std::time::Duration) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        acc = acc.wrapping_add(kernel_step(i));
        if qnet_obs::enabled(ObsLevel::Counters) {
            ts.advance_to(i);
            ts.rate_add("bench.windowed.steps", 1);
            ts.gauge("bench.windowed.acc", (acc & 0xff) as f64);
            ts.latency("bench.windowed.step_ns", acc & 0xff);
        }
    }
    (std::hint::black_box(acc), start.elapsed())
}

/// A ring big enough that the on-path loop never allocates after the
/// first window, small enough that eviction (the worst on-path case)
/// actually happens.
fn bench_series() -> TimeSeries {
    TimeSeries::new(TimeSeriesConfig {
        window_slots: 64,
        capacity: 32,
    })
}

fn windowed_series_costs(_c: &mut Criterion) {
    // Off-path: paired A/B against the plain kernel, same protocol as
    // `assert_off_path_is_free` — interleaved rounds, median ratio.
    qnet_obs::set_level(ObsLevel::Off);
    let rounds = if quick_mode() { 7 } else { ROUNDS };
    let mut series = bench_series();
    let mut ratios = Vec::with_capacity(rounds);
    let mut checksum = 0u64;
    for _ in 0..rounds {
        let (a, t_plain) = run_plain();
        let (b, t_inst) = run_windowed_instrumented(&mut series);
        assert_eq!(a, b, "gated series sites must not change results");
        checksum ^= a;
        ratios.push(t_inst.as_secs_f64() / t_plain.as_secs_f64());
    }
    std::hint::black_box(checksum);
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let off_ratio = ratios[rounds / 2];

    println!(
        "obs_overhead/windowed_off_path: median paired ratio {off_ratio:.4} over {rounds} rounds \
         (expected ~1.01, budget 1.05)"
    );
    assert!(
        off_ratio < 1.05,
        "gated TimeSeries sites cost {:.2}% at MUERP_OBS=off, blowing the ~1% design budget \
         (5% with noise allowance); the enabled() gate stopped being a single relaxed load",
        (off_ratio - 1.0) * 100.0
    );

    // On-path: ns per recording op at the counters level. `advance_to`
    // is measured on a monotonically growing slot with window_slots=64,
    // so roughly 1 in 64 calls closes (and eventually evicts) a window
    // — the amortized cost a per-slot driver loop actually pays.
    qnet_obs::set_level(ObsLevel::Counters);
    let mut series = bench_series();
    let rate_ns = measure_ns_median(|| series.rate_add("bench.windowed.steps", 1));
    let gauge_ns = measure_ns_median(|| series.gauge("bench.windowed.acc", 1.0));
    let latency_ns = measure_ns_median(|| series.latency("bench.windowed.step_ns", 17));
    let mut slot = 0u64;
    let advance_ns = measure_ns_median(|| {
        slot += 1;
        series.advance_to(slot);
    });
    std::hint::black_box(series.finish());

    let mut on_path: BTreeMap<String, Value> = BTreeMap::new();
    on_path.insert("rate_add".into(), Value::from(rate_ns));
    on_path.insert("gauge".into(), Value::from(gauge_ns));
    on_path.insert("latency".into(), Value::from(latency_ns));
    on_path.insert("advance_to".into(), Value::from(advance_ns));

    let mut off_path: BTreeMap<String, Value> = BTreeMap::new();
    off_path.insert("median_paired_ratio".into(), Value::from(off_ratio));
    off_path.insert("budget_ratio".into(), Value::from(1.05));
    off_path.insert("rounds".into(), Value::from(rounds as u64));
    off_path.insert("iters_per_round".into(), Value::from(ITERS));

    let mut report: BTreeMap<String, Value> = BTreeMap::new();
    report.insert("bench".into(), Value::from("obs_overhead/windowed_series"));
    report.insert("pr".into(), Value::from(8u64));
    report.insert("quick".into(), Value::from(quick_mode()));
    report.insert(
        "unit".into(),
        Value::from("off_path: paired time ratio; on_path_ns: ns per op at counters level"),
    );
    report.insert("off_path".into(), Value::Object(off_path));
    report.insert("on_path_ns".into(), Value::Object(on_path));

    let path = write_bench_report("BENCH_pr8.json", &Value::Object(report));
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_solve_per_level,
    assert_off_path_is_free,
    windowed_series_costs
);
criterion_main!(benches);
