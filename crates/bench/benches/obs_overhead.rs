//! Cost of the qnet-obs instrumentation layer.
//!
//! Two questions, answered separately:
//!
//! 1. **Macro-level:** how does a real solve compare across
//!    `MUERP_OBS=off`, `counters`, `full`, and `trace`? Reported as four
//!    criterion measurements of `PrimBased::solve` on the paper-default
//!    network. The first three must stay within noise of each other's
//!    historical values with the flight recorder compiled in; `trace`
//!    pays one mutex op per decision event.
//! 2. **Micro-level:** what does a disabled instrumentation site cost?
//!    An interleaved A/B measurement of the same synthetic kernel with
//!    and without `counter!`/`histogram!`/`span!` sites, with the level
//!    at `off`. The run *asserts* the overhead stays near the ~2%
//!    design budget (5% allowed, absorbing scheduler noise); a
//!    regression here means the off path stopped being a single
//!    relaxed load.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use muerp_bench::scaled_network;
use muerp_core::prelude::*;
use qnet_obs::ObsLevel;

fn bench_solve_per_level(c: &mut Criterion) {
    let net = scaled_network(50, 42);
    let mut group = c.benchmark_group("obs_overhead/solve");
    for (label, level) in [
        ("off", ObsLevel::Off),
        ("counters", ObsLevel::Counters),
        ("full", ObsLevel::Full),
        ("trace", ObsLevel::Trace),
    ] {
        qnet_obs::set_level(level);
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(PrimBased::with_seed(1).solve(&net)))
        });
        // Keep the span store and ring bounded across iterations.
        qnet_obs::reset_spans();
        qnet_obs::reset_trace();
        qnet_obs::global().reset();
    }
    qnet_obs::set_level(ObsLevel::Counters);
    group.finish();
}

/// Synthetic per-iteration work: enough arithmetic that one relaxed
/// atomic load per iteration must stay in the low single-digit percents.
/// `inline(never)` keeps the machine code identical between the plain
/// and instrumented loops, so the A/B difference is the obs sites alone.
#[inline(never)]
fn kernel_step(x: u64) -> u64 {
    let mut v = x;
    // ~128 dependent ops ≈ the work of a short Dijkstra relaxation run,
    // the granularity at which real call sites are instrumented.
    for _ in 0..128 {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v ^= v >> 29;
    }
    v
}

const ITERS: u64 = 50_000;
const ROUNDS: usize = 21;

fn run_plain() -> (u64, std::time::Duration) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        acc = acc.wrapping_add(kernel_step(i));
    }
    (std::hint::black_box(acc), start.elapsed())
}

fn run_instrumented() -> (u64, std::time::Duration) {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        let _span = qnet_obs::span!("bench.obs_overhead.step");
        qnet_obs::counter!("bench.obs_overhead.steps");
        acc = acc.wrapping_add(kernel_step(i));
        qnet_obs::histogram!("bench.obs_overhead.acc_us", acc & 0xff);
        // A disabled flight-recorder site must be as free as the rest.
        if qnet_obs::trace_enabled() {
            qnet_obs::record_event(qnet_obs::TraceEvent::BeamRound {
                round: i as u32,
                expanded: 0,
                kept: 0,
            });
        }
    }
    (std::hint::black_box(acc), start.elapsed())
}

fn assert_off_path_is_free(_c: &mut Criterion) {
    qnet_obs::set_level(ObsLevel::Off);

    // Interleave rounds so frequency scaling and noise hit both sides,
    // then take the median of the paired per-round ratios — pairing
    // cancels slow drift, the median discards scheduler spikes.
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut checksum = 0u64;
    for _ in 0..ROUNDS {
        let (a, t_plain) = run_plain();
        let (b, t_inst) = run_instrumented();
        assert_eq!(a, b, "instrumentation must not change results");
        checksum ^= a;
        ratios.push(t_inst.as_secs_f64() / t_plain.as_secs_f64());
    }
    std::hint::black_box(checksum);
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let ratio = ratios[ROUNDS / 2];

    println!(
        "obs_overhead/off_path: median paired ratio {ratio:.4} over {ROUNDS} rounds \
         (expected ~1.01-1.02, budget 1.05)"
    );
    assert!(
        ratio < 1.05,
        "MUERP_OBS=off overhead {:.2}% blew the ~2% design budget (5% with noise allowance); \
         the off path is no longer a single relaxed load",
        (ratio - 1.0) * 100.0
    );

    qnet_obs::set_level(ObsLevel::Counters);
}

criterion_group!(benches, bench_solve_per_level, assert_off_path_is_free);
criterion_main!(benches);
