//! Substrate micro-benches: the primitives every routing run leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_graph::{dijkstra, DijkstraConfig, EdgeRef, Graph, NodeId, UnionFind};
use qnet_sim::engine::{SimPhysics, Simulator};
use qnet_sim::plan::{ChannelSpec, RoutingPlan};
use qnet_topology::{TopologyKind, TopologySpec};

fn bench_topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for kind in TopologyKind::ALL {
        for &nodes in &[60usize, 240] {
            let spec = TopologySpec {
                kind,
                nodes,
                avg_degree: 6.0,
                area: 10_000.0,
            };
            group.bench_with_input(BenchmarkId::new(kind.name(), nodes), &spec, |b, spec| {
                b.iter(|| std::hint::black_box(spec.generate(5)))
            });
        }
    }
    group.finish();
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    for &nodes in &[60usize, 240, 960] {
        let spec = TopologySpec {
            kind: TopologyKind::Waxman,
            nodes,
            avg_degree: 6.0,
            area: 10_000.0,
        };
        let g = spec.generate(11);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &g, |b, g| {
            b.iter(|| {
                std::hint::black_box(dijkstra(
                    g,
                    NodeId::new(0),
                    &DijkstraConfig::all_nodes(|e: EdgeRef<'_, f64>| *e.payload),
                ))
            })
        });
    }
    group.finish();
}

fn bench_union_find(c: &mut Criterion) {
    c.bench_function("union_find/10k_unions", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(10_000);
            for i in 0..9_999usize {
                uf.union(i, i + 1);
            }
            std::hint::black_box(uf.set_count())
        })
    });
}

fn bench_bridges(c: &mut Criterion) {
    let spec = TopologySpec {
        kind: TopologyKind::Waxman,
        nodes: 240,
        avg_degree: 6.0,
        area: 10_000.0,
    };
    let g = spec.generate(13);
    c.bench_function("bridges/240_nodes", |b| {
        b.iter(|| std::hint::black_box(qnet_graph::connectivity::bridges(&g)))
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    // Throughput of the slot engine on a 9-channel tree (the paper's
    // default |U| = 10).
    let channels: Vec<ChannelSpec> = (0..9)
        .map(|i| {
            ChannelSpec::new(
                vec![100 + i, 10 + i, 200 + i],
                vec![900.0, 1100.0],
                &[false, true, false],
            )
        })
        .collect();
    let plan = RoutingPlan::tree(channels);
    let physics = SimPhysics {
        swap_success: 0.9,
        attenuation: 1e-4,
        fusion_success: None,
    };
    c.bench_function("monte_carlo/1k_slots_9_channels", |b| {
        let mut sim = Simulator::new(plan.clone(), physics, 17);
        b.iter(|| std::hint::black_box(sim.run_slots(1_000)))
    });
}

fn bench_ksp(c: &mut Criterion) {
    use qnet_graph::ksp::k_shortest_paths;
    let spec = TopologySpec {
        kind: TopologyKind::Waxman,
        nodes: 60,
        avg_degree: 6.0,
        area: 10_000.0,
    };
    let g = spec.generate(15);
    let mut group = c.benchmark_group("ksp");
    for &k in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                std::hint::black_box(k_shortest_paths(
                    &g,
                    NodeId::new(0),
                    NodeId::new(59),
                    k,
                    &DijkstraConfig::all_nodes(|e: EdgeRef<'_, f64>| *e.payload),
                ))
            })
        });
    }
    group.finish();
}

fn bench_betweenness(c: &mut Criterion) {
    use qnet_graph::centrality::betweenness;
    let mut group = c.benchmark_group("betweenness");
    for &nodes in &[60usize, 120] {
        let spec = TopologySpec {
            kind: TopologyKind::Waxman,
            nodes,
            avg_degree: 6.0,
            area: 10_000.0,
        };
        let g = spec.generate(16);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &g, |b, g| {
            b.iter(|| std::hint::black_box(betweenness(g, |e: EdgeRef<'_, f64>| *e.payload)))
        });
    }
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    c.bench_function("graph/build_60n_180e", |b| {
        b.iter(|| {
            let mut g: Graph<(), f64> = Graph::with_capacity(60, 180);
            for _ in 0..60 {
                g.add_node(());
            }
            for i in 0..180usize {
                g.add_edge(NodeId::new(i % 60), NodeId::new((i * 7 + 1) % 60), i as f64);
            }
            std::hint::black_box(g.edge_count())
        })
    });
}

criterion_group!(
    benches,
    bench_topology_generation,
    bench_dijkstra,
    bench_union_find,
    bench_bridges,
    bench_monte_carlo,
    bench_ksp,
    bench_betweenness,
    bench_graph_construction
);
criterion_main!(benches);
