//! Delta-engine cost model: incremental repair vs wholesale recompute.
//!
//! PR 9's delta engine claims that reacting to a capacity delta is far
//! cheaper than recomputing: a worsening delta is patched in place by
//! `dijkstra_repair_into` (only the affected region resettles), and a
//! threshold-preserving delta costs one relay-vector diff plus O(1)
//! entry revalidation. This bench puts numbers behind both claims on
//! the same scaled topologies as `search_core`:
//!
//! * **finder_delta_repair** — every user source's stored run reloaded
//!   and repaired in place after a relay kill (the delta engine's
//!   worsening path, measured pure: `load_run` restores the pre-delta
//!   state each op so every repair is a true repair).
//! * **finder_delta_wholesale** — the same post-delta searches run from
//!   scratch (what an epoch-keyed cache would do for every source).
//! * **finder_delta_clean** — the dirty-set cache absorbing an epoch
//!   ping-pong with no relay flip: one relay-vector diff, then O(1)
//!   revalidation of every entry — zero searches.
//! * **finder_delta_roundtrip** — the cache serving a kill-then-restore
//!   cycle end to end: in-place repairs on the down edge, classified
//!   full recomputes on the up edge (improving deltas are never
//!   repaired in place; exact cost ties could flip predecessors).
//!
//! Run with `cargo bench -p muerp-bench --bench delta`. Writes the
//! tracked baseline `BENCH_pr9.json` at the repo root (ns/op; each op
//! covers *all* user sources). `MUERP_BENCH_QUICK=1` shrinks the
//! measurement windows for CI smoke runs — the file is still produced
//! and shape-validated, but the ≤ 0.5× repair gate only arms on full
//! runs.

use muerp_bench::{measure_ns_median, quick_mode, scaled_network, write_bench_report};
use muerp_core::algorithms::ChannelFinderCache;
use muerp_core::prelude::*;
use qnet_graph::paths::{dijkstra_adj_into, DijkstraConfig, DijkstraRun, DijkstraWorkspace};
use qnet_graph::{dijkstra_repair_into, CsrGraph, EdgeRef, NodeId, RepairScratch, SsspDelta};
use qnet_pool::Pool;
use serde_json::Value;
use std::collections::BTreeMap;
use std::hint::black_box;

/// The MUERP edge cost and relay filter at the graph layer (mirrors
/// `ChannelFinder::from_source`, like `search_core`'s rows do), so the
/// repair and wholesale rows measure the same search the finder runs.
fn muerp_config<'a>(
    net: &'a QuantumNetwork,
    capacity: &'a CapacityMap,
) -> DijkstraConfig<impl Fn(EdgeRef<'_, f64>) -> f64 + 'a, impl Fn(NodeId) -> bool + 'a> {
    let alpha = net.physics().attenuation;
    let neg_ln_q = -(net.physics().swap_success.ln());
    DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: move |v: NodeId| net.kind(v).is_switch() && capacity.can_relay(v),
    }
}

/// A switch the first user's shortest-path tree relays through — the
/// victim whose kill makes the repair rows do real work.
fn relay_victim(net: &QuantumNetwork, run: &DijkstraRun, source: NodeId, target: NodeId) -> NodeId {
    let mut cur = target;
    while let Some((p, _)) = run.prev_hop(cur) {
        if p != source && net.kind(p).is_switch() {
            return p;
        }
        cur = p;
    }
    panic!("users must be connected through at least one relay switch");
}

fn bench_topology(label: &str, switches: usize, seed: u64) -> Value {
    let net = scaled_network(switches, seed);
    let capacity = CapacityMap::new(&net);
    let users = net.users().to_vec();
    let csr = CsrGraph::from_graph(net.graph());
    let mut ws = DijkstraWorkspace::with_capacity(net.graph().node_count());

    // Pre-delta baselines for every user source, full capacity.
    let cfg = muerp_config(&net, &capacity);
    let baselines: Vec<DijkstraRun> = users
        .iter()
        .map(|&u| dijkstra_adj_into(&mut ws, &csr, net.graph(), u, &cfg).to_run())
        .collect();
    let victim = relay_victim(&net, &baselines[0], users[0], users[1]);

    // The worsening delta and its post-delta configuration.
    let mut degraded = capacity.clone();
    degraded.withdraw(victim, u32::MAX);
    let cfg_post = muerp_config(&net, &degraded);
    let mut delta = SsspDelta::new();
    delta.block_node(victim);
    let mut scratch = RepairScratch::new();

    // Sanity outside timing: the kill must actually dirty some tree.
    let repaired = baselines
        .iter()
        .filter(|run| {
            ws.load_run(run);
            let (_, stats) =
                dijkstra_repair_into(&mut ws, &mut scratch, &csr, net.graph(), &cfg_post, &delta);
            !stats.is_clean()
        })
        .count();
    assert!(repaired > 0, "{label}: victim {victim} misses every tree");

    // --- Graph layer: pure repair vs from-scratch, all sources per op.
    let finder_delta_repair = measure_ns_median(|| {
        for run in &baselines {
            ws.load_run(run);
            let out =
                dijkstra_repair_into(&mut ws, &mut scratch, &csr, net.graph(), &cfg_post, &delta);
            black_box(out.0.distance(users[0]));
        }
    });
    let finder_delta_wholesale = measure_ns_median(|| {
        for &u in &users {
            let view = dijkstra_adj_into(&mut ws, &csr, net.graph(), u, &cfg_post);
            black_box(view.distance(users[0]));
        }
    });
    // Repairing after a localized kill resettles only the affected
    // region; it must beat recomputing every tree by at least 2×. Quick
    // mode's tiny windows are too noisy to gate on.
    if !quick_mode() {
        assert!(
            finder_delta_repair <= finder_delta_wholesale * 0.5,
            "{label}: finder_delta_repair_ns ({finder_delta_repair:.1}) exceeds half of \
             finder_delta_wholesale_ns ({finder_delta_wholesale:.1}) — incremental repair \
             lost its reason to exist"
        );
    }

    // --- Cache layer: the dirty-set protocol end to end. Width 1 keeps
    // the numbers about classification, not thread hand-off.
    let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(1));
    let mut cap = capacity.clone();
    cache.warm(&cap, &users);
    let roomy = net
        .switches()
        .find(|&s| net.kind(s).qubits() >= 3)
        .expect("scaled networks have switches with spare qubits");
    let finder_delta_clean = measure_ns_median(|| {
        cap.withdraw(roomy, 1);
        cap.grant(roomy, 1);
        cache.warm(&cap, &users);
        black_box(cache.efficiency().hits);
    });
    let finder_delta_roundtrip = measure_ns_median(|| {
        cap.withdraw(victim, u32::MAX);
        cache.warm(&cap, &users);
        cap.grant(victim, u32::MAX);
        cache.warm(&cap, &users);
        black_box(cache.efficiency().repairs);
    });

    let rows = [
        ("finder_delta_repair_ns", finder_delta_repair),
        ("finder_delta_wholesale_ns", finder_delta_wholesale),
        ("finder_delta_clean_ns", finder_delta_clean),
        ("finder_delta_roundtrip_ns", finder_delta_roundtrip),
    ];
    println!("delta/{label} ({switches} switches, victim {victim}):");
    for (name, ns) in rows {
        println!("  {name:<26} {ns:>14.1} ns/op");
    }

    let mut obj: BTreeMap<String, Value> = BTreeMap::new();
    obj.insert("switches".into(), Value::from(switches as u64));
    obj.insert("users".into(), Value::from(users.len() as u64));
    obj.insert("repaired_sources".into(), Value::from(repaired as u64));
    for (name, ns) in rows {
        obj.insert(name.into(), Value::from(ns));
    }
    obj.insert(
        "repair_vs_wholesale_ratio".into(),
        Value::from(finder_delta_repair / finder_delta_wholesale),
    );
    obj.insert(
        "speedup_repair_vs_wholesale".into(),
        Value::from(finder_delta_wholesale / finder_delta_repair),
    );
    Value::Object(obj)
}

fn main() {
    // Deterministic numbers need a stable instrumentation level.
    qnet_obs::set_level(qnet_obs::ObsLevel::Off);

    let mut topologies: BTreeMap<String, Value> = BTreeMap::new();
    topologies.insert(
        "paper_default".into(),
        bench_topology("paper_default", 50, 42),
    );
    topologies.insert("waxman_240".into(), bench_topology("waxman_240", 240, 42));

    let mut host: BTreeMap<String, Value> = BTreeMap::new();
    host.insert(
        "available_parallelism".into(),
        Value::from(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64),
    );

    let mut report: BTreeMap<String, Value> = BTreeMap::new();
    report.insert("bench".into(), Value::from("delta"));
    report.insert("pr".into(), Value::from(9u64));
    report.insert("quick".into(), Value::from(quick_mode()));
    report.insert("unit".into(), Value::from("ns per all-user-sources op"));
    report.insert("host".into(), Value::Object(host));
    report.insert("topologies".into(), Value::Object(topologies));

    let path = write_bench_report("BENCH_pr9.json", &Value::Object(report));
    println!("wrote {}", path.display());
}
