//! One benchmark per paper figure: times the full regeneration pipeline
//! (topology generation × 5 algorithms × trials) for each panel of §V.
//!
//! The *data* these pipelines produce is what EXPERIMENTS.md records; the
//! bench verifies each panel regenerates in bounded time and tracks
//! regressions in the harness itself.

use criterion::{criterion_group, criterion_main, Criterion};
use muerp_experiments::figures;
use muerp_experiments::TrialConfig;

fn bench_cfg() -> TrialConfig {
    TrialConfig {
        trials: 3,
        base_seed: 9_000,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig5_topologies", |b| {
        b.iter(|| std::hint::black_box(figures::fig5(bench_cfg())))
    });
    group.bench_function("fig6a_users", |b| {
        b.iter(|| std::hint::black_box(figures::fig6a(bench_cfg())))
    });
    group.bench_function("fig6b_switches", |b| {
        b.iter(|| std::hint::black_box(figures::fig6b(bench_cfg())))
    });
    group.bench_function("fig7a_degree", |b| {
        b.iter(|| std::hint::black_box(figures::fig7a(bench_cfg())))
    });
    group.bench_function("fig7b_edge_removal", |b| {
        b.iter(|| std::hint::black_box(figures::fig7b(bench_cfg())))
    });
    group.bench_function("fig8a_qubits", |b| {
        b.iter(|| std::hint::black_box(figures::fig8a(bench_cfg())))
    });
    group.bench_function("fig8b_swap_rate", |b| {
        b.iter(|| std::hint::black_box(figures::fig8b(bench_cfg())))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
