//! Per-algorithm solve latency at growing network scale.
//!
//! §IV quotes `O(|U|(|E| + |V| log |V|))` for Algorithm 2 and
//! `O(|U|²(|E| + |V| log |V|))` for Algorithms 3/4; these benches expose
//! the empirical scaling so regressions (or accidental quadratic blowups
//! in the substrate) are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muerp_bench::scaled_network;
use muerp_core::prelude::*;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    group.sample_size(20);

    for &switches in &[25usize, 50, 100, 200] {
        let net = scaled_network(switches, 42);
        let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);

        group.bench_with_input(BenchmarkId::new("alg2", switches), &granted, |b, n| {
            b.iter(|| std::hint::black_box(OptimalSufficient.solve(n)))
        });
        group.bench_with_input(BenchmarkId::new("alg3", switches), &net, |b, n| {
            b.iter(|| std::hint::black_box(ConflictFree::default().solve(n)))
        });
        group.bench_with_input(BenchmarkId::new("alg4", switches), &net, |b, n| {
            b.iter(|| std::hint::black_box(PrimBased::with_seed(1).solve(n)))
        });
        group.bench_with_input(BenchmarkId::new("n_fusion", switches), &net, |b, n| {
            b.iter(|| std::hint::black_box(NFusion::default().solve(n)))
        });
        group.bench_with_input(BenchmarkId::new("e_q_cast", switches), &net, |b, n| {
            b.iter(|| std::hint::black_box(EQCast.solve(n)))
        });
    }
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    use muerp_core::algorithms::{max_rate_channel, ChannelFinder};
    let mut group = c.benchmark_group("algorithm1");
    for &switches in &[50usize, 200, 800] {
        let net = scaled_network(switches, 7);
        let cap = CapacityMap::new(&net);
        let users = net.users().to_vec();
        group.bench_with_input(BenchmarkId::new("single_pair", switches), &net, |b, n| {
            b.iter(|| std::hint::black_box(max_rate_channel(n, &cap, users[0], users[1])))
        });
        group.bench_with_input(
            BenchmarkId::new("single_source_all_users", switches),
            &net,
            |b, n| {
                b.iter(|| {
                    let finder = ChannelFinder::from_source(n, &cap, users[0]);
                    for &dst in &users[1..] {
                        std::hint::black_box(finder.channel_to(dst));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_algorithm1);
criterion_main!(benches);
