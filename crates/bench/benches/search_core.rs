//! Fresh-alloc vs reusable-workspace vs epoch-cached search paths.
//!
//! Every MUERP algorithm bottoms out in Algorithm 1's Dijkstra search;
//! this bench quantifies the three ways of invoking it that the search
//! workspace layer introduced:
//!
//! * **fresh** — the compatibility wrappers (`dijkstra`,
//!   `ChannelFinder::from_source`, `k_shortest_paths`): a private
//!   workspace is allocated per call and the result is materialized into
//!   owned buffers.
//! * **workspace** — the `_in` entry points on one long-lived
//!   [`DijkstraWorkspace`]: generation-stamped O(1) reset, zero
//!   steady-state allocation, borrowed result views.
//! * **cached** — [`ChannelFinderCache`] keyed by `(source, capacity
//!   epoch)`: repeat queries under unchanged capacity skip the search
//!   entirely; a `refresh` row shows the in-place re-run cost after an
//!   epoch bump.
//!
//! Run with `cargo bench -p muerp-bench --bench search_core`. Writes the
//! tracked baseline `BENCH_pr2.json` at the repo root (all numbers in
//! ns/op; each op covers *all* user sources, so per-search cost is
//! op / 10). `MUERP_BENCH_QUICK=1` shrinks the measurement window for CI
//! smoke runs — the file is still produced, the numbers are only good
//! for "did it run".

use muerp_bench::{measure_ns_median, quick_mode, scaled_network, write_bench_report};
use muerp_core::algorithms::{ChannelFinder, ChannelFinderCache};
use muerp_core::prelude::*;
use qnet_graph::ksp::{k_shortest_paths, k_shortest_paths_in};
use qnet_graph::paths::{dijkstra, dijkstra_into, DijkstraConfig, DijkstraWorkspace};
use qnet_graph::{EdgeRef, NodeId};
use serde_json::Value;
use std::collections::BTreeMap;
use std::hint::black_box;

const KSP_K: usize = 5;

/// The MUERP edge cost and relay filter, spelled out at the graph layer
/// (mirrors `ChannelFinder::from_source`) so the raw-Dijkstra rows
/// measure the same search the finder performs.
fn muerp_config<'a>(
    net: &'a QuantumNetwork,
    capacity: &'a CapacityMap,
) -> DijkstraConfig<impl Fn(EdgeRef<'_, f64>) -> f64 + 'a, impl Fn(NodeId) -> bool + 'a> {
    let alpha = net.physics().attenuation;
    let neg_ln_q = -(net.physics().swap_success.ln());
    DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: move |v: NodeId| net.kind(v).is_switch() && capacity.can_relay(v),
    }
}

fn bench_topology(label: &str, switches: usize, seed: u64) -> Value {
    let net = scaled_network(switches, seed);
    let capacity = CapacityMap::new(&net);
    let users = net.users().to_vec();
    let cfg = muerp_config(&net, &capacity);

    // --- Raw Dijkstra: one all-sources sweep per op. ---
    let dijkstra_fresh = measure_ns_median(|| {
        for &u in &users {
            black_box(dijkstra(net.graph(), u, &cfg));
        }
    });
    let mut ws = DijkstraWorkspace::with_capacity(net.graph().node_count());
    let dijkstra_workspace = measure_ns_median(|| {
        for &u in &users {
            let view = dijkstra_into(&mut ws, net.graph(), u, &cfg);
            black_box(view.distance(users[0]));
        }
    });

    // --- Algorithm 1 finder: sweep + one channel recovery per source. ---
    let finder_fresh = measure_ns_median(|| {
        for &u in &users {
            let finder = ChannelFinder::from_source(&net, &capacity, u);
            black_box(finder.channel_to(users[0]));
        }
    });
    let finder_workspace = measure_ns_median(|| {
        for &u in &users {
            let finder = ChannelFinder::from_source_in(&mut ws, &net, &capacity, u);
            black_box(finder.channel_to(users[0]));
        }
    });
    let mut cache = ChannelFinderCache::new(&net);
    // Warm the cache so the measured loop is pure epoch hits.
    for &u in &users {
        cache.finder(&capacity, u);
    }
    let finder_cached = measure_ns_median(|| {
        for &u in &users {
            black_box(cache.finder(&capacity, u).channel_to(users[0]));
        }
    });
    // Refresh path: bump the epoch each op, forcing one in-place re-run
    // per source (steady-state miss cost, no allocation).
    let mut refresh_capacity = capacity.clone();
    let probe = ChannelFinder::from_source(&net, &capacity, users[0])
        .channel_to(users[1])
        .expect("paper-default networks connect their users");
    let finder_refresh = measure_ns_median(|| {
        refresh_capacity.reserve(&probe);
        refresh_capacity.release(&probe);
        for &u in &users {
            black_box(cache.finder(&refresh_capacity, u).channel_to(users[0]));
        }
    });

    // --- Yen KSP between the first user pair. ---
    let (a, b) = (users[0], users[1]);
    let ksp_fresh = measure_ns_median(|| {
        black_box(k_shortest_paths(net.graph(), a, b, KSP_K, &cfg));
    });
    let ksp_workspace = measure_ns_median(|| {
        black_box(k_shortest_paths_in(&mut ws, net.graph(), a, b, KSP_K, &cfg));
    });

    let rows = [
        ("dijkstra_fresh_ns", dijkstra_fresh),
        ("dijkstra_workspace_ns", dijkstra_workspace),
        ("finder_fresh_ns", finder_fresh),
        ("finder_workspace_ns", finder_workspace),
        ("finder_cached_ns", finder_cached),
        ("finder_refresh_ns", finder_refresh),
        ("ksp_fresh_ns", ksp_fresh),
        ("ksp_workspace_ns", ksp_workspace),
    ];
    println!("search_core/{label} ({switches} switches):");
    for (name, ns) in rows {
        println!("  {name:<24} {ns:>14.1} ns/op");
    }

    let mut obj: BTreeMap<String, Value> = BTreeMap::new();
    obj.insert("switches".into(), Value::from(switches as u64));
    obj.insert("users".into(), Value::from(users.len() as u64));
    for (name, ns) in rows {
        obj.insert(name.into(), Value::from(ns));
    }
    obj.insert(
        "speedup_workspace_vs_fresh".into(),
        Value::from(dijkstra_fresh / dijkstra_workspace),
    );
    obj.insert(
        "speedup_cached_vs_fresh".into(),
        Value::from(finder_fresh / finder_cached),
    );
    Value::Object(obj)
}

fn main() {
    // Deterministic numbers need a stable instrumentation level.
    qnet_obs::set_level(qnet_obs::ObsLevel::Off);

    let mut topologies: BTreeMap<String, Value> = BTreeMap::new();
    topologies.insert(
        "paper_default".into(),
        bench_topology("paper_default", 50, 42),
    );
    // The quick (CI smoke) run skips the large topology: the point there
    // is report shape, not numbers.
    if !quick_mode() {
        topologies.insert("waxman_240".into(), bench_topology("waxman_240", 240, 42));
    }

    let mut report: BTreeMap<String, Value> = BTreeMap::new();
    report.insert("bench".into(), Value::from("search_core"));
    report.insert("pr".into(), Value::from(2u64));
    report.insert("quick".into(), Value::from(quick_mode()));
    report.insert("unit".into(), Value::from("ns per all-user-sources op"));
    report.insert("topologies".into(), Value::Object(topologies));

    let path = write_bench_report("BENCH_pr2.json", &Value::Object(report));
    println!("wrote {}", path.display());
}
