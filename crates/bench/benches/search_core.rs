//! Fresh-alloc vs workspace vs cached vs CSR vs pooled search paths.
//!
//! Every MUERP algorithm bottoms out in Algorithm 1's Dijkstra search;
//! this bench quantifies the ways of invoking it that the search
//! workspace, CSR adjacency, and worker-pool layers introduced:
//!
//! * **fresh** — the compatibility wrappers (`dijkstra`,
//!   `ChannelFinder::from_source`, `k_shortest_paths`): a private
//!   workspace is allocated per call and the result is materialized into
//!   owned buffers.
//! * **workspace** — the `_in` entry points on one long-lived
//!   [`DijkstraWorkspace`]: generation-stamped O(1) reset, zero
//!   steady-state allocation, borrowed result views.
//! * **csr** — the same workspace entry points traversing a
//!   [`CsrGraph`] structure-of-arrays adjacency instead of the
//!   per-node `Vec` lists (one contiguous arena, offset-indexed).
//! * **cached** — [`ChannelFinderCache`] keyed by `(source, capacity
//!   epoch)`: repeat queries under unchanged capacity skip the search
//!   entirely; a `refresh` row shows the in-place re-run cost after an
//!   epoch bump, and a `fill` row the same misses served into freshly
//!   allocated entries (the refresh ≤ fill invariant's denominator).
//! * **parallel** — `ChannelFinderCache::warm` batching all stale user
//!   sources across a [`Pool`] of N workers, measured at 1/2/4/8
//!   threads (results are bitwise identical at every width; only the
//!   wall clock moves).
//!
//! Run with `cargo bench -p muerp-bench --bench search_core`. Writes the
//! tracked baseline `BENCH_pr7.json` at the repo root (all numbers in
//! ns/op; each op covers *all* user sources, so per-search cost is
//! op / 10). `MUERP_BENCH_QUICK=1` shrinks the measurement window for CI
//! smoke runs — the file is still produced, the numbers are only good
//! for "did it run". Thread-scaling speedups are only meaningful when
//! the recorded `host.available_parallelism` exceeds the thread count;
//! on a single-core host every width measures the same work plus
//! hand-off overhead.

use muerp_bench::{
    measure_ns_median, measure_ns_paired, quick_mode, scaled_network, write_bench_report,
};
use muerp_core::algorithms::{ChannelFinder, ChannelFinderCache};
use muerp_core::prelude::*;
use qnet_graph::ksp::{k_shortest_paths, k_shortest_paths_adj_in, k_shortest_paths_in};
use qnet_graph::paths::{
    dijkstra, dijkstra_csr_into, dijkstra_into, DijkstraConfig, DijkstraWorkspace,
};
use qnet_graph::{CsrGraph, EdgeRef, NodeId};
use qnet_pool::Pool;
use serde_json::Value;
use std::collections::BTreeMap;
use std::hint::black_box;

const KSP_K: usize = 5;
/// Pool widths of the `finder_parallel_*` scaling rows.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The MUERP edge cost and relay filter, spelled out at the graph layer
/// (mirrors `ChannelFinder::from_source`) so the raw-Dijkstra rows
/// measure the same search the finder performs.
fn muerp_config<'a>(
    net: &'a QuantumNetwork,
    capacity: &'a CapacityMap,
) -> DijkstraConfig<impl Fn(EdgeRef<'_, f64>) -> f64 + 'a, impl Fn(NodeId) -> bool + 'a> {
    let alpha = net.physics().attenuation;
    let neg_ln_q = -(net.physics().swap_success.ln());
    DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: move |v: NodeId| net.kind(v).is_switch() && capacity.can_relay(v),
    }
}

fn bench_topology(label: &str, switches: usize, seed: u64, scaling: bool) -> Value {
    let net = scaled_network(switches, seed);
    let capacity = CapacityMap::new(&net);
    let users = net.users().to_vec();
    let cfg = muerp_config(&net, &capacity);
    let csr = CsrGraph::from_graph(net.graph());

    // --- Raw Dijkstra: one all-sources sweep per op. ---
    let dijkstra_fresh = measure_ns_median(|| {
        for &u in &users {
            black_box(dijkstra(net.graph(), u, &cfg));
        }
    });
    let mut ws = DijkstraWorkspace::with_capacity(net.graph().node_count());
    let dijkstra_workspace = measure_ns_median(|| {
        for &u in &users {
            let view = dijkstra_into(&mut ws, net.graph(), u, &cfg);
            black_box(view.distance(users[0]));
        }
    });
    let dijkstra_csr = measure_ns_median(|| {
        for &u in &users {
            let view = dijkstra_csr_into(&mut ws, &csr, net.graph(), u, &cfg);
            black_box(view.distance(users[0]));
        }
    });

    // --- Algorithm 1 finder: sweep + one channel recovery per source. ---
    let finder_workspace = measure_ns_median(|| {
        for &u in &users {
            let finder = ChannelFinder::from_source_in(&mut ws, &net, &capacity, u);
            black_box(finder.channel_to(users[0]));
        }
    });
    let mut cache = ChannelFinderCache::new(&net);
    // Warm the cache so the measured loop is pure epoch hits.
    for &u in &users {
        cache.finder(&capacity, u);
    }
    let finder_cached = measure_ns_median(|| {
        for &u in &users {
            black_box(cache.finder(&capacity, u).channel_to(users[0]));
        }
    });
    let finder_fresh = measure_ns_median(|| {
        for &u in &users {
            let finder = ChannelFinder::from_source(&net, &capacity, u);
            black_box(finder.channel_to(users[0]));
        }
    });
    // Fill vs refresh, measured as an interleaved pair because the
    // assertion below is about their *ratio*. Both ops bump the epoch
    // and re-search every source through the identical cache-miss code
    // path; the only difference is the result buffers — `clear()` makes
    // every miss a fill (fresh allocations), while the refresh op reuses
    // each entry's existing buffers in place.
    // RefCell because both halves of the pair mutate the same cache and
    // capacity map; the closures never run reentrantly.
    let cache = std::cell::RefCell::new(cache);
    let refresh_capacity = std::cell::RefCell::new(capacity.clone());
    let probe = ChannelFinder::from_source(&net, &capacity, users[0])
        .channel_to(users[1])
        .expect("paper-default networks connect their users");
    let (finder_fill, finder_refresh) = measure_ns_paired(
        || {
            let mut cache = cache.borrow_mut();
            let mut cap = refresh_capacity.borrow_mut();
            cap.reserve(&probe);
            cap.release(&probe);
            cache.clear();
            for &u in &users {
                black_box(cache.finder(&cap, u).channel_to(users[0]));
            }
        },
        || {
            let mut cache = cache.borrow_mut();
            let mut cap = refresh_capacity.borrow_mut();
            cap.reserve(&probe);
            cap.release(&probe);
            for &u in &users {
                black_box(cache.finder(&cap, u).channel_to(users[0]));
            }
        },
    );
    // A cache refresh recycles the entry's buffers and (since the fused
    // write-out) copies the result in one pass — it must not cost more
    // than the fill path that allocates those buffers from scratch. The
    // fill op is the *only* sound denominator for a tight gate here:
    // fresh (`ChannelFinder::from_source`) runs a differently
    // monomorphized search (graph adjacency, not CSR), and on this
    // host's single core the relative alignment luck of the two loops
    // swings their ratio by ±20% per compiled binary. Refresh-vs-fresh
    // is still reported (and loosely bounded) below; refresh-vs-fill is
    // the invariant. Quick mode's tiny windows are too noisy for either.
    if !quick_mode() {
        assert!(
            finder_refresh <= finder_fill * 1.05,
            "{label}: finder_refresh_ns ({finder_refresh:.1}) regressed past \
             finder_fill_ns ({finder_fill:.1}) — recycling buffers must not \
             cost more than allocating them"
        );
        assert!(
            finder_refresh <= finder_fresh * 1.30,
            "{label}: finder_refresh_ns ({finder_refresh:.1}) is far past \
             finder_fresh_ns ({finder_fresh:.1}); even code-layout noise \
             cannot explain >30%"
        );
    }

    // --- Yen KSP between the first user pair. ---
    let (a, b) = (users[0], users[1]);
    let ksp_fresh = measure_ns_median(|| {
        black_box(k_shortest_paths(net.graph(), a, b, KSP_K, &cfg));
    });
    let ksp_workspace = measure_ns_median(|| {
        black_box(k_shortest_paths_in(&mut ws, net.graph(), a, b, KSP_K, &cfg));
    });
    let ksp_csr = measure_ns_median(|| {
        black_box(k_shortest_paths_adj_in(
            &mut ws,
            &csr,
            net.graph(),
            a,
            b,
            KSP_K,
            &cfg,
        ));
    });

    let rows = [
        ("dijkstra_fresh_ns", dijkstra_fresh),
        ("dijkstra_workspace_ns", dijkstra_workspace),
        ("dijkstra_csr_ns", dijkstra_csr),
        ("finder_fresh_ns", finder_fresh),
        ("finder_workspace_ns", finder_workspace),
        ("finder_cached_ns", finder_cached),
        ("finder_fill_ns", finder_fill),
        ("finder_refresh_ns", finder_refresh),
        ("ksp_fresh_ns", ksp_fresh),
        ("ksp_workspace_ns", ksp_workspace),
        ("ksp_csr_ns", ksp_csr),
    ];
    println!("search_core/{label} ({switches} switches):");
    for (name, ns) in rows {
        println!("  {name:<24} {ns:>14.1} ns/op");
    }

    let mut obj: BTreeMap<String, Value> = BTreeMap::new();
    obj.insert("switches".into(), Value::from(switches as u64));
    obj.insert("users".into(), Value::from(users.len() as u64));
    for (name, ns) in rows {
        obj.insert(name.into(), Value::from(ns));
    }
    obj.insert(
        "speedup_workspace_vs_fresh".into(),
        Value::from(dijkstra_fresh / dijkstra_workspace),
    );
    obj.insert(
        "speedup_csr_vs_workspace".into(),
        Value::from(dijkstra_workspace / dijkstra_csr),
    );
    obj.insert(
        "speedup_cached_vs_fresh".into(),
        Value::from(finder_fresh / finder_cached),
    );

    // --- Pooled multi-source warm: all stale user sources per op. ---
    // Each op bumps the capacity epoch (invalidating every entry), then
    // `warm` refreshes the whole batch across the pool. Output is
    // thread-count-invariant; the rows measure pure wall-clock scaling.
    if scaling {
        let mut one_thread_ns = f64::NAN;
        for t in SCALING_THREADS {
            let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(t));
            let mut warm_capacity = capacity.clone();
            let ns = measure_ns_median(|| {
                warm_capacity.reserve(&probe);
                warm_capacity.release(&probe);
                cache.warm(&warm_capacity, &users);
                black_box(cache.finder(&warm_capacity, users[0]).channel_to(users[1]));
            });
            println!("  finder_parallel_{t}t_ns  {ns:>14.1} ns/op");
            obj.insert(format!("finder_parallel_{t}t_ns"), Value::from(ns));
            if t == 1 {
                one_thread_ns = ns;
            } else {
                obj.insert(
                    format!("speedup_parallel_{t}t_vs_1t"),
                    Value::from(one_thread_ns / ns),
                );
            }
        }
    }
    Value::Object(obj)
}

fn main() {
    // Deterministic numbers need a stable instrumentation level.
    qnet_obs::set_level(qnet_obs::ObsLevel::Off);

    let mut topologies: BTreeMap<String, Value> = BTreeMap::new();
    topologies.insert(
        "paper_default".into(),
        bench_topology("paper_default", 50, 42, false),
    );
    // The quick (CI smoke) run keeps the large tiers — the thread-pool
    // path must demonstrably run there — it only shrinks the windows.
    topologies.insert(
        "waxman_240".into(),
        bench_topology("waxman_240", 240, 42, true),
    );
    topologies.insert(
        "waxman_2400".into(),
        bench_topology("waxman_2400", 2400, 42, true),
    );

    let mut host: BTreeMap<String, Value> = BTreeMap::new();
    host.insert(
        "available_parallelism".into(),
        Value::from(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64),
    );

    let mut report: BTreeMap<String, Value> = BTreeMap::new();
    report.insert("bench".into(), Value::from("search_core"));
    report.insert("pr".into(), Value::from(7u64));
    report.insert("quick".into(), Value::from(quick_mode()));
    report.insert("unit".into(), Value::from("ns per all-user-sources op"));
    report.insert("host".into(), Value::Object(host));
    report.insert(
        "scaling_threads".into(),
        Value::from(SCALING_THREADS.map(|t| t as u64).to_vec()),
    );
    report.insert("topologies".into(), Value::Object(topologies));

    let path = write_bench_report("BENCH_pr7.json", &Value::Object(report));
    println!("wrote {}", path.display());
}
