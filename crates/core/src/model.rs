//! The quantum-network instance: topology, node roles, capacities, physics.
//!
//! This is the paper's §II model: an undirected graph `G = (V, E)` with
//! `V = U ∪ R` (users and switches), fiber edges with physical lengths,
//! uniform BSM swapping success rate `q`, and link success probability
//! `p = exp(−α·L)`.

use qnet_graph::{EdgeId, Graph, NodeId};
use qnet_topology::{SpatialGraph, TopologyKind, TopologySpec};
use serde::{Deserialize, Serialize};

use crate::rate::Rate;

/// The role of a node in the quantum internet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A quantum user (processor / computing node); assumed to have
    /// sufficient quantum memory (paper §II-A).
    User,
    /// A quantum switch with `qubits` quantum memories; serves at most
    /// `⌊qubits/2⌋` channels.
    Switch {
        /// Number of qubits in the switch's quantum memory.
        qubits: u32,
    },
}

impl NodeKind {
    /// `true` for a user node.
    pub fn is_user(self) -> bool {
        matches!(self, NodeKind::User)
    }

    /// `true` for a switch node.
    pub fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch { .. })
    }

    /// Qubit capacity: switches report their memory, users report
    /// effectively unlimited capacity (`u32::MAX`), per the paper's
    /// assumption that users have enough memory.
    pub fn qubits(self) -> u32 {
        match self {
            NodeKind::User => u32::MAX,
            NodeKind::Switch { qubits } => qubits,
        }
    }
}

/// Physical-layer parameters (paper §II-A / §V-A).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhysicsParams {
    /// Successful BSM swapping rate `q ∈ [0, 1]` (paper default 0.9).
    pub swap_success: f64,
    /// Fiber attenuation constant `α` per length unit (paper default
    /// 1e-4 with 1 unit ≈ 1 km).
    pub attenuation: f64,
}

impl PhysicsParams {
    /// The paper's §V-A defaults: `q = 0.9`, `α = 10⁻⁴`.
    pub fn paper_default() -> Self {
        PhysicsParams {
            swap_success: 0.9,
            attenuation: 1e-4,
        }
    }

    /// Link-level entanglement success probability over a fiber of the
    /// given length: `p = exp(−α·L)` (paper §II-A).
    pub fn link_success(&self, length: f64) -> Rate {
        Rate::from_prob((-self.attenuation * length).exp())
    }

    /// The swap success rate as a [`Rate`].
    pub fn swap_rate(&self) -> Rate {
        Rate::from_prob(self.swap_success)
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics when `swap_success ∉ [0, 1]` or `attenuation < 0`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.swap_success),
            "swap success rate must be in [0, 1], got {}",
            self.swap_success
        );
        assert!(
            self.attenuation >= 0.0,
            "attenuation must be non-negative, got {}",
            self.attenuation
        );
    }
}

/// A complete MUERP instance.
///
/// Wraps the spatial topology with node roles (`U ∪ R`), switch
/// capacities, and physics parameters. Construct via
/// [`QuantumNetwork::from_spatial`] or [`NetworkSpec::build`].
#[derive(Clone, Debug)]
pub struct QuantumNetwork {
    graph: Graph<NodeKind, f64>,
    users: Vec<NodeId>,
    physics: PhysicsParams,
}

impl QuantumNetwork {
    /// Builds an instance from a spatial topology: the nodes listed in
    /// `users` become quantum users, every other node becomes a switch
    /// with `qubits_per_switch` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `users` contains duplicates or out-of-range ids, or if
    /// `physics` is out of range.
    pub fn from_spatial(
        spatial: &SpatialGraph,
        users: &[NodeId],
        qubits_per_switch: u32,
        physics: PhysicsParams,
    ) -> Self {
        physics.validate();
        let n = spatial.node_count();
        let mut is_user = vec![false; n];
        for &u in users {
            assert!(u.index() < n, "user id {u} out of range ({n} nodes)");
            assert!(!is_user[u.index()], "duplicate user id {u}");
            is_user[u.index()] = true;
        }
        let mut graph: Graph<NodeKind, f64> = Graph::with_capacity(n, spatial.edge_count());
        for v in spatial.node_ids() {
            let kind = if is_user[v.index()] {
                NodeKind::User
            } else {
                NodeKind::Switch {
                    qubits: qubits_per_switch,
                }
            };
            graph.add_node(kind);
        }
        for e in spatial.edge_refs() {
            graph.add_edge(e.a, e.b, *e.payload);
        }
        QuantumNetwork {
            graph,
            users: users.to_vec(),
            physics,
        }
    }

    /// Builds an instance directly from a role-annotated graph (edge
    /// payloads are fiber lengths). Used by tests that need hand-crafted
    /// networks.
    ///
    /// # Panics
    ///
    /// Panics if `physics` is out of range.
    pub fn from_graph(graph: Graph<NodeKind, f64>, physics: PhysicsParams) -> Self {
        physics.validate();
        let users = graph
            .node_ids()
            .filter(|&v| graph.node(v).is_user())
            .collect();
        QuantumNetwork {
            graph,
            users,
            physics,
        }
    }

    /// Builds an instance from a role-annotated graph *and* an explicit
    /// user order. Unlike [`QuantumNetwork::from_graph`], the user list is
    /// taken verbatim — transforms that must preserve user order (the
    /// conformance harness's relabeling and scaling oracles, fixture
    /// loading) rely on this.
    ///
    /// # Panics
    ///
    /// Panics if `physics` is out of range, `users` has duplicates or
    /// out-of-range ids, a listed user is not a [`NodeKind::User`] node,
    /// or a user node is missing from `users`.
    pub fn from_parts(
        graph: Graph<NodeKind, f64>,
        users: Vec<NodeId>,
        physics: PhysicsParams,
    ) -> Self {
        physics.validate();
        let mut listed = vec![false; graph.node_count()];
        for &u in &users {
            assert!(
                u.index() < graph.node_count(),
                "user id {u} out of range ({} nodes)",
                graph.node_count()
            );
            assert!(!listed[u.index()], "duplicate user id {u}");
            assert!(graph.node(u).is_user(), "node {u} is not a user");
            listed[u.index()] = true;
        }
        for v in graph.node_ids() {
            assert!(
                !graph.node(v).is_user() || listed[v.index()],
                "user node {v} missing from the user list"
            );
        }
        QuantumNetwork {
            graph,
            users,
            physics,
        }
    }

    /// Returns a copy with every fiber length multiplied by `factor`,
    /// preserving node roles, user order, and physics. The conformance
    /// harness's scaling oracle uses this: scaling lengths by `c` must be
    /// observationally identical to scaling the attenuation `α` by `c`
    /// (Eq. 1 depends only on the products `α·Lᵢ`).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not finite and positive.
    pub fn with_scaled_lengths(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "length scale factor must be finite and positive, got {factor}"
        );
        QuantumNetwork {
            graph: self.graph.map_edges(|e| *e.payload * factor),
            users: self.users.clone(),
            physics: self.physics,
        }
    }

    /// The underlying graph: node payloads are [`NodeKind`], edge payloads
    /// are fiber lengths.
    pub fn graph(&self) -> &Graph<NodeKind, f64> {
        &self.graph
    }

    /// The quantum users `U`, in a stable order.
    pub fn users(&self) -> &[NodeId] {
        &self.users
    }

    /// Physics parameters (`q`, `α`).
    pub fn physics(&self) -> &PhysicsParams {
        &self.physics
    }

    /// Returns a copy where every switch has `qubits` qubits (used by the
    /// paper's Fig. 8(a) protocol, which always grants Algorithm 2
    /// switches with `2·|U|` qubits).
    pub fn with_uniform_switch_qubits(&self, qubits: u32) -> Self {
        let mut graph = self.graph.clone();
        for v in graph.node_ids() {
            if graph.node(v).is_switch() {
                *graph.node_mut(v) = NodeKind::Switch { qubits };
            }
        }
        QuantumNetwork {
            graph,
            users: self.users.clone(),
            physics: self.physics,
        }
    }

    /// Returns a copy with different physics (used by parameter sweeps).
    pub fn with_physics(&self, physics: PhysicsParams) -> Self {
        physics.validate();
        QuantumNetwork {
            graph: self.graph.clone(),
            users: self.users.clone(),
            physics,
        }
    }

    /// Role of node `v`.
    pub fn kind(&self, v: NodeId) -> NodeKind {
        *self.graph.node(v)
    }

    /// `true` when `v` is a user.
    pub fn is_user(&self, v: NodeId) -> bool {
        self.kind(v).is_user()
    }

    /// Fiber length of edge `e`.
    pub fn length(&self, e: EdgeId) -> f64 {
        *self.graph.edge(e).payload
    }

    /// Link success probability of edge `e`: `exp(−α·L(e))`.
    pub fn link_rate(&self, e: EdgeId) -> Rate {
        self.physics.link_success(self.length(e))
    }

    /// Iterates over switch nodes.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .node_ids()
            .filter(move |&v| self.kind(v).is_switch())
    }

    /// Number of users `|U|`.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of switches `|R|`.
    pub fn switch_count(&self) -> usize {
        self.graph.node_count() - self.users.len()
    }
}

/// Declarative MUERP instance specification — everything §V-A varies.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Topology generator and size (switches + users all placed randomly).
    pub topology: TopologySpec,
    /// Number of quantum users `|U|` drawn uniformly from the placed
    /// nodes; the rest become switches.
    pub users: usize,
    /// Qubits per switch (paper default 4).
    pub qubits_per_switch: u32,
    /// Physics parameters.
    pub physics: PhysicsParams,
}

impl NetworkSpec {
    /// The paper's full default setup (§V-A): Waxman topology, 50 switches
    /// plus 10 users, average degree 6, 4 qubits per switch, `q = 0.9`,
    /// `α = 10⁻⁴`, 10 000 × 10 000 area.
    pub fn paper_default() -> Self {
        NetworkSpec {
            topology: TopologySpec {
                kind: TopologyKind::Waxman,
                nodes: 60,
                avg_degree: 6.0,
                area: 10_000.0,
            },
            users: 10,
            qubits_per_switch: 4,
            physics: PhysicsParams::paper_default(),
        }
    }

    /// Builder-style: sets the user count, keeping the switch count by
    /// adjusting the total node count.
    #[must_use]
    pub fn with_users(mut self, users: usize) -> Self {
        let switches = self.topology.nodes.saturating_sub(self.users);
        self.users = users;
        self.topology.nodes = switches + users;
        self
    }

    /// Builder-style: sets the per-switch qubit count.
    #[must_use]
    pub fn with_qubits(mut self, qubits: u32) -> Self {
        self.qubits_per_switch = qubits;
        self
    }

    /// Builder-style: sets the topology generator kind.
    #[must_use]
    pub fn with_topology(mut self, kind: qnet_topology::TopologyKind) -> Self {
        self.topology.kind = kind;
        self
    }

    /// Builder-style: sets the swap success rate `q`.
    #[must_use]
    pub fn with_swap_success(mut self, q: f64) -> Self {
        self.physics.swap_success = q;
        self
    }

    /// Generates the instance deterministically from `seed`: node
    /// placement, wiring, and the random choice of which nodes are users
    /// all derive from it.
    ///
    /// # Panics
    ///
    /// Panics if `users > topology.nodes`.
    pub fn build(&self, seed: u64) -> QuantumNetwork {
        let spatial = self.topology.generate(seed);
        self.build_from_spatial(&spatial, seed)
    }

    /// Like [`NetworkSpec::build`], but over an externally supplied (or
    /// modified) spatial topology — the Fig. 7(b) edge-removal experiment
    /// generates one topology and then strips fibers from it while keeping
    /// the same user placement.
    ///
    /// # Panics
    ///
    /// Panics if `users > spatial.node_count()`.
    pub fn build_from_spatial(
        &self,
        spatial: &qnet_topology::SpatialGraph,
        seed: u64,
    ) -> QuantumNetwork {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        assert!(
            self.users <= spatial.node_count(),
            "cannot pick {} users from {} nodes",
            self.users,
            spatial.node_count()
        );
        // Derive the user choice from an offset seed so topology and user
        // placement are independent but both reproducible.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut ids: Vec<NodeId> = spatial.node_ids().collect();
        ids.shuffle(&mut rng);
        let users = &ids[..self.users];
        QuantumNetwork::from_spatial(spatial, users, self.qubits_per_switch, self.physics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_builds() {
        let net = NetworkSpec::paper_default().build(1);
        assert_eq!(net.user_count(), 10);
        assert_eq!(net.switch_count(), 50);
        assert_eq!(net.graph().edge_count(), 180);
        for &u in net.users() {
            assert!(net.is_user(u));
        }
        assert_eq!(net.switches().count(), 50);
    }

    #[test]
    fn deterministic_builds() {
        let spec = NetworkSpec::paper_default();
        let a = spec.build(9);
        let b = spec.build(9);
        assert_eq!(a.users(), b.users());
        let ea: Vec<_> = a.graph().edge_refs().map(|e| (e.a, e.b)).collect();
        let eb: Vec<_> = b.graph().edge_refs().map(|e| (e.a, e.b)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn link_rate_follows_exponential_decay() {
        let physics = PhysicsParams::paper_default();
        let p1 = physics.link_success(1000.0).value();
        assert!((p1 - (-0.1f64).exp()).abs() < 1e-12);
        let p0 = physics.link_success(0.0).value();
        assert_eq!(p0, 1.0);
        // Longer fibers are strictly worse.
        assert!(physics.link_success(2000.0) < physics.link_success(1000.0));
    }

    #[test]
    fn node_kind_capacity_semantics() {
        assert!(NodeKind::User.is_user());
        assert!(!NodeKind::User.is_switch());
        assert_eq!(NodeKind::User.qubits(), u32::MAX);
        let s = NodeKind::Switch { qubits: 4 };
        assert!(s.is_switch());
        assert_eq!(s.qubits(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate user id")]
    fn duplicate_users_rejected() {
        let spatial = TopologySpec::paper_default().generate(3);
        let u = NodeId::new(0);
        QuantumNetwork::from_spatial(&spatial, &[u, u], 4, PhysicsParams::paper_default());
    }

    #[test]
    #[should_panic(expected = "swap success rate")]
    fn bad_physics_rejected() {
        let physics = PhysicsParams {
            swap_success: 1.5,
            attenuation: 1e-4,
        };
        let spatial = TopologySpec::paper_default().generate(3);
        QuantumNetwork::from_spatial(&spatial, &[NodeId::new(0)], 4, physics);
    }

    #[test]
    fn builder_methods_compose() {
        let spec = NetworkSpec::paper_default()
            .with_users(6)
            .with_qubits(8)
            .with_topology(qnet_topology::TopologyKind::Volchenkov)
            .with_swap_success(0.8);
        assert_eq!(spec.users, 6);
        assert_eq!(spec.topology.nodes, 56, "switch count preserved");
        assert_eq!(spec.qubits_per_switch, 8);
        assert_eq!(spec.physics.swap_success, 0.8);
        let net = spec.build(1);
        assert_eq!(net.user_count(), 6);
        assert_eq!(net.switch_count(), 50);
        assert!(net.switches().all(|s| net.kind(s).qubits() == 8));
    }

    #[test]
    fn with_uniform_switch_qubits_rewrites_switches_only() {
        let net = NetworkSpec::paper_default().build(7);
        let granted = net.with_uniform_switch_qubits(20);
        for s in granted.switches() {
            assert_eq!(granted.kind(s).qubits(), 20);
        }
        assert_eq!(granted.users(), net.users());
        assert!(granted.users().iter().all(|&u| granted.is_user(u)));
    }

    #[test]
    fn build_from_spatial_matches_build() {
        let spec = NetworkSpec::paper_default();
        let spatial = spec.topology.generate(3);
        let a = spec.build(3);
        let b = spec.build_from_spatial(&spatial, 3);
        assert_eq!(a.users(), b.users());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn from_parts_preserves_user_order() {
        let net = NetworkSpec::paper_default().build(11);
        let mut users = net.users().to_vec();
        users.reverse();
        let rebuilt =
            QuantumNetwork::from_parts(net.graph().clone(), users.clone(), *net.physics());
        assert_eq!(rebuilt.users(), &users[..]);
        assert_eq!(rebuilt.user_count(), net.user_count());
    }

    #[test]
    #[should_panic(expected = "missing from the user list")]
    fn from_parts_rejects_incomplete_user_list() {
        let net = NetworkSpec::paper_default().build(11);
        let users = net.users()[..5].to_vec();
        QuantumNetwork::from_parts(net.graph().clone(), users, *net.physics());
    }

    #[test]
    fn with_scaled_lengths_scales_every_fiber() {
        let net = NetworkSpec::paper_default().build(4);
        let doubled = net.with_scaled_lengths(2.0);
        assert_eq!(doubled.users(), net.users());
        for e in net.graph().edge_ids() {
            assert!((doubled.length(e) - 2.0 * net.length(e)).abs() < 1e-12 * net.length(e));
        }
    }

    #[test]
    fn with_physics_swaps_parameters() {
        let net = NetworkSpec::paper_default().build(2);
        let new = net.with_physics(PhysicsParams {
            swap_success: 0.5,
            attenuation: 1e-4,
        });
        assert_eq!(new.physics().swap_success, 0.5);
        assert_eq!(new.user_count(), net.user_count());
    }
}
