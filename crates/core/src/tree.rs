//! Entanglement trees (paper Eq. 2, Definition 1) and their validation.
//!
//! An *entanglement tree* over a user set `U` is a tree whose vertices are
//! the users and whose edges are quantum channels; its rate is the product
//! of the channel rates. A valid MUERP solution is an entanglement tree
//! that additionally respects every switch's qubit capacity, with total
//! demand summed over *all* channels passing through the switch.

use std::collections::HashMap;

use qnet_graph::{NodeId, UnionFind};

use crate::channel::Channel;
use crate::error::ValidationError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;

/// A set of quantum channels forming an entanglement tree over the users.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct EntanglementTree {
    /// The channels (tree edges); `|U| − 1` of them in a valid solution.
    pub channels: Vec<Channel>,
}

impl EntanglementTree {
    /// An empty tree (valid only for `|U| ≤ 1`).
    pub fn new() -> Self {
        EntanglementTree::default()
    }

    /// The tree rate: the product of all channel rates (paper Eq. 2).
    pub fn rate(&self) -> Rate {
        self.channels.iter().map(|c| c.rate).product()
    }

    /// Adds a channel.
    pub fn push(&mut self, channel: Channel) {
        self.channels.push(channel);
    }

    /// Total qubit demand per switch across all channels (2 per interior
    /// visit).
    pub fn qubit_demand(&self) -> HashMap<NodeId, u32> {
        let mut demand = HashMap::new();
        for c in &self.channels {
            for &s in c.interior_switches() {
                *demand.entry(s).or_insert(0) += 2;
            }
        }
        demand
    }

    /// Full MUERP validity check against a network:
    ///
    /// 1. every channel individually validates (endpoints users, interior
    ///    switches, simple path, correct rate);
    /// 2. at most one channel per user pair;
    /// 3. the channels form a spanning tree over `U` (exactly `|U| − 1`
    ///    channels, acyclic, connecting all users);
    /// 4. per-switch qubit demand within capacity.
    pub fn validate(&self, net: &QuantumNetwork) -> Result<(), ValidationError> {
        for c in &self.channels {
            c.validate(net)?;
        }

        let mut pairs = std::collections::HashSet::new();
        for c in &self.channels {
            if !pairs.insert(c.user_pair()) {
                let (a, b) = c.user_pair();
                return Err(ValidationError::DuplicateUserPair { a, b });
            }
        }

        let users = net.users();
        if self.channels.len() + 1 != users.len() {
            return Err(ValidationError::NotSpanningTree {
                detail: format!(
                    "{} channels cannot span {} users (need {})",
                    self.channels.len(),
                    users.len(),
                    users.len().saturating_sub(1)
                ),
            });
        }
        let mut uf = UnionFind::new(net.graph().node_count());
        for c in &self.channels {
            if !uf.union_nodes(c.source(), c.destination()) {
                return Err(ValidationError::NotSpanningTree {
                    detail: format!(
                        "cycle: channel {} – {} joins already-connected users",
                        c.source(),
                        c.destination()
                    ),
                });
            }
        }
        if !uf.all_same_set(users.iter().map(|u| u.index())) {
            return Err(ValidationError::NotSpanningTree {
                detail: "users left in separate components".into(),
            });
        }

        for (s, demanded) in self.qubit_demand() {
            let available = net.kind(s).qubits();
            if demanded > available {
                return Err(ValidationError::CapacityExceeded {
                    node: s,
                    demanded,
                    available,
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<Channel> for EntanglementTree {
    fn from_iter<I: IntoIterator<Item = Channel>>(iter: I) -> Self {
        EntanglementTree {
            channels: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NodeKind, PhysicsParams};
    use qnet_graph::paths::Path;
    use qnet_graph::Graph;

    /// Three users around one 4-qubit switch (the paper's Fig. 4a).
    fn fig4a() -> (QuantumNetwork, [NodeId; 4]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let alice = g.add_node(NodeKind::User);
        let bob = g.add_node(NodeKind::User);
        let carol = g.add_node(NodeKind::User);
        let switch = g.add_node(NodeKind::Switch { qubits: 4 });
        g.add_edge(alice, switch, 1000.0);
        g.add_edge(bob, switch, 1000.0);
        g.add_edge(carol, switch, 1000.0);
        (
            QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
            [alice, bob, carol, switch],
        )
    }

    fn chan(net: &QuantumNetwork, nodes: Vec<NodeId>) -> Channel {
        let edges = nodes
            .windows(2)
            .map(|w| net.graph().find_edge(w[0], w[1]).unwrap())
            .collect();
        Channel::from_path(
            net,
            Path {
                nodes,
                edges,
                cost: 0.0,
            },
        )
    }

    #[test]
    fn fig4a_tree_is_valid_and_rate_is_product() {
        let (net, [alice, bob, carol, switch]) = fig4a();
        let c1 = chan(&net, vec![alice, switch, bob]);
        let c2 = chan(&net, vec![alice, switch, carol]);
        let tree: EntanglementTree = [c1.clone(), c2.clone()].into_iter().collect();
        assert!(tree.validate(&net).is_ok());
        // Rate = (p²q)² with p = exp(-0.1), q = 0.9.
        let expected = c1.rate.value() * c2.rate.value();
        assert!((tree.rate().value() - expected).abs() < 1e-15);
        // The switch uses all four qubits.
        assert_eq!(tree.qubit_demand()[&switch], 4);
    }

    #[test]
    fn fig4b_capacity_violation_detected() {
        // Same topology but a 2-qubit switch: the paper's Fig. 4(b)
        // discussion — classic connectivity holds, MUERP infeasible.
        let (net, ids) = fig4a();
        let mut g = net.graph().clone();
        *g.node_mut(ids[3]) = NodeKind::Switch { qubits: 2 };
        let net = QuantumNetwork::from_graph(g, *net.physics());
        let [alice, bob, carol, switch] = ids;
        let tree: EntanglementTree = [
            chan(&net, vec![alice, switch, bob]),
            chan(&net, vec![alice, switch, carol]),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            tree.validate(&net),
            Err(ValidationError::CapacityExceeded {
                node: switch,
                demanded: 4,
                available: 2
            })
        );
    }

    #[test]
    fn wrong_channel_count_rejected() {
        let (net, [alice, _bob, _carol, switch]) = fig4a();
        let tree: EntanglementTree = [chan(&net, vec![alice, switch, _bob])]
            .into_iter()
            .collect();
        assert!(matches!(
            tree.validate(&net),
            Err(ValidationError::NotSpanningTree { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        // 3 users, 3 channels — one too many, and cyclic.
        let (net, [alice, bob, carol, switch]) = fig4a();
        let mut g = net.graph().clone();
        *g.node_mut(switch) = NodeKind::Switch { qubits: 6 };
        let net = QuantumNetwork::from_graph(g, *net.physics());
        let tree: EntanglementTree = [
            chan(&net, vec![alice, switch, bob]),
            chan(&net, vec![bob, switch, carol]),
            chan(&net, vec![carol, switch, alice]),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            tree.validate(&net),
            Err(ValidationError::NotSpanningTree { .. })
        ));
    }

    #[test]
    fn duplicate_pair_rejected() {
        let (net, [alice, bob, _carol, switch]) = fig4a();
        let tree: EntanglementTree = [
            chan(&net, vec![alice, switch, bob]),
            chan(&net, vec![bob, switch, alice]),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            tree.validate(&net),
            Err(ValidationError::DuplicateUserPair { a: alice, b: bob })
        );
    }

    #[test]
    fn empty_tree_rate_is_one() {
        assert_eq!(EntanglementTree::new().rate(), Rate::ONE);
    }
}
