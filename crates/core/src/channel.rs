//! Quantum channels (paper Eq. 1) and switch-capacity bookkeeping.
//!
//! A *channel* is a width-1 path between two quantum users whose interior
//! vertices are switches; each interior switch dedicates 2 qubits to the
//! channel (one per adjacent quantum link). Its entanglement rate is
//!
//! ```text
//! P_Λ = q^(l−1) · exp(−α · Σ Lᵢ)
//! ```
//!
//! where `l` is the number of quantum links. Optical fibers are multi-core
//! and uncapacitated (paper §II-A), so two channels may share a fiber —
//! only switch qubits are scarce, tracked by [`CapacityMap`].

use qnet_graph::paths::Path;
use qnet_graph::NodeId;

use crate::error::ValidationError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;

/// A quantum channel: a user-to-user path plus its entanglement rate.
#[derive(Clone, Debug, PartialEq)]
pub struct Channel {
    /// The underlying path (nodes, edges, and `−ln` cost).
    pub path: Path,
    /// The channel's entanglement rate per Eq. 1.
    pub rate: Rate,
}

impl Channel {
    /// Builds a channel from a path, computing Eq. 1 from the network's
    /// physics: product of per-link `exp(−α·L)` times `q^(l−1)`.
    ///
    /// # Panics
    ///
    /// Panics if the path has no edges (a channel connects two *distinct*
    /// users).
    pub fn from_path(net: &QuantumNetwork, path: Path) -> Self {
        assert!(!path.edges.is_empty(), "a channel needs at least one link");
        let links: Rate = path.edges.iter().map(|&e| net.link_rate(e)).product();
        let swaps = net.physics().swap_rate().powi(path.edges.len() as u32 - 1);
        let rate = links * swaps;
        Channel { path, rate }
    }

    /// Source user.
    pub fn source(&self) -> NodeId {
        self.path.source()
    }

    /// Destination user.
    pub fn destination(&self) -> NodeId {
        self.path.destination()
    }

    /// The unordered user pair this channel connects, normalized so the
    /// smaller id comes first (the model allows at most one channel per
    /// pair).
    pub fn user_pair(&self) -> (NodeId, NodeId) {
        let (a, b) = (self.source(), self.destination());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Number of quantum links (`l` in Eq. 1).
    pub fn link_count(&self) -> usize {
        self.path.edges.len()
    }

    /// Interior switches of the channel (each consumes 2 qubits).
    pub fn interior_switches(&self) -> &[NodeId] {
        self.path.interior()
    }

    /// Structural validation against a network: endpoints are users,
    /// interior nodes are switches, the path is simple, edges connect
    /// their claimed endpoints, and the stored rate matches Eq. 1.
    pub fn validate(&self, net: &QuantumNetwork) -> Result<(), ValidationError> {
        let nodes = &self.path.nodes;
        if nodes.len() < 2 {
            return Err(ValidationError::NotSpanningTree {
                detail: "channel with fewer than two nodes".into(),
            });
        }
        for &endpoint in [self.source(), self.destination()].iter() {
            if !net.is_user(endpoint) {
                return Err(ValidationError::EndpointNotUser { node: endpoint });
            }
        }
        for &mid in self.path.interior() {
            if net.is_user(mid) {
                return Err(ValidationError::InteriorNotSwitch { node: mid });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &v in nodes {
            if !seen.insert(v) {
                return Err(ValidationError::NotSimplePath { node: v });
            }
        }
        if self.path.edges.len() != nodes.len() - 1 {
            return Err(ValidationError::BrokenPath);
        }
        for (i, &e) in self.path.edges.iter().enumerate() {
            let (a, b) = net.graph().endpoints(e);
            let (x, y) = (nodes[i], nodes[i + 1]);
            if !((a == x && b == y) || (a == y && b == x)) {
                return Err(ValidationError::BrokenPath);
            }
        }
        let recomputed = Channel::from_path(net, self.path.clone()).rate;
        if (recomputed.value() - self.rate.value()).abs() > 1e-9 * recomputed.value().max(1e-300) {
            return Err(ValidationError::RateMismatch {
                claimed: self.rate.value(),
                recomputed: recomputed.value(),
            });
        }
        Ok(())
    }
}

/// Process-wide source of capacity epochs.
///
/// Every mutation of *any* [`CapacityMap`] draws a globally fresh epoch,
/// so equal epochs imply equal contents even across clones that diverge
/// (beam search clones a map per beam state): two maps can only share an
/// epoch if one is an unmutated clone of the other.
static EPOCH_SOURCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_epoch() -> u64 {
    EPOCH_SOURCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
}

/// Residual qubit capacity per node.
///
/// Users are unconstrained (tracked as `u32::MAX`, never decremented in
/// practice because channels only consume interior-switch qubits).
///
/// Each map carries an [`epoch`](CapacityMap::epoch) that changes
/// whenever its contents change; run caches (see
/// `algorithms::ChannelFinderCache`) key on it to detect staleness in
/// O(1) instead of diffing capacities.
#[derive(Clone, Debug)]
pub struct CapacityMap {
    free: Vec<u32>,
    epoch: u64,
}

impl PartialEq for CapacityMap {
    /// Equality is by *content*; the epoch is an identity tag, not state
    /// (two maps with equal capacities compare equal even if they were
    /// mutated along different histories).
    fn eq(&self, other: &Self) -> bool {
        self.free == other.free
    }
}

impl Eq for CapacityMap {}

impl CapacityMap {
    /// Initial capacities from a network: each switch starts with its full
    /// qubit count.
    pub fn new(net: &QuantumNetwork) -> Self {
        CapacityMap {
            free: net
                .graph()
                .node_ids()
                .map(|v| net.kind(v).qubits())
                .collect(),
            epoch: next_epoch(),
        }
    }

    /// A capacity map where every node is unconstrained — the regime of
    /// the paper's Algorithm 2 sufficient condition.
    pub fn unbounded(net: &QuantumNetwork) -> Self {
        CapacityMap {
            free: vec![u32::MAX; net.graph().node_count()],
            epoch: next_epoch(),
        }
    }

    /// Epoch tag: changes (to a process-globally fresh value) on every
    /// mutation, so `a.epoch() == b.epoch()` implies `a == b`. Clones
    /// keep their parent's epoch until either side mutates.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Remaining free qubits at `v`.
    pub fn free(&self, v: NodeId) -> u32 {
        self.free[v.index()]
    }

    /// `true` when `v` can relay one more channel (≥ 2 free qubits).
    pub fn can_relay(&self, v: NodeId) -> bool {
        self.free[v.index()] >= 2
    }

    /// `true` when every interior switch of `channel` has ≥ 2 free qubits.
    pub fn admits(&self, channel: &Channel) -> bool {
        channel
            .interior_switches()
            .iter()
            .all(|&s| self.can_relay(s))
    }

    /// Reserves 2 qubits at every interior switch of `channel`.
    ///
    /// # Panics
    ///
    /// Panics if some interior switch lacks capacity — call
    /// [`CapacityMap::admits`] first.
    pub fn reserve(&mut self, channel: &Channel) {
        assert!(
            self.admits(channel),
            "reserve called on a channel the capacity map does not admit"
        );
        // A direct user–user channel consumes no switch qubits: contents
        // are unchanged, so the epoch (and any cache keyed on it) stays
        // valid.
        if channel.interior_switches().is_empty() {
            return;
        }
        for &s in channel.interior_switches() {
            self.free[s.index()] = self.free[s.index()].saturating_sub(2);
        }
        self.epoch = next_epoch();
    }

    /// Releases the 2 qubits per interior switch previously reserved for
    /// `channel`. Saturates at `u32::MAX` for unbounded entries.
    pub fn release(&mut self, channel: &Channel) {
        if channel.interior_switches().is_empty() {
            return;
        }
        for &s in channel.interior_switches() {
            self.free[s.index()] = self.free[s.index()].saturating_add(2);
        }
        self.epoch = next_epoch();
    }

    /// Permanently removes `qubits` free qubits at `v` (saturating at
    /// zero) — the survivability layer's qubit-capacity degradation.
    ///
    /// Unlike [`CapacityMap::reserve`], nothing can ever release a
    /// withdrawal: the qubits are gone, not lent to a channel. A
    /// zero-qubit withdrawal changes nothing and keeps the epoch (so
    /// caches stay warm).
    pub fn withdraw(&mut self, v: NodeId, qubits: u32) {
        if qubits == 0 {
            return;
        }
        self.free[v.index()] = self.free[v.index()].saturating_sub(qubits);
        self.epoch = next_epoch();
    }

    /// Returns `qubits` free qubits to `v` (saturating at `u32::MAX`) —
    /// the inverse of [`CapacityMap::withdraw`], used by the stream
    /// scenario's churn arm to model a degraded switch coming back. A
    /// zero-qubit grant changes nothing and keeps the epoch.
    pub fn grant(&mut self, v: NodeId, qubits: u32) {
        if qubits == 0 {
            return;
        }
        self.free[v.index()] = self.free[v.index()].saturating_add(qubits);
        self.epoch = next_epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NodeKind, PhysicsParams};
    use qnet_graph::Graph;

    /// u0 — s1 — u2, link lengths 1000 each; plus direct u0—u2 of 5000.
    fn line_net() -> (QuantumNetwork, [NodeId; 3]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 4 });
        let u2 = g.add_node(NodeKind::User);
        g.add_edge(u0, s1, 1000.0);
        g.add_edge(s1, u2, 1000.0);
        g.add_edge(u0, u2, 5000.0);
        (
            QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
            [u0, s1, u2],
        )
    }

    fn channel_via_switch(net: &QuantumNetwork, nodes: Vec<NodeId>) -> Channel {
        let edges = nodes
            .windows(2)
            .map(|w| net.graph().find_edge(w[0], w[1]).unwrap())
            .collect();
        let path = Path {
            nodes,
            edges,
            cost: 0.0,
        };
        Channel::from_path(net, path)
    }

    #[test]
    fn eq1_rate_two_links_one_swap() {
        let (net, [u0, s1, u2]) = line_net();
        let c = channel_via_switch(&net, vec![u0, s1, u2]);
        // p = exp(-1e-4 * 1000) = exp(-0.1) per link; q = 0.9; rate = p²q.
        let p = (-0.1f64).exp();
        assert!((c.rate.value() - p * p * 0.9).abs() < 1e-12);
        assert_eq!(c.link_count(), 2);
        assert_eq!(c.interior_switches(), &[s1]);
        assert!(c.validate(&net).is_ok());
    }

    #[test]
    fn eq1_rate_direct_link_no_swap() {
        let (net, [u0, _s1, u2]) = line_net();
        let c = channel_via_switch(&net, vec![u0, u2]);
        let p = (-0.5f64).exp();
        assert!((c.rate.value() - p).abs() < 1e-12);
        assert!(c.interior_switches().is_empty());
        assert!(c.validate(&net).is_ok());
    }

    #[test]
    fn user_pair_is_normalized() {
        let (net, [u0, s1, u2]) = line_net();
        let forward = channel_via_switch(&net, vec![u0, s1, u2]);
        let backward = channel_via_switch(&net, vec![u2, s1, u0]);
        assert_eq!(forward.user_pair(), backward.user_pair());
    }

    #[test]
    fn validate_rejects_switch_endpoint() {
        let (net, [u0, s1, _u2]) = line_net();
        let c = channel_via_switch(&net, vec![u0, s1]);
        assert_eq!(
            c.validate(&net),
            Err(ValidationError::EndpointNotUser { node: s1 })
        );
    }

    #[test]
    fn validate_rejects_user_interior() {
        // u0 - u2 - ... : fabricate a path that relays through user u2.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        g.add_edge(u0, u1, 10.0);
        g.add_edge(u1, u2, 10.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let c = channel_via_switch(&net, vec![u0, u1, u2]);
        assert_eq!(
            c.validate(&net),
            Err(ValidationError::InteriorNotSwitch { node: u1 })
        );
    }

    #[test]
    fn validate_rejects_tampered_rate() {
        let (net, [u0, s1, u2]) = line_net();
        let mut c = channel_via_switch(&net, vec![u0, s1, u2]);
        c.rate = Rate::from_prob(0.5);
        assert!(matches!(
            c.validate(&net),
            Err(ValidationError::RateMismatch { .. })
        ));
    }

    #[test]
    fn capacity_reserve_release_cycle() {
        let (net, [u0, s1, u2]) = line_net();
        let c = channel_via_switch(&net, vec![u0, s1, u2]);
        let mut cap = CapacityMap::new(&net);
        assert_eq!(cap.free(s1), 4);
        assert!(cap.admits(&c));
        cap.reserve(&c);
        assert_eq!(cap.free(s1), 2);
        assert!(cap.can_relay(s1));
        cap.reserve(&c);
        assert_eq!(cap.free(s1), 0);
        assert!(!cap.admits(&c));
        cap.release(&c);
        assert_eq!(cap.free(s1), 2);
    }

    #[test]
    #[should_panic(expected = "does not admit")]
    fn reserve_without_capacity_panics() {
        let (net, [u0, s1, u2]) = line_net();
        let c = channel_via_switch(&net, vec![u0, s1, u2]);
        let mut cap = CapacityMap::new(&net);
        cap.reserve(&c);
        cap.reserve(&c);
        cap.reserve(&c); // third reservation exceeds 4 qubits
    }

    #[test]
    fn users_are_never_capacity_limited() {
        let (net, [u0, _s1, _u2]) = line_net();
        let cap = CapacityMap::new(&net);
        assert_eq!(cap.free(u0), u32::MAX);
        assert!(cap.can_relay(u0), "users have unbounded memory");
    }

    #[test]
    fn epoch_tracks_mutation_and_clone_identity() {
        let (net, [u0, s1, u2]) = line_net();
        let via_switch = channel_via_switch(&net, vec![u0, s1, u2]);
        let direct = channel_via_switch(&net, vec![u0, u2]);
        let mut cap = CapacityMap::new(&net);

        let clone = cap.clone();
        assert_eq!(cap.epoch(), clone.epoch(), "unmutated clone shares epoch");

        // Direct user–user channels touch no switch qubits: no bump.
        let e0 = cap.epoch();
        cap.reserve(&direct);
        cap.release(&direct);
        assert_eq!(cap.epoch(), e0, "interior-less channels keep the epoch");

        cap.reserve(&via_switch);
        assert_ne!(cap.epoch(), e0, "reserve bumps the epoch");
        let e1 = cap.epoch();
        cap.release(&via_switch);
        assert_ne!(cap.epoch(), e1, "release bumps the epoch");

        // Two sibling clones mutated separately must never share epochs,
        // even though each performed "one mutation".
        let mut a = clone.clone();
        let mut b = clone.clone();
        a.reserve(&via_switch);
        b.reserve(&via_switch);
        assert_ne!(a.epoch(), b.epoch(), "epochs are globally unique");
        // ...but content equality still holds.
        assert_eq!(a, b);
    }

    #[test]
    fn withdraw_and_grant_are_inverse_and_epoch_aware() {
        let (net, [_u0, s1, _u2]) = line_net();
        let mut cap = CapacityMap::new(&net);
        let e0 = cap.epoch();
        cap.withdraw(s1, 0);
        cap.grant(s1, 0);
        assert_eq!(cap.epoch(), e0, "zero-qubit deltas keep the epoch");
        cap.withdraw(s1, 3);
        assert_eq!(cap.free(s1), 1);
        assert!(!cap.can_relay(s1));
        let e1 = cap.epoch();
        assert_ne!(e1, e0, "withdraw bumps the epoch");
        cap.grant(s1, 3);
        assert_eq!(cap.free(s1), 4);
        assert!(cap.can_relay(s1));
        assert_ne!(cap.epoch(), e1, "grant bumps the epoch");
    }

    #[test]
    fn unbounded_map_admits_everything() {
        let (net, [u0, s1, u2]) = line_net();
        let c = channel_via_switch(&net, vec![u0, s1, u2]);
        let mut cap = CapacityMap::unbounded(&net);
        for _ in 0..100 {
            assert!(cap.admits(&c));
            cap.reserve(&c);
        }
    }
}
