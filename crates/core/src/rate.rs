//! Entanglement rates in the log domain.
//!
//! Entanglement rates are products of many factors in `[0, 1]` — per-link
//! success probabilities `exp(−αL)` and per-swap success rates `q`. A tree
//! over ten users across a 10 000 km area easily reaches rates around
//! `10⁻⁵`; representing the product naively invites underflow and
//! precision loss in comparisons. [`Rate`] therefore stores the
//! *negative-log* cost ([`qnet_graph::NegLog`]) and converts to a plain
//! probability only at the boundary.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Mul, MulAssign};

use qnet_graph::NegLog;

/// A success probability stored in the log domain.
///
/// `Rate` is totally ordered (no NaN by construction), multiplies exactly
/// (cost addition), and compares by probability.
///
/// # Example
///
/// ```
/// use muerp_core::rate::Rate;
///
/// let link = Rate::from_prob(0.9);
/// let swap = Rate::from_prob(0.9);
/// let channel = link * link * swap;
/// assert!((channel.value() - 0.729).abs() < 1e-12);
/// assert!(channel < link);
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Rate(NegLog);

impl Rate {
    /// The certain event: probability 1.
    pub const ONE: Rate = Rate(NegLog::ZERO);

    /// The impossible event: probability 0 (an infeasible routing).
    pub const ZERO: Rate = Rate(NegLog::INFINITY);

    /// Builds a rate from a probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn from_prob(p: f64) -> Self {
        Rate(NegLog::from_prob(p))
    }

    /// Builds a rate from a negative-log cost.
    pub fn from_neg_log(cost: NegLog) -> Self {
        Rate(cost)
    }

    /// The probability value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0.prob()
    }

    /// The negative-log cost (additive domain).
    pub fn neg_log(self) -> NegLog {
        self.0
    }

    /// `true` for the zero rate (infeasible).
    pub fn is_zero(self) -> bool {
        self.0.is_infinite()
    }

    /// `self^k` — e.g. `q^(l−1)` for a channel with `l` links.
    ///
    /// `k = 0` yields [`Rate::ONE`].
    pub fn powi(self, k: u32) -> Rate {
        if k == 0 {
            return Rate::ONE;
        }
        Rate(NegLog::from_cost(if self.0.is_infinite() {
            return Rate::ZERO;
        } else {
            self.0.cost() * k as f64
        }))
    }

    /// Ratio `self / other` as a plain `f64` (may exceed 1); `NaN`-free:
    /// returns `f64::INFINITY` when `other` is zero and `self` is not,
    /// and `0.0` when `self` is zero.
    pub fn ratio(self, other: Rate) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if other.is_zero() {
            return f64::INFINITY;
        }
        (other.0.cost() - self.0.cost()).exp()
    }
}

impl Ord for Rate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower cost = higher probability; Rate orders by probability.
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for Rate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Mul for Rate {
    type Output = Rate;
    // Log-domain representation: multiplying probabilities adds costs.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl MulAssign for Rate {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn mul_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Default for Rate {
    /// The multiplicative identity, [`Rate::ONE`].
    fn default() -> Self {
        Rate::ONE
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rate({:.6e})", self.value())
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6e}", self.value())
    }
}

impl std::iter::Product for Rate {
    fn product<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ONE, |acc, r| acc * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_probability() {
        assert!(Rate::from_prob(0.9) > Rate::from_prob(0.5));
        assert!(Rate::ZERO < Rate::from_prob(1e-300));
        assert_eq!(
            Rate::from_prob(0.5).max(Rate::from_prob(0.7)),
            Rate::from_prob(0.7)
        );
    }

    #[test]
    fn product_does_not_underflow() {
        // 1000 factors of 0.5: value underflows f64 (2^-1000 ~ 1e-302 is
        // fine, but 10_000 factors would not be) — the log domain keeps
        // exact comparisons either way.
        let mut a = Rate::ONE;
        for _ in 0..10_000 {
            a *= Rate::from_prob(0.5);
        }
        let mut b = Rate::ONE;
        for _ in 0..9_999 {
            b *= Rate::from_prob(0.5);
        }
        assert!(a < b, "log-domain comparison survives underflow");
        assert_eq!(a.value(), 0.0, "plain f64 would underflow to zero");
        assert!(!a.is_zero(), "but the rate itself is not the zero rate");
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let q = Rate::from_prob(0.9);
        assert_eq!(q.powi(0), Rate::ONE);
        let mut manual = Rate::ONE;
        for _ in 0..5 {
            manual *= q;
        }
        assert!((q.powi(5).value() - manual.value()).abs() < 1e-12);
        assert_eq!(Rate::ZERO.powi(3), Rate::ZERO);
        assert_eq!(Rate::ZERO.powi(0), Rate::ONE);
    }

    #[test]
    fn ratio_behaviour() {
        let a = Rate::from_prob(0.8);
        let b = Rate::from_prob(0.2);
        assert!((a.ratio(b) - 4.0).abs() < 1e-12);
        assert!((b.ratio(a) - 0.25).abs() < 1e-12);
        assert_eq!(Rate::ZERO.ratio(a), 0.0);
        assert_eq!(a.ratio(Rate::ZERO), f64::INFINITY);
    }

    #[test]
    fn product_iterator() {
        let rates = [0.5, 0.5, 0.5].map(Rate::from_prob);
        let p: Rate = rates.into_iter().product();
        assert!((p.value() - 0.125).abs() < 1e-12);
        let empty: Rate = std::iter::empty().product();
        assert_eq!(empty, Rate::ONE);
    }

    #[test]
    fn display_formats_scientific() {
        assert_eq!(format!("{}", Rate::from_prob(0.5)), "5.000000e-1");
        assert_eq!(format!("{:?}", Rate::from_prob(0.5)), "Rate(5.000000e-1)");
    }
}
