//! Independent solution audit — the conformance harness's ground truth.
//!
//! [`crate::solver::validate_solution`] checks a solution using the same
//! building blocks the algorithms themselves use ([`Channel::from_path`],
//! [`crate::rate::Rate`] products), so a bug in those shared layers could
//! make an invalid solution *and* its validation agree. This module
//! re-derives every MUERP invariant from first principles — raw fiber
//! lengths, plain `f64` arithmetic, its own union-find — so the two
//! validators fail independently:
//!
//! * **user-coverage** — the channels span exactly the user set `U` with
//!   `|U| − 1` channels connecting every user;
//! * **tree-acyclicity** — no channel joins two already-connected users;
//! * **endpoint-role** / **interior-role** — channel endpoints are users,
//!   interiors are switches;
//! * **channel-width-1** — each channel is a simple (width-1) path;
//! * **edge-integrity** — every claimed edge exists between exactly the
//!   nodes it claims to connect;
//! * **duplicate-user-pair** — at most one channel per user pair;
//! * **switch-capacity** — summed demand (2 qubits per interior visit,
//!   plus 1 per incident fusion path at a switch center) never exceeds
//!   `Q_r`;
//! * **rate-eq1** / **rate-eq2** — per-channel and whole-solution rates
//!   recomputed from raw lengths as `q^(l−1)·exp(−α·ΣL)` match the
//!   reported rates to within `1e-9` (relative, compared in the log
//!   domain so deep-subnormal trees still audit exactly).
//!
//! Violations carry a stable [`AuditViolation::invariant`] name so fuzz
//! reports and CI logs can aggregate by invariant.

use std::collections::HashMap;

use qnet_graph::NodeId;

use crate::model::QuantumNetwork;
use crate::solver::{Solution, SolutionStyle};

/// Relative tolerance of the rate recomputation (paper Eq. 1/Eq. 2).
pub const RATE_TOLERANCE: f64 = 1e-9;

/// A violated MUERP invariant, found by [`SolutionAudit`].
#[derive(Clone, Debug, PartialEq)]
pub enum AuditViolation {
    /// The channel set does not cover the user set correctly.
    UserCoverage {
        /// Human-readable detail.
        detail: String,
    },
    /// A channel joins two users that are already connected.
    TreeAcyclicity {
        /// One endpoint of the cycle-closing channel.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A channel endpoint is not a quantum user.
    EndpointRole {
        /// The offending node.
        node: NodeId,
    },
    /// A channel interior visits a non-switch node.
    InteriorRole {
        /// The offending node.
        node: NodeId,
    },
    /// A channel repeats a vertex (not a width-1 simple path).
    ChannelWidth {
        /// The repeated node.
        node: NodeId,
    },
    /// A channel's edge list is inconsistent with its node list or the
    /// network's fibers.
    EdgeIntegrity {
        /// Human-readable detail.
        detail: String,
    },
    /// More than one channel between the same user pair.
    DuplicateUserPair {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// Summed qubit demand at a switch exceeds its memory.
    SwitchCapacity {
        /// The overloaded switch.
        node: NodeId,
        /// Qubits demanded across all channels.
        demanded: u32,
        /// Qubits available.
        available: u32,
    },
    /// A channel's reported rate disagrees with Eq. 1 recomputed from raw
    /// fiber lengths.
    ChannelRate {
        /// Index of the channel in the solution.
        index: usize,
        /// Reported negative-log rate.
        claimed_cost: f64,
        /// Recomputed negative-log rate.
        recomputed_cost: f64,
    },
    /// The solution's reported rate disagrees with Eq. 2 recomputed from
    /// raw fiber lengths.
    SolutionRate {
        /// Reported negative-log rate.
        claimed_cost: f64,
        /// Recomputed negative-log rate.
        recomputed_cost: f64,
    },
    /// A fusion star's declared fusion rate is not a probability.
    FusionRateRange {
        /// The declared value.
        value: f64,
    },
}

impl AuditViolation {
    /// Stable name of the violated invariant.
    pub fn invariant(&self) -> &'static str {
        match self {
            AuditViolation::UserCoverage { .. } => "user-coverage",
            AuditViolation::TreeAcyclicity { .. } => "tree-acyclicity",
            AuditViolation::EndpointRole { .. } => "endpoint-role",
            AuditViolation::InteriorRole { .. } => "interior-role",
            AuditViolation::ChannelWidth { .. } => "channel-width-1",
            AuditViolation::EdgeIntegrity { .. } => "edge-integrity",
            AuditViolation::DuplicateUserPair { .. } => "duplicate-user-pair",
            AuditViolation::SwitchCapacity { .. } => "switch-capacity",
            AuditViolation::ChannelRate { .. } => "rate-eq1",
            AuditViolation::SolutionRate { .. } => "rate-eq2",
            AuditViolation::FusionRateRange { .. } => "fusion-rate-range",
        }
    }
}

impl core::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] ", self.invariant())?;
        match self {
            AuditViolation::UserCoverage { detail } => write!(f, "{detail}"),
            AuditViolation::TreeAcyclicity { a, b } => {
                write!(f, "channel {a}–{b} closes a cycle over the users")
            }
            AuditViolation::EndpointRole { node } => {
                write!(f, "channel endpoint {node} is not a user")
            }
            AuditViolation::InteriorRole { node } => {
                write!(f, "channel interior {node} is not a switch")
            }
            AuditViolation::ChannelWidth { node } => {
                write!(f, "channel revisits node {node}")
            }
            AuditViolation::EdgeIntegrity { detail } => write!(f, "{detail}"),
            AuditViolation::DuplicateUserPair { a, b } => {
                write!(f, "more than one channel between users {a} and {b}")
            }
            AuditViolation::SwitchCapacity {
                node,
                demanded,
                available,
            } => write!(
                f,
                "switch {node} over capacity: {demanded} qubits demanded, {available} available"
            ),
            AuditViolation::ChannelRate {
                index,
                claimed_cost,
                recomputed_cost,
            } => write!(
                f,
                "channel {index} rate −ln {claimed_cost} disagrees with Eq. 1 recomputation −ln {recomputed_cost}"
            ),
            AuditViolation::SolutionRate {
                claimed_cost,
                recomputed_cost,
            } => write!(
                f,
                "solution rate −ln {claimed_cost} disagrees with Eq. 2 recomputation −ln {recomputed_cost}"
            ),
            AuditViolation::FusionRateRange { value } => {
                write!(f, "fusion rate {value} is not a probability")
            }
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Aggregate facts the audit derived while checking (useful for fuzz
/// reports and golden tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditReport {
    /// Number of channels in the solution.
    pub channels: usize,
    /// Total quantum links across all channels.
    pub links: usize,
    /// Total switch qubits consumed.
    pub switch_qubits_used: u64,
    /// Recomputed solution rate, negative-log domain (`−ln P`).
    pub recomputed_cost: f64,
    /// Recomputed solution rate as a plain probability (may underflow to
    /// zero for display; comparisons use [`AuditReport::recomputed_cost`]).
    pub recomputed_rate: f64,
}

/// The independent auditor. Construct via [`SolutionAudit::default`] and
/// call [`SolutionAudit::audit`]; `rel_tolerance` loosens or tightens the
/// rate comparison (default [`RATE_TOLERANCE`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolutionAudit {
    /// Relative tolerance for the Eq. 1/Eq. 2 rate recomputation.
    pub rel_tolerance: f64,
}

impl Default for SolutionAudit {
    fn default() -> Self {
        SolutionAudit {
            rel_tolerance: RATE_TOLERANCE,
        }
    }
}

/// Minimal union-find local to the audit, so a bug in
/// [`qnet_graph::UnionFind`] cannot mask a coverage bug here.
struct AuditSets {
    parent: Vec<usize>,
}

impl AuditSets {
    fn new(n: usize) -> Self {
        AuditSets {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Returns `false` when already joined.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

impl SolutionAudit {
    /// Audits `solution` against `net`, returning derived facts or the
    /// first violated invariant.
    ///
    /// # Errors
    ///
    /// Returns the first [`AuditViolation`] discovered, in a deterministic
    /// check order (structure, coverage, capacity, rates).
    pub fn audit(
        &self,
        net: &QuantumNetwork,
        solution: &Solution,
    ) -> Result<AuditReport, AuditViolation> {
        let _span = qnet_obs::span!("core.audit.solution");
        match solution.style {
            SolutionStyle::BsmTree => self.audit_tree(net, solution),
            SolutionStyle::FusionStar {
                center,
                fusion_rate,
            } => self.audit_fusion(net, solution, center, fusion_rate.value()),
        }
    }

    fn audit_tree(
        &self,
        net: &QuantumNetwork,
        solution: &Solution,
    ) -> Result<AuditReport, AuditViolation> {
        let users = net.users();
        if solution.channels.len() + 1 != users.len()
            && !(users.len() < 2 && solution.channels.is_empty())
        {
            return Err(AuditViolation::UserCoverage {
                detail: format!(
                    "{} channels cannot span {} users (need {})",
                    solution.channels.len(),
                    users.len(),
                    users.len().saturating_sub(1)
                ),
            });
        }

        let mut demand: HashMap<NodeId, u64> = HashMap::new();
        let mut pairs = std::collections::HashSet::new();
        let mut sets = AuditSets::new(net.graph().node_count());
        let mut total_cost = 0.0f64;
        let mut total_links = 0usize;

        for (index, c) in solution.channels.iter().enumerate() {
            let cost = self.check_channel(net, index, c, &mut demand)?;
            total_cost += cost;
            total_links += c.path.edges.len();

            let (a, b) = (c.source(), c.destination());
            let key = if a <= b { (a, b) } else { (b, a) };
            if !pairs.insert(key) {
                return Err(AuditViolation::DuplicateUserPair { a: key.0, b: key.1 });
            }
            if !sets.union(a.index(), b.index()) {
                return Err(AuditViolation::TreeAcyclicity { a, b });
            }
        }

        if let Some((&first, rest)) = users.split_first() {
            let root = sets.find(first.index());
            if rest.iter().any(|u| sets.find(u.index()) != root) {
                return Err(AuditViolation::UserCoverage {
                    detail: "users left in separate components".into(),
                });
            }
        }

        self.check_capacity(net, &demand)?;

        let claimed_cost = solution.rate.neg_log().cost();
        self.check_cost("eq2", claimed_cost, total_cost).map_err(
            |(claimed_cost, recomputed_cost)| AuditViolation::SolutionRate {
                claimed_cost,
                recomputed_cost,
            },
        )?;

        Ok(AuditReport {
            channels: solution.channels.len(),
            links: total_links,
            switch_qubits_used: demand.values().sum(),
            recomputed_cost: total_cost,
            recomputed_rate: (-total_cost).exp(),
        })
    }

    fn audit_fusion(
        &self,
        net: &QuantumNetwork,
        solution: &Solution,
        center: NodeId,
        fusion_rate: f64,
    ) -> Result<AuditReport, AuditViolation> {
        if !(0.0..=1.0).contains(&fusion_rate) || fusion_rate.is_nan() {
            return Err(AuditViolation::FusionRateRange { value: fusion_rate });
        }

        let mut demand: HashMap<NodeId, u64> = HashMap::new();
        let mut covered = std::collections::HashSet::new();
        let mut total_cost = 0.0f64;
        let mut total_links = 0usize;

        for (index, c) in solution.channels.iter().enumerate() {
            // A fusion path runs user → center; identify the user end.
            let (src, dst) = (c.source(), c.destination());
            let user_end = if dst == center {
                src
            } else if src == center {
                dst
            } else {
                return Err(AuditViolation::UserCoverage {
                    detail: format!("fusion path {src}–{dst} does not touch the center {center}"),
                });
            };
            if !net.is_user(user_end) {
                return Err(AuditViolation::EndpointRole { node: user_end });
            }
            if !covered.insert(user_end) {
                return Err(AuditViolation::DuplicateUserPair {
                    a: user_end,
                    b: center,
                });
            }
            let cost = self.check_path(net, index, c, &mut demand)?;
            total_cost += cost;
            total_links += c.path.edges.len();
            // The center pins one qubit per incident path when it is a
            // switch (its own BSM/fusion memory).
            if net.kind(center).is_switch() {
                *demand.entry(center).or_insert(0) += 1;
            }
        }

        let missing = net
            .users()
            .iter()
            .filter(|&&u| u != center && !covered.contains(&u))
            .count();
        if missing > 0 {
            return Err(AuditViolation::UserCoverage {
                detail: format!("fusion star leaves {missing} user(s) without a path"),
            });
        }

        self.check_capacity(net, &demand)?;

        // Eq. 2 for a fusion star: product of path rates times the GHZ
        // measurement's success rate.
        let total_cost = total_cost - fusion_rate.max(f64::MIN_POSITIVE).ln();
        let claimed_cost = solution.rate.neg_log().cost();
        self.check_cost("eq2", claimed_cost, total_cost).map_err(
            |(claimed_cost, recomputed_cost)| AuditViolation::SolutionRate {
                claimed_cost,
                recomputed_cost,
            },
        )?;

        Ok(AuditReport {
            channels: solution.channels.len(),
            links: total_links,
            switch_qubits_used: demand.values().sum(),
            recomputed_cost: total_cost,
            recomputed_rate: (-total_cost).exp(),
        })
    }

    /// Structural + rate check of one user-to-user channel; returns its
    /// recomputed Eq. 1 negative-log rate and accumulates switch demand.
    fn check_channel(
        &self,
        net: &QuantumNetwork,
        index: usize,
        c: &crate::channel::Channel,
        demand: &mut HashMap<NodeId, u64>,
    ) -> Result<f64, AuditViolation> {
        for &endpoint in &[c.source(), c.destination()] {
            if !net.is_user(endpoint) {
                return Err(AuditViolation::EndpointRole { node: endpoint });
            }
        }
        self.check_path(net, index, c, demand)
    }

    /// Path-level checks shared by tree channels and fusion paths:
    /// width-1 simplicity, interior roles, edge integrity, per-switch
    /// demand, and the Eq. 1 rate from raw lengths.
    fn check_path(
        &self,
        net: &QuantumNetwork,
        index: usize,
        c: &crate::channel::Channel,
        demand: &mut HashMap<NodeId, u64>,
    ) -> Result<f64, AuditViolation> {
        let nodes = &c.path.nodes;
        if nodes.len() < 2 {
            return Err(AuditViolation::EdgeIntegrity {
                detail: format!("channel {index} has fewer than two nodes"),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for &v in nodes {
            if !seen.insert(v) {
                return Err(AuditViolation::ChannelWidth { node: v });
            }
        }
        for &mid in &nodes[1..nodes.len() - 1] {
            if !net.kind(mid).is_switch() {
                return Err(AuditViolation::InteriorRole { node: mid });
            }
            *demand.entry(mid).or_insert(0) += 2;
        }
        if c.path.edges.len() != nodes.len() - 1 {
            return Err(AuditViolation::EdgeIntegrity {
                detail: format!(
                    "channel {index}: {} edges for {} nodes",
                    c.path.edges.len(),
                    nodes.len()
                ),
            });
        }
        // Eq. 1 from raw fiber lengths, in plain f64: the claimed edge
        // must be a real fiber between exactly the claimed node pair.
        let mut total_length = 0.0f64;
        for (i, &e) in c.path.edges.iter().enumerate() {
            if e.index() >= net.graph().edge_count() {
                return Err(AuditViolation::EdgeIntegrity {
                    detail: format!("channel {index}: edge {e} does not exist"),
                });
            }
            let (a, b) = net.graph().endpoints(e);
            let (x, y) = (nodes[i], nodes[i + 1]);
            if !((a == x && b == y) || (a == y && b == x)) {
                return Err(AuditViolation::EdgeIntegrity {
                    detail: format!("channel {index}: edge {e} does not join {x} and {y}"),
                });
            }
            total_length += net.length(e);
        }
        let q = net.physics().swap_success;
        let alpha = net.physics().attenuation;
        let links = c.path.edges.len();
        // −ln(q^(l−1)·exp(−α·ΣL)) = α·ΣL − (l−1)·ln q.
        let recomputed_cost =
            alpha * total_length - (links as f64 - 1.0) * q.max(f64::MIN_POSITIVE).ln();
        let claimed_cost = c.rate.neg_log().cost();
        self.check_cost("eq1", claimed_cost, recomputed_cost)
            .map_err(
                |(claimed_cost, recomputed_cost)| AuditViolation::ChannelRate {
                    index,
                    claimed_cost,
                    recomputed_cost,
                },
            )?;
        Ok(recomputed_cost)
    }

    fn check_capacity(
        &self,
        net: &QuantumNetwork,
        demand: &HashMap<NodeId, u64>,
    ) -> Result<(), AuditViolation> {
        for (&s, &demanded) in demand {
            let available = net.kind(s).qubits();
            if demanded > u64::from(available) {
                return Err(AuditViolation::SwitchCapacity {
                    node: s,
                    demanded: demanded.min(u64::from(u32::MAX)) as u32,
                    available,
                });
            }
        }
        Ok(())
    }

    /// Log-domain rate comparison: `|Δcost| ≤ tol·max(1, cost)` matches a
    /// relative probability tolerance for small deltas while staying exact
    /// for rates far below `f64` subnormal range.
    fn check_cost(&self, _which: &str, claimed: f64, recomputed: f64) -> Result<(), (f64, f64)> {
        if !claimed.is_finite()
            || (claimed - recomputed).abs() > self.rel_tolerance * recomputed.abs().max(1.0)
        {
            return Err((claimed, recomputed));
        }
        Ok(())
    }
}

/// Audits a solution with the default tolerance — the conformance
/// harness's one-call entry point.
///
/// # Errors
///
/// Returns the first violated invariant; see [`AuditViolation`].
pub fn audit_solution(
    net: &QuantumNetwork,
    solution: &Solution,
) -> Result<AuditReport, AuditViolation> {
    SolutionAudit::default().audit(net, solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::model::{NodeKind, PhysicsParams};
    use crate::rate::Rate;
    use crate::solver::SolutionStyle;
    use crate::tree::EntanglementTree;
    use qnet_graph::paths::Path;
    use qnet_graph::Graph;

    /// Two users joined through separate 4-qubit switches, plus a shared
    /// third user hanging off the first switch.
    fn sample() -> (QuantumNetwork, [NodeId; 5]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        let c = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 4 });
        let s2 = g.add_node(NodeKind::Switch { qubits: 4 });
        g.add_edge(a, s1, 900.0);
        g.add_edge(s1, b, 1100.0);
        g.add_edge(b, s2, 700.0);
        g.add_edge(s2, c, 1300.0);
        g.add_edge(s1, c, 2500.0);
        (
            QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
            [a, b, c, s1, s2],
        )
    }

    fn chan(net: &QuantumNetwork, nodes: Vec<NodeId>) -> Channel {
        let edges = nodes
            .windows(2)
            .map(|w| net.graph().find_edge(w[0], w[1]).unwrap())
            .collect();
        Channel::from_path(
            net,
            Path {
                nodes,
                edges,
                cost: 0.0,
            },
        )
    }

    fn good_solution(net: &QuantumNetwork, ids: &[NodeId; 5]) -> Solution {
        let [a, b, c, s1, s2] = *ids;
        Solution::from_tree(
            [chan(net, vec![a, s1, b]), chan(net, vec![b, s2, c])]
                .into_iter()
                .collect::<EntanglementTree>(),
        )
    }

    #[test]
    fn clean_solution_passes_with_report() {
        let (net, ids) = sample();
        let sol = good_solution(&net, &ids);
        let report = audit_solution(&net, &sol).expect("clean");
        assert_eq!(report.channels, 2);
        assert_eq!(report.links, 4);
        assert_eq!(report.switch_qubits_used, 4);
        assert!((report.recomputed_rate - sol.rate.value()).abs() <= 1e-9 * sol.rate.value());
    }

    #[test]
    fn over_capacity_switch_is_named() {
        let (net, ids) = sample();
        let [_, _, _, s1, _] = ids;
        let mut g = net.graph().clone();
        *g.node_mut(s1) = NodeKind::Switch { qubits: 2 };
        let tight = QuantumNetwork::from_graph(g, *net.physics());
        // Both channels now routed through s1: 4 qubits demanded of 2.
        let [a, b, c, s1, _] = ids;
        let sol = Solution::from_tree(
            [chan(&tight, vec![a, s1, b]), chan(&tight, vec![a, s1, c])]
                .into_iter()
                .collect::<EntanglementTree>(),
        );
        let err = audit_solution(&tight, &sol).unwrap_err();
        assert_eq!(err.invariant(), "switch-capacity");
        assert!(matches!(
            err,
            AuditViolation::SwitchCapacity {
                demanded: 4,
                available: 2,
                ..
            }
        ));
    }

    #[test]
    fn wrong_tree_rate_is_named() {
        let (net, ids) = sample();
        let mut sol = good_solution(&net, &ids);
        sol.rate *= Rate::from_prob(0.99);
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "rate-eq2");
    }

    #[test]
    fn wrong_channel_rate_is_named() {
        let (net, ids) = sample();
        let mut sol = good_solution(&net, &ids);
        sol.channels[1].rate = Rate::from_prob(0.5);
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "rate-eq1");
        assert!(err.to_string().starts_with("[rate-eq1]"));
    }

    #[test]
    fn missing_channel_is_user_coverage() {
        let (net, ids) = sample();
        let mut sol = good_solution(&net, &ids);
        sol.channels.pop();
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "user-coverage");
    }

    #[test]
    fn repeated_pair_is_duplicate_user_pair() {
        let (net, ids) = sample();
        let first = good_solution(&net, &ids).channels[0].clone();
        let dup = Solution {
            rate: first.rate * first.rate,
            channels: vec![first.clone(), first],
            style: SolutionStyle::BsmTree,
        };
        let err = audit_solution(&net, &dup).unwrap_err();
        assert_eq!(err.invariant(), "duplicate-user-pair");
    }

    #[test]
    fn cycle_is_tree_acyclicity() {
        // 4 users around an 8-qubit hub: the third channel closes a
        // cycle over {u0, u1, u2} while u3 stays stranded.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u: Vec<NodeId> = (0..4).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits: 8 });
        for &x in &u {
            g.add_edge(x, hub, 500.0);
        }
        let net4 = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let c01 = chan(&net4, vec![u[0], hub, u[1]]);
        let c12 = chan(&net4, vec![u[1], hub, u[2]]);
        let c02 = chan(&net4, vec![u[0], hub, u[2]]);
        let rate = c01.rate * c12.rate * c02.rate;
        let sol = Solution {
            channels: vec![c01, c12, c02],
            rate,
            style: SolutionStyle::BsmTree,
        };
        let err = audit_solution(&net4, &sol).unwrap_err();
        assert_eq!(err.invariant(), "tree-acyclicity");
    }

    #[test]
    fn switch_endpoint_is_endpoint_role() {
        let (net, ids) = sample();
        let [a, b, c, s1, s2] = ids;
        let stub = chan(&net, vec![a, s1]); // ends on a switch
        let other = chan(&net, vec![b, s2, c]);
        let sol = Solution {
            rate: stub.rate * other.rate,
            channels: vec![stub, other],
            style: SolutionStyle::BsmTree,
        };
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "endpoint-role");
    }

    #[test]
    fn user_interior_is_interior_role() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
        g.add_edge(u[0], u[1], 400.0);
        g.add_edge(u[1], u[2], 400.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let through_user = chan(&net, vec![u[0], u[1], u[2]]);
        let direct = chan(&net, vec![u[0], u[1]]);
        let sol = Solution {
            rate: through_user.rate * direct.rate,
            channels: vec![through_user, direct],
            style: SolutionStyle::BsmTree,
        };
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "interior-role");
    }

    #[test]
    fn repeated_node_is_channel_width() {
        let (net, ids) = sample();
        let [a, b, _, s1, _] = ids;
        let e = net.graph().find_edge(a, s1).unwrap();
        let back = net.graph().find_edge(s1, b).unwrap();
        let zigzag = Channel {
            path: Path {
                nodes: vec![a, s1, a, s1, b],
                edges: vec![e, e, e, back],
                cost: 0.0,
            },
            rate: Rate::from_prob(0.5),
        };
        let other = chan(&net, vec![b, ids[4], ids[2]]);
        let sol = Solution {
            rate: zigzag.rate * other.rate,
            channels: vec![zigzag, other],
            style: SolutionStyle::BsmTree,
        };
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "channel-width-1");
    }

    #[test]
    fn fake_edge_is_edge_integrity() {
        let (net, ids) = sample();
        let [a, _, _, s1, _] = ids;
        let mut sol = good_solution(&net, &ids);
        // Claim the a–s1 edge also joins s1 and b.
        let wrong = net.graph().find_edge(a, s1).unwrap();
        sol.channels[0].path.edges[1] = wrong;
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "edge-integrity");
    }

    #[test]
    fn fusion_star_audits_center_capacity() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        for &x in &u {
            g.add_edge(x, hub, 600.0);
        }
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let paths: Vec<Channel> = u.iter().map(|&x| chan(&net, vec![x, hub])).collect();
        let fusion_rate = Rate::from_prob(0.81);
        let rate = paths.iter().map(|p| p.rate).product::<Rate>() * fusion_rate;
        let sol = Solution {
            channels: paths,
            rate,
            style: SolutionStyle::FusionStar {
                center: hub,
                fusion_rate,
            },
        };
        let err = audit_solution(&net, &sol).unwrap_err();
        assert_eq!(err.invariant(), "switch-capacity");
    }

    #[test]
    fn fusion_star_clean_case_passes() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits: 3 });
        for &x in &u {
            g.add_edge(x, hub, 600.0);
        }
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let paths: Vec<Channel> = u.iter().map(|&x| chan(&net, vec![x, hub])).collect();
        let fusion_rate = Rate::from_prob(0.81);
        let rate = paths.iter().map(|p| p.rate).product::<Rate>() * fusion_rate;
        let sol = Solution {
            channels: paths,
            rate,
            style: SolutionStyle::FusionStar {
                center: hub,
                fusion_rate,
            },
        };
        let report = audit_solution(&net, &sol).expect("clean fusion star");
        assert_eq!(report.channels, 3);
        assert_eq!(report.switch_qubits_used, 3);
    }

    #[test]
    fn agrees_with_validate_solution_on_algorithm_output() {
        use crate::algorithms::{ConflictFree, PrimBased};
        use crate::model::NetworkSpec;
        use crate::solver::{validate_solution, RoutingAlgorithm};
        for seed in 0..6u64 {
            let net = NetworkSpec::paper_default().build(seed);
            for sol in [
                ConflictFree::default().solve(&net).ok(),
                PrimBased::with_seed(seed).solve(&net).ok(),
            ]
            .into_iter()
            .flatten()
            {
                validate_solution(&net, &sol).expect("validator");
                audit_solution(&net, &sol).expect("audit");
            }
        }
    }
}
