//! Survivability: fault injection, incremental tree repair, and edge
//! criticality (paper Fig. 7(b) "critical edges", made operational).
//!
//! The paper observes that MUERP performance under random fiber
//! removal "is mainly affected by some critical edges in the network
//! structure" — an entanglement tree is a *tree*, so a single bridge
//! failure can sever the whole user group. This module turns that
//! observation into a subsystem:
//!
//! * [`FailurePlan`] — a deterministic, seeded schedule of faults
//!   (link cuts, switch deaths, qubit-capacity degradation) over
//!   protocol slots;
//! * [`NetworkState`] — the accumulated degraded network: a
//!   [`qnet_graph::SearchMask`] of dead elements plus lost qubits,
//!   never mutating the original network so ids stay comparable;
//! * [`repair`] — the incremental repair ladder (local re-route →
//!   subtree re-attachment → full re-solve), every output audited;
//! * [`criticality_report`] — ranks bridge edges by how many user
//!   pairs their failure severs, via [`qnet_graph::connectivity`].
//!
//! The simulator (`qnet-sim`) replays a [`FailurePlan`] mid-protocol,
//! and `repro churn` sweeps the whole pipeline into a survivability
//! CSV.

mod failure;
mod repair;

pub use failure::{Failure, FailureKind, FailurePlan, NetworkState};
pub use repair::{full_resolve, repair, RepairMethod, RepairOutcome};

use qnet_graph::connectivity;
use qnet_graph::{EdgeId, NodeId};

use crate::model::QuantumNetwork;

/// One ranked entry of a [`criticality_report`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CriticalEdge {
    /// The bridge edge.
    pub edge: EdgeId,
    /// Its endpoints.
    pub endpoints: (NodeId, NodeId),
    /// Fiber length in meters.
    pub length: f64,
    /// User pairs severed if this edge fails.
    pub severed_pairs: u64,
    /// User counts on the two sides of the cut, larger side first.
    pub split: (usize, usize),
}

/// Edges ranked by survivability impact on the user set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalityReport {
    /// Entries sorted by severed pairs descending (ties by edge id);
    /// only edges that actually sever at least one user pair appear.
    pub entries: Vec<CriticalEdge>,
}

impl CriticalityReport {
    /// The most critical edge, if any edge is critical at all.
    pub fn most_critical(&self) -> Option<&CriticalEdge> {
        self.entries.first()
    }

    /// `true` when no single edge failure can sever any user pair.
    pub fn is_robust(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Ranks `net`'s edges by survivability impact: only bridges can
/// disconnect anything, and a bridge's impact is the number of user
/// pairs its removal leaves in different components.
pub fn criticality_report(net: &QuantumNetwork) -> CriticalityReport {
    let entries = connectivity::criticality(net.graph(), net.users())
        .into_iter()
        .map(|c| {
            let (a, b) = net.graph().endpoints(c.edge);
            CriticalEdge {
                edge: c.edge,
                endpoints: (a, b),
                length: net.length(c.edge),
                severed_pairs: c.severed_pairs,
                split: c.split,
            }
        })
        .collect();
    CriticalityReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NodeKind, PhysicsParams};
    use qnet_graph::Graph;

    #[test]
    fn line_network_has_two_equally_critical_edges() {
        // u0 — s — u1: both fibers are bridges severing the one pair.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 2 });
        let u1 = g.add_node(NodeKind::User);
        let e0 = g.add_edge(u0, s, 1000.0);
        let e1 = g.add_edge(s, u1, 2000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let report = criticality_report(&net);
        assert!(!report.is_robust());
        assert_eq!(report.entries.len(), 2);
        // Equal impact → ranked by edge id.
        assert_eq!(report.entries[0].edge, e0);
        assert_eq!(report.entries[1].edge, e1);
        for entry in &report.entries {
            assert_eq!(entry.severed_pairs, 1);
            assert_eq!(entry.split, (1, 1));
        }
        assert_eq!(report.entries[0].length, 1000.0);
        assert_eq!(report.most_critical().unwrap().edge, e0);
    }

    #[test]
    fn redundant_ring_is_robust() {
        // u0 — s — u1 — s2 — u0: a cycle, no bridges.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 2 });
        let u1 = g.add_node(NodeKind::User);
        let s2 = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(u0, s, 1000.0);
        g.add_edge(s, u1, 1000.0);
        g.add_edge(u1, s2, 1000.0);
        g.add_edge(s2, u0, 1000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        assert!(criticality_report(&net).is_robust());
    }

    #[test]
    fn bridge_without_users_behind_it_is_not_critical() {
        // u0 — s — u1 plus a pendant switch hanging off s: the pendant
        // fiber is a bridge but severs no user pair.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 2 });
        let u1 = g.add_node(NodeKind::User);
        let pendant = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(u0, s, 1000.0);
        g.add_edge(s, u1, 1000.0);
        g.add_edge(s, pendant, 1000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let report = criticality_report(&net);
        assert_eq!(report.entries.len(), 2, "pendant fiber is not listed");
    }
}
