//! The incremental repair ladder: local re-route → subtree
//! re-attachment → full re-solve.
//!
//! Given a solved BSM-tree [`Solution`] and the accumulated
//! [`NetworkState`] of failures, [`repair`] tries the cheapest fix
//! first and escalates only when necessary:
//!
//! 1. **Local re-route** — every broken channel is replaced by a masked
//!    Algorithm-1 channel *for the same user pair*, keeping all
//!    surviving channels (and therefore the tree topology) intact.
//! 2. **Subtree re-attachment** — the surviving channels form a forest;
//!    conflict-aware Prim-style rounds greedily merge its components
//!    with the best masked cross-component channel until the user set
//!    is spanned again.
//! 3. **Full re-solve** — everything is released and the degraded
//!    network is solved from scratch with the same greedy rounds.
//!
//! Every rung reserves capacity on the *degraded* map
//! ([`NetworkState::degraded_capacity`]) and searches through one
//! shared [`ChannelFinderCache`] keyed by `(source, epoch, mask hash)`,
//! so the ladder's cost is measured exactly in channel-finder runs
//! ([`RepairOutcome::searches`]). In debug builds every repaired
//! solution is checked against the full audit invariant set.

use qnet_graph::UnionFind;

use crate::algorithms::ChannelFinderCache;
use crate::audit::audit_solution;
use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;
use crate::solver::{Solution, SolutionStyle};
use crate::survive::NetworkState;

/// Which rung of the ladder produced the repaired solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairMethod {
    /// The failure did not touch the solution; it is returned as-is.
    Untouched,
    /// Every broken channel was re-routed for its own user pair.
    LocalReroute,
    /// Surviving subtrees were re-attached with new cross-component
    /// channels.
    Reattach,
    /// The degraded network was re-solved from scratch.
    FullResolve,
    /// No rung produced a feasible solution.
    Unrepairable,
}

impl RepairMethod {
    /// Kebab-case tag for trace events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RepairMethod::Untouched => "untouched",
            RepairMethod::LocalReroute => "local-reroute",
            RepairMethod::Reattach => "reattach",
            RepairMethod::FullResolve => "full-resolve",
            RepairMethod::Unrepairable => "unrepairable",
        }
    }
}

/// The result of a repair attempt.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired solution, or `None` when the degraded network is
    /// beyond this ladder (method is then [`RepairMethod::Unrepairable`]).
    pub solution: Option<Solution>,
    /// The rung that produced (or failed to produce) the solution.
    pub method: RepairMethod,
    /// Channel-finder searches executed across *all* attempted rungs —
    /// the deterministic repair-latency metric.
    pub searches: u64,
    /// Channels of the original solution that had to be abandoned
    /// (structurally broken or evicted by capacity degradation).
    pub torn_down: usize,
}

impl RepairOutcome {
    /// The repaired rate, `0` when unrepairable.
    pub fn rate_value(&self) -> f64 {
        self.solution.as_ref().map_or(0.0, |s| s.rate.value())
    }
}

/// In debug builds, every solution the ladder returns must pass the
/// full audit against the *original* network (degraded feasibility
/// implies original feasibility since failures only remove resources)
/// and respect the degraded state.
fn debug_check(net: &QuantumNetwork, state: &NetworkState<'_>, solution: &Solution) {
    debug_assert!(
        audit_solution(net, solution).is_ok(),
        "repaired solution failed audit: {:?}",
        audit_solution(net, solution).err()
    );
    debug_assert!(
        state.admits_solution(solution),
        "repaired solution violates the degraded network"
    );
}

/// Repairs `solution` against the failures accumulated in `state`,
/// escalating through the ladder (see the module docs).
///
/// `state` must degrade the same network `solution` was solved on.
pub fn repair(
    net: &QuantumNetwork,
    solution: &Solution,
    state: &NetworkState<'_>,
) -> RepairOutcome {
    let _span = qnet_obs::span!("core.survive.repair");
    qnet_obs::counter!("core.survive.repairs");
    let mut cache = ChannelFinderCache::new(net);

    // Non-tree solutions skip straight to a from-scratch tree solve.
    if solution.style != SolutionStyle::BsmTree {
        let fixed = reconnect(
            net,
            state,
            state.degraded_capacity(),
            &mut cache,
            Vec::new(),
        );
        return finish(
            net,
            state,
            fixed,
            RepairMethod::FullResolve,
            cache.search_count(),
            solution.channels.len(),
        );
    }

    // Partition the solution: structurally broken channels versus
    // survivors, then re-reserve survivors best-rate-first on the
    // degraded capacity — whatever no longer fits is torn down too.
    let mut broken: Vec<Channel> = Vec::new();
    let mut survivors: Vec<Channel> = Vec::new();
    for c in &solution.channels {
        if state.channel_broken(c) {
            broken.push(c.clone());
        } else {
            survivors.push(c.clone());
        }
    }
    survivors.sort_by(|x, y| {
        y.rate
            .value()
            .partial_cmp(&x.rate.value())
            .expect("rates are not NaN")
            .then_with(|| x.user_pair().cmp(&y.user_pair()))
    });
    let mut cap = state.degraded_capacity();
    let mut kept: Vec<Channel> = Vec::new();
    for c in survivors {
        if cap.admits(&c) {
            cap.reserve(&c);
            kept.push(c);
        } else {
            broken.push(c);
        }
    }
    let torn_down = broken.len();

    if broken.is_empty() {
        let outcome = RepairOutcome {
            solution: Some(solution.clone()),
            method: RepairMethod::Untouched,
            searches: 0,
            torn_down: 0,
        };
        debug_check(net, state, outcome.solution.as_ref().expect("present"));
        return outcome;
    }

    // Rung 1 — local re-route: replace each broken channel for the
    // same user pair, capacity and mask respected. Keeping the pair
    // set keeps the tree topology, so success here needs no global
    // reasoning at all.
    broken.sort_by_key(Channel::user_pair);
    {
        let mut rung_cap = cap.clone();
        let mut replacements: Vec<Channel> = Vec::new();
        let mut complete = true;
        for c in &broken {
            let (a, b) = c.user_pair();
            match cache
                .finder_masked(&rung_cap, Some(state.mask()), a)
                .channel_to(b)
            {
                Some(fresh) => {
                    rung_cap.reserve(&fresh);
                    replacements.push(fresh);
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            let channels = kept.iter().cloned().chain(replacements).collect();
            let fixed = Some(Solution::from_tree(channels));
            return finish(
                net,
                state,
                fixed,
                RepairMethod::LocalReroute,
                cache.search_count(),
                torn_down,
            );
        }
    }

    // Rung 2 — subtree re-attachment: keep the surviving forest and
    // greedily merge its components with the best masked
    // cross-component channels (the conflict-aware Prim rounds).
    if let Some(fixed) = reconnect(net, state, cap, &mut cache, kept.clone()) {
        return finish(
            net,
            state,
            Some(fixed),
            RepairMethod::Reattach,
            cache.search_count(),
            torn_down,
        );
    }

    // Rung 3 — full re-solve: release everything and rebuild the tree
    // on the degraded network from scratch.
    let fixed = reconnect(
        net,
        state,
        state.degraded_capacity(),
        &mut cache,
        Vec::new(),
    );
    let method = if fixed.is_some() {
        RepairMethod::FullResolve
    } else {
        RepairMethod::Unrepairable
    };
    finish(
        net,
        state,
        fixed,
        method,
        cache.search_count(),
        solution.channels.len(),
    )
}

/// Solves the degraded network from scratch (the ladder's last rung,
/// exposed for baseline comparisons). Returns the solution and the
/// number of channel-finder searches spent.
pub fn full_resolve(net: &QuantumNetwork, state: &NetworkState<'_>) -> (Option<Solution>, u64) {
    let _span = qnet_obs::span!("core.survive.full_resolve");
    let mut cache = ChannelFinderCache::new(net);
    let fixed = reconnect(
        net,
        state,
        state.degraded_capacity(),
        &mut cache,
        Vec::new(),
    );
    if let Some(s) = &fixed {
        debug_check(net, state, s);
    }
    (fixed, cache.search_count())
}

fn finish(
    net: &QuantumNetwork,
    state: &NetworkState<'_>,
    solution: Option<Solution>,
    method: RepairMethod,
    searches: u64,
    torn_down: usize,
) -> RepairOutcome {
    if let Some(s) = &solution {
        debug_check(net, state, s);
    }
    let method = if solution.is_some() {
        method
    } else {
        RepairMethod::Unrepairable
    };
    // The counter macro needs literal label values; branch per method.
    match method {
        RepairMethod::Untouched => {
            qnet_obs::counter!("core.survive.repair_method", method = "untouched");
        }
        RepairMethod::LocalReroute => {
            qnet_obs::counter!("core.survive.repair_method", method = "local-reroute");
        }
        RepairMethod::Reattach => {
            qnet_obs::counter!("core.survive.repair_method", method = "reattach");
        }
        RepairMethod::FullResolve => {
            qnet_obs::counter!("core.survive.repair_method", method = "full-resolve");
        }
        RepairMethod::Unrepairable => {
            qnet_obs::counter!("core.survive.repair_method", method = "unrepairable");
        }
    }
    RepairOutcome {
        solution,
        method,
        searches,
        torn_down,
    }
}

/// Greedy tree (re)construction over the degraded network: starting
/// from `channels` (a forest over the user set — possibly empty),
/// repeatedly add the best-rate masked channel between two users in
/// different components until the user set is spanned. Returns `None`
/// when some component cannot be reached under the mask and residual
/// capacity.
///
/// With an empty starting forest this is exactly a masked variant of
/// the Prim-based Algorithm-4 rounds; with a non-empty forest it is
/// the re-attachment rung.
fn reconnect(
    net: &QuantumNetwork,
    state: &NetworkState<'_>,
    mut cap: CapacityMap,
    cache: &mut ChannelFinderCache<'_>,
    mut channels: Vec<Channel>,
) -> Option<Solution> {
    let users = net.users();
    let target = users.len().saturating_sub(1);
    let mut uf = UnionFind::new(net.graph().node_count());
    for c in &channels {
        let (a, b) = c.user_pair();
        uf.union_nodes(a, b);
    }
    while channels.len() < target {
        let mut best: Option<Channel> = None;
        for &src in users {
            let finder = cache.finder_masked(&cap, Some(state.mask()), src);
            for &dst in users {
                if uf.same_set_nodes(src, dst) {
                    continue;
                }
                let Some(c) = finder.channel_to(dst) else {
                    continue;
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        c.rate.value() > b.rate.value()
                            || (c.rate == b.rate && c.user_pair() < b.user_pair())
                    }
                };
                if better {
                    best = Some(c);
                }
            }
        }
        let c = best?;
        cap.reserve(&c);
        let (a, b) = c.user_pair();
        uf.union_nodes(a, b);
        channels.push(c);
    }
    Some(Solution::from_tree(channels.into_iter().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::prelude::*;
    use crate::survive::{FailureKind, FailurePlan};
    use qnet_graph::Graph;

    fn physics() -> PhysicsParams {
        PhysicsParams {
            swap_success: 0.9,
            attenuation: 1e-4,
        }
    }

    /// Three users: u0—u1 direct fiber; u1—u2 via s1 (best) or via s2
    /// (backup detour).
    fn redundant_net() -> (QuantumNetwork, [qnet_graph::NodeId; 5]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 4 });
        let s2 = g.add_node(NodeKind::Switch { qubits: 4 });
        g.add_edge(u0, u1, 1000.0);
        g.add_edge(u1, s1, 500.0);
        g.add_edge(s1, u2, 500.0);
        g.add_edge(u1, s2, 900.0);
        g.add_edge(s2, u2, 900.0);
        (
            QuantumNetwork::from_graph(g, physics()),
            [u0, u1, u2, s1, s2],
        )
    }

    #[test]
    fn untouched_when_failure_misses_the_tree() {
        let (net, [.., s2]) = redundant_net();
        let base = PrimBased::default().solve(&net).unwrap();
        assert!(base
            .channels
            .iter()
            .all(|c| !c.interior_switches().contains(&s2)));
        let mut state = NetworkState::new(&net);
        state.apply(&FailureKind::SwitchDeath { node: s2 });
        let out = repair(&net, &base, &state);
        assert_eq!(out.method, RepairMethod::Untouched);
        assert_eq!(out.searches, 0);
        assert_eq!(out.torn_down, 0);
        assert_eq!(out.solution.unwrap(), base);
    }

    /// The acceptance-criteria test: the local-fix rung repairs a cut
    /// without a full re-solve — the surviving channel is carried over
    /// *identically* and only the broken pair is re-routed.
    #[test]
    fn local_fix_avoids_full_resolve() {
        let (net, [_, u1, u2, s1, s2]) = redundant_net();
        let base = PrimBased::default().solve(&net).unwrap();
        let direct = base
            .channels
            .iter()
            .find(|c| c.interior_switches().is_empty())
            .expect("u0–u1 direct channel")
            .clone();
        let via_s1 = base
            .channels
            .iter()
            .find(|c| c.interior_switches() == [s1])
            .expect("u1–u2 channel via s1");
        assert_eq!(via_s1.user_pair(), (u1, u2));

        let mut state = NetworkState::new(&net);
        state.apply(&FailureKind::SwitchDeath { node: s1 });
        let out = repair(&net, &base, &state);

        assert_eq!(out.method, RepairMethod::LocalReroute, "no full re-solve");
        assert_eq!(out.torn_down, 1);
        let fixed = out.solution.unwrap();
        assert!(
            fixed.channels.contains(&direct),
            "surviving channel must be carried over untouched"
        );
        let replacement = fixed
            .channels
            .iter()
            .find(|c| c.user_pair() == (u1, u2))
            .expect("same user pair re-routed");
        assert_eq!(replacement.interior_switches(), &[s2], "masked detour");
        assert!(fixed.rate.value() < base.rate.value());
        assert!(out.searches >= 1);
    }

    /// Line tree u0—u1—u2 whose middle relay dies with no same-pair
    /// alternative, but a different tree shape exists: re-attachment.
    #[test]
    fn reattach_when_same_pair_has_no_route() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 2 });
        let s2 = g.add_node(NodeKind::Switch { qubits: 2 });
        let s3 = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(u0, s1, 500.0);
        g.add_edge(s1, u1, 500.0);
        g.add_edge(u1, s2, 400.0);
        g.add_edge(s2, u2, 400.0);
        g.add_edge(u0, s3, 2000.0);
        g.add_edge(s3, u2, 2000.0);
        let net = QuantumNetwork::from_graph(g, physics());
        let base = PrimBased::default().solve(&net).unwrap();
        let pairs: Vec<_> = base.channels.iter().map(Channel::user_pair).collect();
        assert!(pairs.contains(&(u0, u1)) && pairs.contains(&(u1, u2)));

        let mut state = NetworkState::new(&net);
        state.apply(&FailureKind::SwitchDeath { node: s1 });
        let out = repair(&net, &base, &state);
        assert_eq!(out.method, RepairMethod::Reattach);
        let fixed = out.solution.unwrap();
        let pairs: Vec<_> = fixed.channels.iter().map(Channel::user_pair).collect();
        assert!(pairs.contains(&(u1, u2)), "surviving channel kept");
        assert!(pairs.contains(&(u0, u2)), "re-attached through s3");
    }

    /// A dead relay whose pair's only alternative relay is held by a
    /// surviving channel: rung 1 and rung 2 both fail (the survivor
    /// blocks the switch, and the severed user has no other fiber), but
    /// a from-scratch solve releases the survivor onto the long direct
    /// fiber and routes the broken pair through the freed switch.
    #[test]
    fn full_resolve_when_survivors_block_repair() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 2 });
        let s4 = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(u0, s4, 300.0);
        g.add_edge(s4, u1, 300.0);
        g.add_edge(u0, s, 400.0);
        g.add_edge(u1, s, 500.0);
        g.add_edge(u2, s, 800.0);
        g.add_edge(u0, u2, 4000.0);
        let net = QuantumNetwork::from_graph(g, physics());
        let base = PrimBased::default().solve(&net).unwrap();
        // Greedy picks (u0,u1) via s4 (best rate) and (u0,u2) via s.
        let pairs: Vec<_> = base.channels.iter().map(Channel::user_pair).collect();
        assert_eq!(pairs, vec![(u0, u1), (u0, u2)]);
        assert!(base.channels.iter().any(|c| c.interior_switches() == [s]));

        let mut state = NetworkState::new(&net);
        state.apply(&FailureKind::SwitchDeath { node: s4 });
        let out = repair(&net, &base, &state);
        assert_eq!(out.method, RepairMethod::FullResolve);
        let fixed = out.solution.unwrap();
        let via_s = fixed
            .channels
            .iter()
            .find(|c| c.interior_switches() == [s])
            .expect("broken pair re-routed through the freed switch");
        assert_eq!(via_s.user_pair(), (u0, u1));
        let direct = fixed
            .channels
            .iter()
            .find(|c| c.interior_switches().is_empty())
            .expect("survivor displaced onto the long direct fiber");
        assert_eq!(direct.user_pair(), (u0, u2));
        assert!(fixed.rate.value() > 0.0);
        assert!(fixed.rate.value() < base.rate.value());
    }

    #[test]
    fn unrepairable_when_a_user_is_severed() {
        let (net, [u0, ..]) = redundant_net();
        let base = PrimBased::default().solve(&net).unwrap();
        let mut state = NetworkState::new(&net);
        // u0's only fiber is u0—u1 (edge 0).
        state.apply(&FailureKind::LinkCut {
            edge: net.graph().find_edge(u0, net.users()[1]).unwrap(),
        });
        let out = repair(&net, &base, &state);
        assert_eq!(out.method, RepairMethod::Unrepairable);
        assert!(out.solution.is_none());
        assert_eq!(out.rate_value(), 0.0);
    }

    #[test]
    fn repair_is_deterministic_under_accumulated_failures() {
        let net = NetworkSpec::paper_default().build(17);
        let base = PrimBased::default().solve(&net).unwrap();
        let plan = FailurePlan::random(&net, 5, 100, 99);
        let run = || {
            let mut state = NetworkState::new(&net);
            let mut current = base.clone();
            let mut log = Vec::new();
            for f in &plan.failures {
                state.apply(&f.kind);
                let out = repair(&net, &current, &state);
                log.push((
                    out.method,
                    out.searches,
                    out.torn_down,
                    out.rate_value().to_bits(),
                ));
                match out.solution {
                    Some(s) => current = s,
                    None => break,
                }
            }
            log
        };
        assert_eq!(run(), run(), "repair must be bitwise deterministic");
    }
}
