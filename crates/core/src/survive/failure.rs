//! Fault injection: failure kinds, seeded failure plans, and the
//! accumulated degraded-network state.

use qnet_graph::{EdgeId, NodeId, SearchMask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::{CapacityMap, Channel};
use crate::model::{NodeKind, QuantumNetwork};
use crate::solver::{Solution, SolutionStyle};

/// One kind of network fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// An optical fiber is cut; the edge disappears.
    LinkCut {
        /// The failed edge.
        edge: EdgeId,
    },
    /// A switch dies entirely: it can no longer relay, and every
    /// incident fiber is unusable. Users never die (they are the
    /// demand, not the infrastructure).
    SwitchDeath {
        /// The failed switch.
        node: NodeId,
    },
    /// A switch loses part of its quantum memory but stays up.
    CapacityLoss {
        /// The degraded switch.
        node: NodeId,
        /// Qubits permanently lost (saturating at zero free).
        qubits: u32,
    },
}

impl FailureKind {
    /// Kebab-case tag for trace events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::LinkCut { .. } => "link-cut",
            FailureKind::SwitchDeath { .. } => "switch-death",
            FailureKind::CapacityLoss { .. } => "capacity-loss",
        }
    }
}

/// A fault scheduled at a protocol slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Failure {
    /// What fails.
    pub kind: FailureKind,
    /// The protocol slot at which it fails (see `qnet-sim`).
    pub at_slot: u64,
}

/// A deterministic, seeded schedule of faults, sorted by slot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// Scheduled faults in non-decreasing `at_slot` order; equal slots
    /// keep their draw order.
    pub failures: Vec<Failure>,
}

/// Decorrelates the failure draw from the topology seed.
const FAILURE_SEED_SALT: u64 = 0x5afe_c0de_fa11_ed05;

impl FailurePlan {
    /// Draws `count` faults for `net`, scheduled uniformly over
    /// `0..horizon` slots, from a seeded RNG. The same
    /// `(net, count, horizon, seed)` always yields the same plan.
    ///
    /// The family: link cuts with probability 1/2, switch deaths 1/4,
    /// capacity losses of 1–2 qubits 1/4. Kinds whose subject pool is
    /// empty (no edges, no switches) fall back to the other kinds; a
    /// network with neither edges nor switches gets an empty plan.
    /// Repeated faults on an already-dead element are allowed — they
    /// are no-ops when applied, which models independent fault sources.
    pub fn random(net: &QuantumNetwork, count: usize, horizon: u64, seed: u64) -> FailurePlan {
        let mut rng = StdRng::seed_from_u64(seed ^ FAILURE_SEED_SALT);
        let switches: Vec<NodeId> = net
            .graph()
            .node_ids()
            .filter(|&v| net.kind(v).is_switch())
            .collect();
        let edge_count = net.graph().edge_count();
        let mut failures = Vec::with_capacity(count);
        for _ in 0..count {
            let roll = rng.random_range(0..4u32);
            let kind = if (roll < 2 || switches.is_empty()) && edge_count > 0 {
                FailureKind::LinkCut {
                    edge: EdgeId::new(rng.random_range(0..edge_count)),
                }
            } else if !switches.is_empty() {
                let node = switches[rng.random_range(0..switches.len())];
                if roll == 2 {
                    FailureKind::SwitchDeath { node }
                } else {
                    FailureKind::CapacityLoss {
                        node,
                        qubits: rng.random_range(1..=2u32),
                    }
                }
            } else {
                continue;
            };
            let at_slot = rng.random_range(0..horizon.max(1));
            failures.push(Failure { kind, at_slot });
        }
        failures.sort_by_key(|f| f.at_slot); // stable: draw order breaks ties
        FailurePlan { failures }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// `true` when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The accumulated effect of applied failures on a network: a
/// [`SearchMask`] of dead edges/vertices plus per-switch lost qubits.
///
/// The original [`QuantumNetwork`] is never mutated — node and edge ids
/// stay valid across failures, so pre- and post-failure solutions are
/// directly comparable and auditable in one id space.
#[derive(Clone, Debug)]
pub struct NetworkState<'n> {
    net: &'n QuantumNetwork,
    mask: SearchMask,
    /// Per-node qubits permanently lost to capacity degradation.
    lost: Vec<u32>,
}

impl<'n> NetworkState<'n> {
    /// A pristine state: nothing failed yet.
    pub fn new(net: &'n QuantumNetwork) -> Self {
        NetworkState {
            net,
            mask: SearchMask::new(),
            lost: vec![0; net.graph().node_count()],
        }
    }

    /// The network this state degrades.
    pub fn network(&self) -> &'n QuantumNetwork {
        self.net
    }

    /// Applies one fault. Faults accumulate; re-failing a dead element
    /// is a no-op.
    pub fn apply(&mut self, kind: &FailureKind) {
        match *kind {
            FailureKind::LinkCut { edge } => {
                self.mask.kill_edge(edge);
            }
            FailureKind::SwitchDeath { node } => {
                debug_assert!(self.net.kind(node).is_switch(), "users never die");
                self.mask.kill_node(node);
            }
            FailureKind::CapacityLoss { node, qubits } => {
                debug_assert!(self.net.kind(node).is_switch(), "users never degrade");
                self.lost[node.index()] = self.lost[node.index()].saturating_add(qubits);
            }
        }
    }

    /// The dead-element mask for masked searches.
    pub fn mask(&self) -> &SearchMask {
        &self.mask
    }

    /// Qubits lost at `v` to capacity degradation.
    pub fn lost_qubits(&self, v: NodeId) -> u32 {
        self.lost[v.index()]
    }

    /// `true` when no applied fault had any effect.
    pub fn is_intact(&self) -> bool {
        self.mask.is_empty() && self.lost.iter().all(|&l| l == 0)
    }

    /// Qubits still installed at `v`: the original capacity minus
    /// degradation losses (dead switches keep their nominal capacity
    /// here — the mask already makes them unusable).
    pub fn effective_qubits(&self, v: NodeId) -> u32 {
        self.net
            .kind(v)
            .qubits()
            .saturating_sub(self.lost[v.index()])
    }

    /// A fresh capacity map for the degraded network: full capacity
    /// minus every withdrawal so far. Dead switches are handled by the
    /// mask, not the map.
    pub fn degraded_capacity(&self) -> CapacityMap {
        let mut cap = CapacityMap::new(self.net);
        for (i, &lost) in self.lost.iter().enumerate() {
            cap.withdraw(NodeId::new(i), lost);
        }
        cap
    }

    /// `true` when `channel` uses a dead edge or touches a dead vertex.
    pub fn channel_broken(&self, channel: &Channel) -> bool {
        self.mask.breaks_path(&channel.path)
    }

    /// `true` when `solution` survives this state as-is: a BSM tree
    /// whose channels are all unbroken and whose total qubit demand
    /// fits the degraded capacity at every switch.
    ///
    /// Fusion-star solutions are conservatively rejected — the
    /// survivability layer models BSM trees.
    pub fn admits_solution(&self, solution: &Solution) -> bool {
        if solution.style != SolutionStyle::BsmTree {
            return false;
        }
        if solution.channels.iter().any(|c| self.channel_broken(c)) {
            return false;
        }
        solution
            .as_tree()
            .qubit_demand()
            .iter()
            .all(|(&v, &demand)| demand <= self.effective_qubits(v))
    }

    /// Materializes the degraded network as a standalone
    /// [`QuantumNetwork`]: dead edges (and edges incident to dead
    /// vertices) removed, switch capacities reduced, dead switches left
    /// in place with zero qubits so **node ids are preserved**.
    ///
    /// Edge ids are re-densified by the removal, so solutions are not
    /// transferable between the original and the materialized network —
    /// use this for rate-level comparisons only (e.g. handing the
    /// degraded instance to an exhaustive oracle).
    pub fn materialize(&self) -> QuantumNetwork {
        let g = self.net.graph();
        let mut out = qnet_graph::Graph::new();
        for v in g.node_ids() {
            let kind = match self.net.kind(v) {
                NodeKind::User => NodeKind::User,
                NodeKind::Switch { .. } => {
                    let qubits = if self.mask.node_dead(v) {
                        0
                    } else {
                        self.effective_qubits(v)
                    };
                    NodeKind::Switch { qubits }
                }
            };
            out.add_node(kind);
        }
        for e in g.edge_refs() {
            if !self.mask.blocks(e.id, e.a, e.b) {
                out.add_edge(e.a, e.b, *e.payload);
            }
        }
        QuantumNetwork::from_parts(out, self.net.users().to_vec(), *self.net.physics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkSpec;

    #[test]
    fn failure_plans_are_deterministic_and_sorted() {
        let net = NetworkSpec::paper_default().build(3);
        let a = FailurePlan::random(&net, 16, 100, 42);
        let b = FailurePlan::random(&net, 16, 100, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.failures.windows(2).all(|w| w[0].at_slot <= w[1].at_slot));
        let c = FailurePlan::random(&net, 16, 100, 43);
        assert_ne!(a, c, "different seeds should differ");
        // Every subject is in range, and deaths/losses hit switches only.
        for f in &a.failures {
            assert!(f.at_slot < 100);
            match f.kind {
                FailureKind::LinkCut { edge } => {
                    assert!(edge.index() < net.graph().edge_count());
                }
                FailureKind::SwitchDeath { node } => {
                    assert!(net.kind(node).is_switch());
                }
                FailureKind::CapacityLoss { node, qubits } => {
                    assert!(net.kind(node).is_switch());
                    assert!((1..=2).contains(&qubits));
                }
            }
        }
    }

    #[test]
    fn state_accumulates_and_materializes() {
        let net = NetworkSpec::paper_default().build(3);
        let mut state = NetworkState::new(&net);
        assert!(state.is_intact());
        let switch = net
            .graph()
            .node_ids()
            .find(|&v| net.kind(v).is_switch())
            .unwrap();
        let original = net.kind(switch).qubits();
        state.apply(&FailureKind::CapacityLoss {
            node: switch,
            qubits: 1,
        });
        assert_eq!(state.effective_qubits(switch), original - 1);
        state.apply(&FailureKind::LinkCut {
            edge: EdgeId::new(0),
        });
        assert!(!state.is_intact());
        assert!(state.mask().edge_dead(EdgeId::new(0)));

        let degraded = state.materialize();
        assert_eq!(degraded.graph().node_count(), net.graph().node_count());
        assert_eq!(degraded.users(), net.users());
        assert_eq!(
            degraded.graph().edge_count(),
            net.graph().edge_count() - 1,
            "exactly the cut edge disappears"
        );
        assert_eq!(degraded.kind(switch).qubits(), original - 1);
    }

    #[test]
    fn dead_switch_materializes_with_zero_qubits_and_no_edges() {
        let net = NetworkSpec::paper_default().build(3);
        let mut state = NetworkState::new(&net);
        let switch = net
            .graph()
            .node_ids()
            .find(|&v| net.kind(v).is_switch() && net.graph().degree(v) > 0)
            .unwrap();
        let incident = net.graph().degree(switch);
        state.apply(&FailureKind::SwitchDeath { node: switch });
        let degraded = state.materialize();
        assert_eq!(degraded.kind(switch).qubits(), 0);
        assert_eq!(degraded.graph().degree(switch), 0);
        assert_eq!(
            degraded.graph().edge_count(),
            net.graph().edge_count() - incident
        );
    }

    #[test]
    fn degraded_capacity_reflects_withdrawals() {
        let net = NetworkSpec::paper_default().build(3);
        let mut state = NetworkState::new(&net);
        let switch = net
            .graph()
            .node_ids()
            .find(|&v| net.kind(v).is_switch())
            .unwrap();
        let base = CapacityMap::new(&net);
        state.apply(&FailureKind::CapacityLoss {
            node: switch,
            qubits: 2,
        });
        let cap = state.degraded_capacity();
        assert_eq!(cap.free(switch), base.free(switch).saturating_sub(2));
        assert_ne!(cap.epoch(), base.epoch(), "withdrawal bumps the epoch");
    }
}
