//! # muerp-core — Multi-user Entanglement Routing over Quantum Internets
//!
//! A from-scratch reproduction of the system described in *"Multi-user
//! Entanglement Routing Design over Quantum Internets"* (IEEE ICDCS 2024).
//!
//! The **Multi-user Entanglement Routing Problem (MUERP)**: given a quantum
//! network of users `U` and capacity-limited switches `R` connected by
//! optical fibers, route *quantum channels* (vertex-capacitated paths) that
//! form an *entanglement tree* spanning all users, maximizing the
//! entanglement rate
//!
//! ```text
//! P_Λ = q^(l−1) · exp(−α · Σ Lᵢ)      (one channel, paper Eq. 1)
//! P   = Π_Λ P_Λ                        (the tree, paper Eq. 2)
//! ```
//!
//! ## Layout
//!
//! * [`model`] — the quantum-network instance: node kinds, switch
//!   capacities, physics parameters (`q`, `α`).
//! * [`rate`] — the [`rate::Rate`] type: probabilities handled in the
//!   log domain so products of hundreds of factors stay exact.
//! * [`channel`] — quantum channels (Eq. 1), capacity bookkeeping.
//! * [`tree`] — entanglement trees (Eq. 2) and full solution validation.
//! * [`algorithms`] — the paper's four algorithms plus the two baselines:
//!   * [`algorithms::max_rate_channel`] — **Algorithm 1**
//!   * [`algorithms::OptimalSufficient`] — **Algorithm 2** (optimal when
//!     every switch has `Q ≥ 2·|U|` qubits)
//!   * [`algorithms::ConflictFree`] — **Algorithm 3**
//!   * [`algorithms::PrimBased`] — **Algorithm 4**
//!   * [`algorithms::baselines::EQCast`] — extended Q-CAST
//!   * [`algorithms::baselines::NFusion`] — n-fusion star (MP-P style)
//! * [`audit`] — the independent [`audit::SolutionAudit`]: every MUERP
//!   invariant re-derived from raw fiber lengths, with named-invariant
//!   violations (the conformance harness's ground truth).
//! * [`feasibility`] — the sufficient condition of Theorem 3 and an
//!   exhaustive optimal oracle for tiny instances (the NP-hardness means
//!   no general polynomial oracle exists).
//! * [`extensions`] — the paper's two named extensions: fidelity-aware
//!   routing and concurrent multi-group routing.
//! * [`survive`] — survivability: seeded fault injection
//!   ([`survive::FailurePlan`]), the incremental repair ladder
//!   ([`survive::repair`]), and the edge-criticality report behind the
//!   paper's Fig. 7(b) "critical edges" observation.
//!
//! ## Quickstart
//!
//! ```
//! use muerp_core::prelude::*;
//!
//! // The paper's default setup: 50 switches, 10 users, Waxman topology,
//! // average degree 6, 4 qubits per switch, q = 0.9, α = 1e-4.
//! let net = NetworkSpec::paper_default().build(42);
//! let solution = PrimBased::default().solve(&net)?;
//! assert!(solution.rate.value() > 0.0);
//! validate_solution(&net, &solution)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod analysis;
pub mod audit;
pub mod channel;
pub mod error;
pub mod extensions;
pub mod feasibility;
pub mod model;
pub mod rate;
pub mod solver;
pub mod survive;
pub mod tree;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::algorithms::baselines::{EQCast, NFusion};
    pub use crate::algorithms::{ConflictFree, OptimalSufficient, PrimBased};
    pub use crate::audit::{audit_solution, AuditReport, AuditViolation, SolutionAudit};
    pub use crate::channel::{CapacityMap, Channel};
    pub use crate::error::RoutingError;
    pub use crate::model::{NetworkSpec, NodeKind, PhysicsParams, QuantumNetwork};
    pub use crate::rate::Rate;
    pub use crate::solver::{validate_solution, RoutingAlgorithm, Solution, SolutionStyle};
    pub use crate::survive::{
        criticality_report, full_resolve, repair, CriticalityReport, Failure, FailureKind,
        FailurePlan, NetworkState, RepairMethod, RepairOutcome,
    };
    pub use crate::tree::EntanglementTree;
}
