//! Error types for routing and validation.

use core::fmt;

use qnet_graph::NodeId;

/// Why a routing algorithm failed to produce an entanglement tree.
///
/// Per the paper's simulation setup, a run that cannot establish a channel
/// "due to network constraints" scores an entanglement rate of zero; the
/// experiment harness maps these errors to rate 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// No channel with positive rate exists between two users that must be
    /// connected (network disconnected or capacity exhausted).
    NoFeasibleChannel {
        /// One endpoint of the unconnectable pair (a representative user
        /// of one union in Algorithms 3/4).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The instance has fewer than two users; an entanglement tree over
    /// `U` needs `|U| ≥ 2`.
    TooFewUsers {
        /// Number of users present.
        got: usize,
    },
    /// No fusion center with sufficient capacity exists (N-FUSION
    /// baseline).
    NoFusionCenter,
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::NoFeasibleChannel { a, b } => {
                write!(f, "no feasible quantum channel between {a} and {b}")
            }
            RoutingError::TooFewUsers { got } => {
                write!(f, "entanglement needs at least 2 users, got {got}")
            }
            RoutingError::NoFusionCenter => {
                write!(f, "no fusion center with sufficient capacity")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Why a proposed solution is invalid for a given network.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A channel endpoint is not a quantum user.
    EndpointNotUser {
        /// The offending node.
        node: NodeId,
    },
    /// A channel's interior visits a non-switch node.
    InteriorNotSwitch {
        /// The offending node.
        node: NodeId,
    },
    /// A channel is not a simple path (repeats a node).
    NotSimplePath {
        /// The repeated node.
        node: NodeId,
    },
    /// A channel uses an edge that does not exist between its claimed
    /// endpoints.
    BrokenPath,
    /// Total qubit demand at a switch exceeds its capacity.
    CapacityExceeded {
        /// The overloaded switch.
        node: NodeId,
        /// Qubits demanded.
        demanded: u32,
        /// Qubits available.
        available: u32,
    },
    /// The channel set does not form a spanning tree over the users
    /// (wrong channel count, a cycle, or users left unconnected).
    NotSpanningTree {
        /// Human-readable detail.
        detail: String,
    },
    /// More than one channel routed between the same user pair (the model
    /// allows at most one).
    DuplicateUserPair {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// The solution's claimed rate disagrees with recomputation from its
    /// channels.
    RateMismatch {
        /// Rate claimed by the solution.
        claimed: f64,
        /// Rate recomputed from the channel set.
        recomputed: f64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EndpointNotUser { node } => {
                write!(f, "channel endpoint {node} is not a quantum user")
            }
            ValidationError::InteriorNotSwitch { node } => {
                write!(f, "channel interior node {node} is not a switch")
            }
            ValidationError::NotSimplePath { node } => {
                write!(f, "channel repeats node {node}")
            }
            ValidationError::BrokenPath => write!(f, "channel edge list does not match its nodes"),
            ValidationError::CapacityExceeded {
                node,
                demanded,
                available,
            } => write!(
                f,
                "switch {node} capacity exceeded: {demanded} qubits demanded, {available} available"
            ),
            ValidationError::NotSpanningTree { detail } => {
                write!(
                    f,
                    "channels do not form a spanning entanglement tree: {detail}"
                )
            }
            ValidationError::DuplicateUserPair { a, b } => {
                write!(f, "more than one channel between users {a} and {b}")
            }
            ValidationError::RateMismatch {
                claimed,
                recomputed,
            } => write!(
                f,
                "solution rate {claimed:e} disagrees with recomputed {recomputed:e}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let e = RoutingError::NoFeasibleChannel {
            a: NodeId::new(0),
            b: NodeId::new(1),
        };
        let s = e.to_string();
        assert!(s.starts_with("no feasible"));
        assert!(!s.ends_with('.'));
        let v = ValidationError::CapacityExceeded {
            node: NodeId::new(3),
            demanded: 6,
            available: 4,
        };
        assert!(v.to_string().contains("6 qubits demanded"));
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RoutingError>();
        assert_err::<ValidationError>();
    }
}
