//! Feasibility analysis and an exhaustive optimal oracle.
//!
//! Theorem 1 of the paper shows deciding MUERP feasibility is NP-complete
//! and Theorem 2 shows optimizing it is NP-hard, so no general
//! polynomial-time oracle exists. This module provides:
//!
//! * [`satisfies_sufficient_condition`] — the `Q_r ≥ 2·|U|` condition of
//!   Theorem 3 under which Algorithm 2 is provably optimal;
//! * [`exhaustive_optimal`] — branch-and-bound exact search over
//!   (spanning tree shape × channel realization) for *tiny* instances,
//!   used by tests to certify Algorithm 2's optimality claim and to
//!   exhibit instances where the heuristics are strictly suboptimal;
//! * [`enumerate_channels`] — all simple switch-interior paths between
//!   two users up to a length bound, as rate-sorted channels.

use qnet_graph::paths::Path;
use qnet_graph::NodeId;

use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::tree::EntanglementTree;

/// Theorem 3's sufficient condition: every switch has at least `2·|U|`
/// qubits, guaranteeing a feasible solution exists (given connectivity)
/// and that Algorithm 2's output is optimal.
pub fn satisfies_sufficient_condition(net: &QuantumNetwork) -> bool {
    let bound = 2 * net.user_count() as u32;
    net.switches().all(|s| net.kind(s).qubits() >= bound)
}

/// Enumerates every simple path between users `a` and `b` whose interior
/// vertices are switches with ≥ 2 qubits, up to `max_links` links, as
/// [`Channel`]s sorted by rate descending.
///
/// Exponential in the worst case — intended for tiny oracle instances.
pub fn enumerate_channels(
    net: &QuantumNetwork,
    a: NodeId,
    b: NodeId,
    max_links: usize,
) -> Vec<Channel> {
    let mut out = Vec::new();
    let mut nodes = vec![a];
    let mut edges = Vec::new();
    let mut on_path = vec![false; net.graph().node_count()];
    on_path[a.index()] = true;
    dfs(
        net,
        b,
        max_links,
        &mut nodes,
        &mut edges,
        &mut on_path,
        &mut out,
    );
    out.sort_by_key(|x| std::cmp::Reverse(x.rate));
    out
}

fn dfs(
    net: &QuantumNetwork,
    target: NodeId,
    max_links: usize,
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<qnet_graph::EdgeId>,
    on_path: &mut Vec<bool>,
    out: &mut Vec<Channel>,
) {
    let here = *nodes.last().expect("path never empty");
    if here == target {
        let path = Path {
            nodes: nodes.clone(),
            edges: edges.clone(),
            cost: 0.0,
        };
        out.push(Channel::from_path(net, path));
        return;
    }
    if edges.len() == max_links {
        return;
    }
    // Interior nodes must be capable switches; `here` may only be
    // extended from if it is the source or such a switch.
    if nodes.len() > 1 && !(net.kind(here).is_switch() && net.kind(here).qubits() >= 2) {
        return;
    }
    for (next, eid) in net.graph().neighbors(here) {
        if on_path[next.index()] {
            continue;
        }
        nodes.push(next);
        edges.push(eid);
        on_path[next.index()] = true;
        dfs(net, target, max_links, nodes, edges, on_path, out);
        on_path[next.index()] = false;
        edges.pop();
        nodes.pop();
    }
}

/// Exact optimal MUERP solution by exhaustive search, or `None` when no
/// feasible entanglement tree exists (within the `max_links` horizon).
///
/// Enumerates all `|U|^(|U|−2)` spanning-tree shapes over the users
/// (Prüfer sequences) and, for each shape, branch-and-bounds over the
/// channel realizations of its edges under shared switch capacity.
///
/// # Panics
///
/// Panics when `|U| > 6` — the search is exponential and intended as a
/// test oracle only.
pub fn exhaustive_optimal(net: &QuantumNetwork, max_links: usize) -> Option<EntanglementTree> {
    let users = net.users();
    let k = users.len();
    assert!(k <= 6, "exhaustive oracle supports ≤ 6 users, got {k}");
    if k < 2 {
        return Some(EntanglementTree::new());
    }

    // Candidate channels per unordered user-index pair.
    let mut candidates = vec![vec![Vec::<Channel>::new(); k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            candidates[i][j] = enumerate_channels(net, users[i], users[j], max_links);
        }
    }

    let mut best: Option<(Rate, EntanglementTree)> = None;

    // Enumerate tree shapes via Prüfer sequences over k labels.
    let seq_len = k - 2;
    let mut prufer = vec![0usize; seq_len];
    loop {
        let tree_pairs = decode_prufer(&prufer, k);
        search_assignment(net, &candidates, &tree_pairs, &mut best);

        let mut i = 0;
        loop {
            if i == seq_len {
                return best.map(|(_, t)| t);
            }
            prufer[i] += 1;
            if prufer[i] < k {
                break;
            }
            prufer[i] = 0;
            i += 1;
        }
        if seq_len == 0 {
            return best.map(|(_, t)| t);
        }
    }
}

/// `true` when any feasible entanglement tree exists within the horizon.
pub fn is_feasible_exhaustive(net: &QuantumNetwork, max_links: usize) -> bool {
    exhaustive_optimal(net, max_links)
        .is_some_and(|t| t.channels.len() + 1 == net.user_count() || net.user_count() < 2)
}

fn decode_prufer(prufer: &[usize], k: usize) -> Vec<(usize, usize)> {
    let mut deg = vec![1usize; k];
    for &p in prufer {
        deg[p] += 1;
    }
    let mut used = vec![false; k];
    let mut pairs = Vec::with_capacity(k - 1);
    for &p in prufer {
        let leaf = (0..k).find(|&v| !used[v] && deg[v] == 1).expect("valid");
        used[leaf] = true;
        deg[leaf] -= 1;
        deg[p] -= 1;
        pairs.push((leaf.min(p), leaf.max(p)));
    }
    let rest: Vec<usize> = (0..k).filter(|&v| !used[v] && deg[v] == 1).collect();
    debug_assert_eq!(rest.len(), 2);
    pairs.push((rest[0].min(rest[1]), rest[0].max(rest[1])));
    pairs
}

fn search_assignment(
    net: &QuantumNetwork,
    candidates: &[Vec<Vec<Channel>>],
    tree_pairs: &[(usize, usize)],
    best: &mut Option<(Rate, EntanglementTree)>,
) {
    // Upper bound per remaining edge: its best channel's rate.
    let bounds: Vec<Rate> = tree_pairs
        .iter()
        .map(|&(i, j)| candidates[i][j].first().map_or(Rate::ZERO, |c| c.rate))
        .collect();
    if bounds.iter().any(|r| r.is_zero()) {
        return; // some pair has no channel at all
    }
    let mut suffix_bound = vec![Rate::ONE; tree_pairs.len() + 1];
    for idx in (0..tree_pairs.len()).rev() {
        suffix_bound[idx] = suffix_bound[idx + 1] * bounds[idx];
    }

    let mut capacity = CapacityMap::new(net);
    let mut chosen: Vec<Channel> = Vec::with_capacity(tree_pairs.len());
    assign(
        candidates,
        tree_pairs,
        &suffix_bound,
        &mut capacity,
        &mut chosen,
        Rate::ONE,
        best,
    );
}

#[allow(clippy::too_many_arguments)]
fn assign(
    candidates: &[Vec<Vec<Channel>>],
    tree_pairs: &[(usize, usize)],
    suffix_bound: &[Rate],
    capacity: &mut CapacityMap,
    chosen: &mut Vec<Channel>,
    product: Rate,
    best: &mut Option<(Rate, EntanglementTree)>,
) {
    let idx = chosen.len();
    if idx == tree_pairs.len() {
        if best.as_ref().is_none_or(|(r, _)| product > *r) {
            *best = Some((
                product,
                EntanglementTree {
                    channels: chosen.clone(),
                },
            ));
        }
        return;
    }
    // Bound: even taking the best remaining channels cannot beat `best`.
    if let Some((incumbent, _)) = best {
        if product * suffix_bound[idx] <= *incumbent {
            return;
        }
    }
    let (i, j) = tree_pairs[idx];
    for c in &candidates[i][j] {
        if !capacity.admits(c) {
            continue;
        }
        capacity.reserve(c);
        chosen.push(c.clone());
        assign(
            candidates,
            tree_pairs,
            suffix_bound,
            capacity,
            chosen,
            product * c.rate,
            best,
        );
        let c = chosen.pop().expect("just pushed");
        capacity.release(&c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ConflictFree, OptimalSufficient, PrimBased};
    use crate::model::{NodeKind, PhysicsParams};
    use crate::solver::RoutingAlgorithm;
    use qnet_graph::Graph;

    fn tiny_net(qubits: u32) -> QuantumNetwork {
        // 4 users on a ring of 4 switches with chords.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u: Vec<NodeId> = (0..4).map(|_| g.add_node(NodeKind::User)).collect();
        let s: Vec<NodeId> = (0..4)
            .map(|_| g.add_node(NodeKind::Switch { qubits }))
            .collect();
        for i in 0..4 {
            g.add_edge(u[i], s[i], 800.0 + 50.0 * i as f64);
            g.add_edge(s[i], s[(i + 1) % 4], 600.0);
        }
        g.add_edge(s[0], s[2], 900.0);
        QuantumNetwork::from_graph(g, PhysicsParams::paper_default())
    }

    #[test]
    fn sufficient_condition_detection() {
        assert!(satisfies_sufficient_condition(&tiny_net(8))); // 2·|U| = 8
        assert!(!satisfies_sufficient_condition(&tiny_net(7)));
    }

    #[test]
    fn enumerate_channels_finds_all_simple_routes() {
        let net = tiny_net(4);
        let users = net.users().to_vec();
        let chans = enumerate_channels(&net, users[0], users[1], 6);
        assert!(!chans.is_empty());
        // Sorted descending and all valid.
        for w in chans.windows(2) {
            assert!(w[0].rate >= w[1].rate);
        }
        for c in &chans {
            assert!(c.validate(&net).is_ok());
        }
        // Longer horizon can only add channels.
        let more = enumerate_channels(&net, users[0], users[1], 8);
        assert!(more.len() >= chans.len());
    }

    #[test]
    fn oracle_matches_alg2_under_sufficient_condition() {
        let net = tiny_net(8);
        let exact = exhaustive_optimal(&net, 6).expect("feasible");
        let alg2 = OptimalSufficient.solve(&net).unwrap();
        let exact_rate = exact.rate().value();
        assert!(
            (exact_rate - alg2.rate.value()).abs() <= 1e-9 * exact_rate,
            "oracle {} vs alg2 {}",
            exact_rate,
            alg2.rate.value()
        );
    }

    #[test]
    fn heuristics_never_beat_the_oracle() {
        for qubits in [2u32, 4] {
            let net = tiny_net(qubits);
            let Some(exact) = exhaustive_optimal(&net, 6) else {
                continue;
            };
            let bound = exact.rate().value() * (1.0 + 1e-9);
            if let Ok(sol) = ConflictFree::default().solve(&net) {
                assert!(sol.rate.value() <= bound, "alg3 beat oracle at Q={qubits}");
            }
            if let Ok(sol) = PrimBased::default().solve(&net) {
                assert!(sol.rate.value() <= bound, "alg4 beat oracle at Q={qubits}");
            }
        }
    }

    #[test]
    fn oracle_detects_infeasibility() {
        // Fig. 4(b): 3 users around a 2-qubit hub — classic connectivity
        // holds, MUERP infeasible.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let _u: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        for i in 0..3 {
            g.add_edge(NodeId::new(i), hub, 500.0);
        }
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        assert!(exhaustive_optimal(&net, 5).is_none());
        assert!(!is_feasible_exhaustive(&net, 5));
        // Upgrading the hub to 4 qubits flips feasibility.
        let mut g2 = net.graph().clone();
        *g2.node_mut(hub) = NodeKind::Switch { qubits: 4 };
        let net2 = QuantumNetwork::from_graph(g2, *net.physics());
        assert!(is_feasible_exhaustive(&net2, 5));
    }

    #[test]
    fn heuristics_are_strictly_suboptimal_somewhere() {
        // NP-hardness in action: scan tight-capacity instances until one
        // shows a strict oracle > heuristic gap.
        let mut found = false;
        for qubits in [2u32, 4] {
            let net = tiny_net(qubits);
            let Some(exact) = exhaustive_optimal(&net, 6) else {
                continue;
            };
            let exact_rate = exact.rate().value();
            for sol in [
                ConflictFree::default()
                    .solve(&net)
                    .ok()
                    .map(|s| s.rate.value()),
                PrimBased::default()
                    .solve(&net)
                    .ok()
                    .map(|s| s.rate.value()),
            ]
            .into_iter()
            .flatten()
            {
                if sol < exact_rate * (1.0 - 1e-9) {
                    found = true;
                }
            }
        }
        // Not a hard guarantee on this particular family, so only assert
        // the oracle ran; the strict-gap instance is asserted in the
        // integration suite with a crafted topology.
        let _ = found;
    }

    #[test]
    fn oracle_result_is_valid() {
        let net = tiny_net(4);
        if let Some(tree) = exhaustive_optimal(&net, 6) {
            tree.validate(&net).unwrap();
        }
    }
}
