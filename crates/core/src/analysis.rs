//! Solution diagnostics: what does a routed entanglement tree look like?
//!
//! The experiment harness reports a single rate per run; operators (and
//! the examples) want to see *why* — channel length profiles, which
//! switches carry the load, and where the bottleneck sits. All values
//! derive purely from a [`Solution`] plus its network.

use std::collections::HashMap;

use qnet_graph::NodeId;

use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::solver::Solution;

/// Aggregate statistics of one solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionStats {
    /// Number of channels.
    pub channels: usize,
    /// Links of the shortest channel.
    pub min_links: usize,
    /// Links of the longest channel.
    pub max_links: usize,
    /// Mean links per channel.
    pub mean_links: f64,
    /// Total fiber length used (km), counting shared fibers once per
    /// channel (each channel occupies its own core).
    pub total_fiber_km: f64,
    /// The weakest channel's rate (the multiplicative bottleneck).
    pub bottleneck_rate: Rate,
    /// The user pair of the weakest channel.
    pub bottleneck_pair: Option<(NodeId, NodeId)>,
    /// Qubits consumed per switch (absent switches consume none).
    pub switch_load: HashMap<NodeId, u32>,
    /// The most loaded switch and its consumed qubits.
    pub hottest_switch: Option<(NodeId, u32)>,
    /// Fraction of total switch qubits consumed.
    pub utilization: f64,
}

/// Computes [`SolutionStats`] for a solution on its network.
pub fn solution_stats(net: &QuantumNetwork, solution: &Solution) -> SolutionStats {
    let channels = &solution.channels;
    let link_counts: Vec<usize> = channels.iter().map(|c| c.link_count()).collect();
    let total_fiber_km = channels
        .iter()
        .flat_map(|c| c.path.edges.iter())
        .map(|&e| net.length(e))
        .sum();

    let bottleneck = channels.iter().min_by_key(|c| c.rate);
    let mut switch_load: HashMap<NodeId, u32> = HashMap::new();
    for c in channels {
        for &s in c.interior_switches() {
            *switch_load.entry(s).or_insert(0) += 2;
        }
    }
    let hottest_switch = switch_load
        .iter()
        .max_by_key(|(node, load)| (**load, std::cmp::Reverse(node.index())))
        .map(|(n, l)| (*n, *l));
    let total_capacity: u64 = net.switches().map(|s| net.kind(s).qubits() as u64).sum();
    let consumed: u64 = switch_load.values().map(|&v| v as u64).sum();

    SolutionStats {
        channels: channels.len(),
        min_links: link_counts.iter().copied().min().unwrap_or(0),
        max_links: link_counts.iter().copied().max().unwrap_or(0),
        mean_links: if channels.is_empty() {
            0.0
        } else {
            link_counts.iter().sum::<usize>() as f64 / channels.len() as f64
        },
        total_fiber_km,
        bottleneck_rate: bottleneck.map_or(Rate::ONE, |c| c.rate),
        bottleneck_pair: bottleneck.map(|c| c.user_pair()),
        switch_load,
        hottest_switch,
        utilization: if total_capacity == 0 {
            0.0
        } else {
            consumed as f64 / total_capacity as f64
        },
    }
}

/// Histogram of channel lengths: `hist[l]` = channels with `l` links.
pub fn channel_length_histogram(solution: &Solution) -> Vec<usize> {
    let Some(max) = solution.channels.iter().map(|c| c.link_count()).max() else {
        return Vec::new();
    };
    let mut hist = vec![0usize; max + 1];
    for c in &solution.channels {
        hist[c.link_count()] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ConflictFree, PrimBased};
    use crate::model::NetworkSpec;
    use crate::solver::RoutingAlgorithm;

    #[test]
    fn stats_are_internally_consistent() {
        let net = NetworkSpec::paper_default().build(40);
        let sol = ConflictFree::default().solve(&net).unwrap();
        let stats = solution_stats(&net, &sol);
        assert_eq!(stats.channels, net.user_count() - 1);
        assert!(stats.min_links >= 1);
        assert!(stats.min_links <= stats.max_links);
        assert!(stats.mean_links >= stats.min_links as f64);
        assert!(stats.mean_links <= stats.max_links as f64);
        assert!(stats.total_fiber_km > 0.0);
        assert!((0.0..=1.0).contains(&stats.utilization));
        // Bottleneck rate is ≤ every channel's rate.
        for c in &sol.channels {
            assert!(stats.bottleneck_rate <= c.rate);
        }
        // Switch load is even and within capacity.
        for (&s, &load) in &stats.switch_load {
            assert_eq!(load % 2, 0);
            assert!(load <= net.kind(s).qubits());
        }
        if let Some((hot, load)) = stats.hottest_switch {
            assert_eq!(stats.switch_load[&hot], load);
            assert!(stats.switch_load.values().all(|&v| v <= load));
        }
    }

    #[test]
    fn histogram_sums_to_channel_count() {
        let net = NetworkSpec::paper_default().build(41);
        let sol = PrimBased::default().solve(&net).unwrap();
        let hist = channel_length_histogram(&sol);
        assert_eq!(hist.iter().sum::<usize>(), sol.channels.len());
        assert_eq!(hist[0], 0, "no zero-link channels");
    }

    #[test]
    fn empty_solution_stats() {
        let net = NetworkSpec::paper_default().build(42);
        let sol = crate::solver::Solution::from_tree(crate::tree::EntanglementTree::new());
        let stats = solution_stats(&net, &sol);
        assert_eq!(stats.channels, 0);
        assert_eq!(stats.bottleneck_pair, None);
        assert_eq!(stats.hottest_switch, None);
        assert_eq!(stats.utilization, 0.0);
        assert!(channel_length_histogram(&sol).is_empty());
    }
}
