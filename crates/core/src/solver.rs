//! The uniform algorithm interface and end-to-end solution validation.
//!
//! Every routing method in this crate — the paper's Algorithms 2–4 and the
//! two comparison baselines — implements [`RoutingAlgorithm`], so the
//! experiment harness can sweep them interchangeably (paper §V runs all
//! five on every figure).

use std::collections::{HashMap, HashSet};

use qnet_graph::NodeId;

use crate::channel::Channel;
use crate::error::{RoutingError, ValidationError};
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::tree::EntanglementTree;

/// How a solution entangles the users.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolutionStyle {
    /// An entanglement tree of user-to-user channels joined by BSM
    /// swapping (the paper's algorithms and E-Q-CAST).
    BsmTree,
    /// A star of user-to-center paths fused into a GHZ state by one
    /// n-fusion measurement at the center (the N-FUSION baseline).
    FusionStar {
        /// The fusion center (a switch with ≥ `|U|` qubits, or a user).
        center: NodeId,
        /// Success rate of the final GHZ projective measurement.
        fusion_rate: Rate,
    },
}

/// The output of a routing algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// The routed channels. For [`SolutionStyle::BsmTree`] these are
    /// user-to-user channels forming an entanglement tree; for
    /// [`SolutionStyle::FusionStar`] they are user-to-center paths.
    pub channels: Vec<Channel>,
    /// The end-to-end entanglement rate of the user set.
    pub rate: Rate,
    /// Structural style of the solution.
    pub style: SolutionStyle,
}

impl Solution {
    /// Builds a BSM-tree solution from an entanglement tree.
    pub fn from_tree(tree: EntanglementTree) -> Self {
        let rate = tree.rate();
        Solution {
            channels: tree.channels,
            rate,
            style: SolutionStyle::BsmTree,
        }
    }

    /// View the channel set as an [`EntanglementTree`] (meaningful for
    /// [`SolutionStyle::BsmTree`] solutions).
    pub fn as_tree(&self) -> EntanglementTree {
        EntanglementTree {
            channels: self.channels.clone(),
        }
    }
}

/// A multi-user entanglement routing algorithm.
///
/// Implementations must be deterministic given their own configuration
/// (randomized choices take explicit seeds), so experiments are exactly
/// reproducible.
pub trait RoutingAlgorithm {
    /// Short display name matching the paper's figure legends
    /// (`"Alg-2"`, `"N-Fusion"`, …).
    fn name(&self) -> &'static str;

    /// Routes an entanglement structure for `net`'s user set.
    ///
    /// # Errors
    ///
    /// Returns a [`RoutingError`] when no structure can be established —
    /// the experiment harness scores this as entanglement rate 0, per the
    /// paper's setup.
    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError>;
}

impl<T: RoutingAlgorithm + ?Sized> RoutingAlgorithm for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        (**self).solve(net)
    }
}

/// Validates a solution end to end against the network.
///
/// For BSM trees this is [`EntanglementTree::validate`] plus a rate
/// recomputation. For fusion stars it checks the star structure (every
/// non-center user has exactly one path to the center), interior-switch
/// capacity (2 qubits per visit) *plus* the center's one-qubit-per-path
/// demand when the center is a switch, and the claimed rate.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found.
pub fn validate_solution(net: &QuantumNetwork, solution: &Solution) -> Result<(), ValidationError> {
    match solution.style {
        SolutionStyle::BsmTree => {
            let tree = solution.as_tree();
            tree.validate(net)?;
            let recomputed = tree.rate();
            check_rate(solution.rate, recomputed)
        }
        SolutionStyle::FusionStar {
            center,
            fusion_rate,
        } => validate_fusion_star(net, solution, center, fusion_rate),
    }
}

fn check_rate(claimed: Rate, recomputed: Rate) -> Result<(), ValidationError> {
    let (c, r) = (claimed.value(), recomputed.value());
    if (c - r).abs() > 1e-9 * r.max(1e-300) {
        return Err(ValidationError::RateMismatch {
            claimed: c,
            recomputed: r,
        });
    }
    Ok(())
}

fn validate_fusion_star(
    net: &QuantumNetwork,
    solution: &Solution,
    center: NodeId,
    fusion_rate: Rate,
) -> Result<(), ValidationError> {
    let users: HashSet<NodeId> = net.users().iter().copied().collect();
    let mut covered: HashSet<NodeId> = HashSet::new();
    let mut demand: HashMap<NodeId, u32> = HashMap::new();

    for c in &solution.channels {
        // Identify the user endpoint; the other endpoint must be `center`.
        let (src, dst) = (c.source(), c.destination());
        let user_end = if dst == center {
            src
        } else if src == center {
            dst
        } else {
            return Err(ValidationError::NotSpanningTree {
                detail: format!("fusion path {src}–{dst} does not touch the center {center}"),
            });
        };
        if !users.contains(&user_end) {
            return Err(ValidationError::EndpointNotUser { node: user_end });
        }
        if !covered.insert(user_end) {
            return Err(ValidationError::DuplicateUserPair {
                a: user_end,
                b: center,
            });
        }
        // Structural path checks (simple, interior switches, edges real).
        let mut seen = HashSet::new();
        for &v in &c.path.nodes {
            if !seen.insert(v) {
                return Err(ValidationError::NotSimplePath { node: v });
            }
        }
        for &mid in c.path.interior() {
            if net.is_user(mid) {
                return Err(ValidationError::InteriorNotSwitch { node: mid });
            }
            *demand.entry(mid).or_insert(0) += 2;
        }
        if c.path.edges.len() != c.path.nodes.len() - 1 {
            return Err(ValidationError::BrokenPath);
        }
        for (i, &e) in c.path.edges.iter().enumerate() {
            let (a, b) = net.graph().endpoints(e);
            let (x, y) = (c.path.nodes[i], c.path.nodes[i + 1]);
            if !((a == x && b == y) || (a == y && b == x)) {
                return Err(ValidationError::BrokenPath);
            }
        }
        // One qubit pinned at the center per incoming path when the
        // center is a switch.
        if net.kind(center).is_switch() {
            *demand.entry(center).or_insert(0) += 1;
        }
        // Per-path rate must match Eq. 1 semantics.
        let recomputed = Channel::from_path(net, c.path.clone());
        check_rate(c.rate, recomputed.rate)?;
    }

    // Coverage: every user except a center-user needs a path.
    let must_cover: HashSet<NodeId> = users.iter().copied().filter(|&u| u != center).collect();
    if covered != must_cover {
        return Err(ValidationError::NotSpanningTree {
            detail: format!(
                "fusion star covers {} of {} required users",
                covered.len(),
                must_cover.len()
            ),
        });
    }

    for (s, demanded) in demand {
        let available = net.kind(s).qubits();
        if demanded > available {
            return Err(ValidationError::CapacityExceeded {
                node: s,
                demanded,
                available,
            });
        }
    }

    let recomputed: Rate = solution.channels.iter().map(|c| c.rate).product::<Rate>() * fusion_rate;
    check_rate(solution.rate, recomputed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NodeKind, PhysicsParams};
    use qnet_graph::paths::Path;
    use qnet_graph::Graph;

    fn star_net(qubits: u32) -> (QuantumNetwork, Vec<NodeId>, NodeId) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let users: Vec<NodeId> = (0..3).map(|_| g.add_node(NodeKind::User)).collect();
        let center = g.add_node(NodeKind::Switch { qubits });
        for &u in &users {
            g.add_edge(u, center, 1000.0);
        }
        (
            QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
            users,
            center,
        )
    }

    fn path_channel(net: &QuantumNetwork, nodes: Vec<NodeId>) -> Channel {
        let edges = nodes
            .windows(2)
            .map(|w| net.graph().find_edge(w[0], w[1]).unwrap())
            .collect();
        Channel::from_path(
            net,
            Path {
                nodes,
                edges,
                cost: 0.0,
            },
        )
    }

    fn fusion_solution(net: &QuantumNetwork, users: &[NodeId], center: NodeId) -> Solution {
        let channels: Vec<Channel> = users
            .iter()
            .map(|&u| path_channel(net, vec![u, center]))
            .collect();
        let fusion_rate = Rate::from_prob(0.9).powi(users.len() as u32 + 1 - 1);
        let rate = channels.iter().map(|c| c.rate).product::<Rate>() * fusion_rate;
        Solution {
            channels,
            rate,
            style: SolutionStyle::FusionStar {
                center,
                fusion_rate,
            },
        }
    }

    #[test]
    fn valid_fusion_star_passes() {
        let (net, users, center) = star_net(3);
        let sol = fusion_solution(&net, &users, center);
        assert!(validate_solution(&net, &sol).is_ok());
    }

    #[test]
    fn fusion_center_capacity_enforced() {
        // 3 incoming paths need 3 qubits at the center; 2 is too few.
        let (net, users, center) = star_net(2);
        let sol = fusion_solution(&net, &users, center);
        assert!(matches!(
            validate_solution(&net, &sol),
            Err(ValidationError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn fusion_star_must_cover_all_users() {
        let (net, users, center) = star_net(3);
        let mut sol = fusion_solution(&net, &users, center);
        sol.channels.pop();
        // Rate still consistent with the remaining channels.
        let SolutionStyle::FusionStar { fusion_rate, .. } = sol.style else {
            unreachable!()
        };
        sol.rate = sol.channels.iter().map(|c| c.rate).product::<Rate>() * fusion_rate;
        assert!(matches!(
            validate_solution(&net, &sol),
            Err(ValidationError::NotSpanningTree { .. })
        ));
    }

    #[test]
    fn fusion_rate_mismatch_detected() {
        let (net, users, center) = star_net(3);
        let mut sol = fusion_solution(&net, &users, center);
        sol.rate = Rate::from_prob(0.999);
        assert!(matches!(
            validate_solution(&net, &sol),
            Err(ValidationError::RateMismatch { .. })
        ));
    }

    #[test]
    fn blanket_impl_for_references() {
        // `&T: RoutingAlgorithm` lets the harness pass algorithms by
        // reference (e.g. trait objects in sweep tables).
        use crate::algorithms::PrimBased;
        let algo = PrimBased::default();
        let by_ref: &dyn RoutingAlgorithm = &algo;
        assert_eq!(by_ref.name(), "Alg-4");
        let net = crate::model::NetworkSpec::paper_default().build(1);
        let a = algo.solve(&net);
        let b = algo.solve(&net);
        assert_eq!(a.is_ok(), b.is_ok());
    }

    #[test]
    fn bsm_tree_solution_roundtrip() {
        // Two users, one switch: single channel.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 2 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s, 500.0);
        g.add_edge(s, b, 500.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let tree: EntanglementTree = [path_channel(&net, vec![a, s, b])].into_iter().collect();
        let sol = Solution::from_tree(tree);
        assert_eq!(sol.style, SolutionStyle::BsmTree);
        assert!(validate_solution(&net, &sol).is_ok());
    }
}
