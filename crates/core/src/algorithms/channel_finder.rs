//! **Algorithm 1** — maximum entanglement-rate channel between two users.
//!
//! The paper's Eq. 1 objective is a product, so §IV-A applies the `−ln`
//! transform: traversing edge `e` costs `α·L(e) − ln q` and the best
//! channel is the min-cost path. The pseudocode's line 27 recovers the
//! rate as `exp(−(−ln q) − Dist) = q^(l−1)·exp(−α·ΣL)` — one `−ln q` is
//! refunded because a channel of `l` links performs only `l − 1` swaps.
//!
//! Capacity awareness: only a switch with at least 2 free qubits may relay
//! (the pseudocode's line 11 guard `Q ≥ 2`); users never relay — a channel
//! passes "through vertices in R" (Definition 2).

use std::cell::Cell;

use qnet_graph::paths::{dijkstra_adj_into, DijkstraConfig, DijkstraRun, DijkstraWorkspace};
use qnet_graph::{
    dijkstra_repair_into, Adjacency, CsrGraph, DeltaClassifier, EdgeRef, NodeId, RepairScratch,
    SearchMask, SsspDelta,
};
use qnet_pool::Pool;

use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;

/// The search half of [`run_algorithm1`]: runs Algorithm 1 from
/// `source` over any [`Adjacency`] view of the network's graph and
/// returns the borrowed view plus the run's full-switch rejection
/// tally — **without** touching the flight recorder or flushing the
/// rejection counter.
///
/// That restraint is what makes the function safe to call from pool
/// workers: the flight-recorder ring orders events by arrival, so
/// worker-side emission would make trace contents depend on thread
/// scheduling. Callers flush via [`finish_finder_run`] on the
/// submitting thread, in a deterministic order. The per-run span and
/// the `core.channel.finder_runs` counter *are* recorded here (span
/// parentage is safe cross-thread through the pool's span-context
/// adoption, and counter totals are order-independent).
fn run_algorithm1_quiet<'w, A: Adjacency + ?Sized>(
    ws: &'w mut DijkstraWorkspace,
    adj: &A,
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    source: NodeId,
    mask: Option<&SearchMask>,
) -> (qnet_graph::DijkstraView<'w>, u64) {
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;
    // Edge cost α·L − ln q (non-negative since q ≤ 1). A degenerate
    // q = 0 makes every swap impossible; only direct user-user fibers
    // (zero swaps) remain usable, which we express by forbidding all
    // relaying while keeping single edges finite.
    let neg_ln_q = if q > 0.0 { -(q.ln()) } else { 0.0 };
    let swaps_possible = q > 0.0;
    // Dijkstra consults the relay filter at most once per vertex per run
    // (settled vertices are never re-queried), so this tally counts
    // *distinct* full switches for this run — returned to the caller
    // instead of paying an atomic per rejection inside the search.
    let rejected_full = Cell::new(0u64);
    let cfg = DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| {
            if mask.is_some_and(|m| m.blocks(e.id, e.a, e.b)) {
                return f64::INFINITY;
            }
            alpha * *e.payload + neg_ln_q
        },
        can_relay: |v: NodeId| {
            if mask.is_some_and(|m| m.node_dead(v)) {
                return false;
            }
            if !(swaps_possible && net.kind(v).is_switch()) {
                return false;
            }
            if !capacity.can_relay(v) {
                rejected_full.set(rejected_full.get() + 1);
                return false;
            }
            true
        },
    };
    qnet_obs::counter!("core.channel.finder_runs");
    let _span = qnet_obs::span!("core.channel.finder_run");
    let view = dijkstra_adj_into(ws, adj, net.graph(), source, &cfg);
    let n = rejected_full.get();
    (view, n)
}

/// The bookkeeping half of [`run_algorithm1`]: flushes a run's
/// rejection tally and emits its `FinderRun` trace event. Call on the
/// submitting thread, in source order, after a (possibly parallel)
/// batch of [`run_algorithm1_quiet`] searches — the flight-recorder
/// contents then never depend on worker scheduling.
fn finish_finder_run(source: NodeId, rejected_full: u64, epoch: u64) {
    if rejected_full > 0 {
        qnet_obs::counter!("core.channel.rejected", reason = "qubit_capacity"; rejected_full);
    }
    if qnet_obs::trace_enabled() {
        qnet_obs::record_event(qnet_obs::TraceEvent::FinderRun {
            source: source.index() as u32,
            rejected_full,
            epoch,
        });
    }
}

/// Runs the Algorithm-1 search from `source` and leaves the result in
/// `ws`; the caller materializes it however it likes (fresh
/// [`DijkstraRun`] or in-place refresh of an existing one).
///
/// This is the one place the `α·L − ln q` cost and the capacity-aware
/// relay filter are defined; [`ChannelFinder`] and
/// [`ChannelFinderCache`] both route through it (the cache via the
/// split [`run_algorithm1_quiet`]/[`finish_finder_run`] halves and its
/// frozen CSR adjacency). A failure `mask` excludes dead edges and
/// vertices (survivability repair); `None` searches the intact network.
fn run_algorithm1<'w>(
    ws: &'w mut DijkstraWorkspace,
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    source: NodeId,
    mask: Option<&SearchMask>,
) -> qnet_graph::DijkstraView<'w> {
    let (view, rejected) = run_algorithm1_quiet(ws, net.graph(), net, capacity, source, mask);
    finish_finder_run(source, rejected, capacity.epoch());
    view
}

/// A single-source Algorithm-1 run: max-rate channels from one user to
/// every other reachable user, under a residual capacity map.
///
/// The paper's complexity discussion (§IV-B) notes that running the
/// search once per *source* and recovering all destinations through the
/// `Prev` array saves a factor of `|U|`; this type is that optimization.
pub struct ChannelFinder<'n> {
    net: &'n QuantumNetwork,
    run: DijkstraRun,
    /// Epoch of the capacity map the run was computed under; stamped
    /// onto the trace events [`ChannelFinder::channel_to`] emits so a
    /// flight-recorder reader can line decisions up with reservations.
    epoch: u64,
}

impl<'n> ChannelFinder<'n> {
    /// Runs Algorithm 1 from `source` under `capacity`.
    ///
    /// Every interior vertex of any returned channel is a switch with at
    /// least 2 free qubits *in the given map*; the map is not mutated
    /// (reservation is the caller's decision).
    ///
    /// Allocates a private search workspace; callers in a loop should
    /// hold a [`DijkstraWorkspace`] and use
    /// [`ChannelFinder::from_source_in`] — or better, a
    /// [`ChannelFinderCache`].
    pub fn from_source(net: &'n QuantumNetwork, capacity: &CapacityMap, source: NodeId) -> Self {
        let mut ws = DijkstraWorkspace::new();
        Self::from_source_in(&mut ws, net, capacity, source)
    }

    /// [`ChannelFinder::from_source`] on a caller-provided workspace: the
    /// search itself allocates nothing, only the materialized run does.
    pub fn from_source_in(
        ws: &mut DijkstraWorkspace,
        net: &'n QuantumNetwork,
        capacity: &CapacityMap,
        source: NodeId,
    ) -> Self {
        Self::from_source_masked_in(ws, net, capacity, source, None)
    }

    /// [`ChannelFinder::from_source_in`] with failed network elements
    /// masked out: channels never use a dead edge nor touch a dead
    /// vertex (not even as an endpoint). `None` means no failures.
    pub fn from_source_masked_in(
        ws: &mut DijkstraWorkspace,
        net: &'n QuantumNetwork,
        capacity: &CapacityMap,
        source: NodeId,
        mask: Option<&SearchMask>,
    ) -> Self {
        let run = run_algorithm1(ws, net, capacity, source, mask).to_run();
        ChannelFinder {
            net,
            run,
            epoch: capacity.epoch(),
        }
    }

    /// The source user of this run.
    pub fn source(&self) -> NodeId {
        self.run.source()
    }

    /// The underlying single-source run (distances and predecessors to
    /// every node). The delta-equivalence oracles compare this directly
    /// against from-scratch recomputation.
    pub fn run(&self) -> &DijkstraRun {
        &self.run
    }

    /// The max-rate channel from the source to `destination`, or `None`
    /// when no capacity-respecting channel exists.
    ///
    /// The channel's rate is recomputed exactly from Eq. 1 (not from the
    /// search cost), so no floating-point drift accumulates.
    pub fn channel_to(&self, destination: NodeId) -> Option<Channel> {
        if destination == self.run.source() {
            return None;
        }
        let Some(path) = self.run.path_to(destination) else {
            qnet_obs::counter!("core.channel.rejected", reason = "disconnected");
            if qnet_obs::trace_enabled() {
                qnet_obs::record_event(qnet_obs::TraceEvent::Candidate {
                    source: self.run.source().index() as u32,
                    destination: destination.index() as u32,
                    accepted: false,
                    reason: "disconnected",
                    cost: 0.0,
                    epoch: self.epoch,
                });
            }
            return None;
        };
        qnet_obs::counter!("core.channel.found");
        let channel = Channel::from_path(self.net, path);
        if qnet_obs::trace_enabled() {
            qnet_obs::record_event(qnet_obs::TraceEvent::Candidate {
                source: self.run.source().index() as u32,
                destination: destination.index() as u32,
                accepted: true,
                reason: "ok",
                cost: channel.rate.value(),
                epoch: self.epoch,
            });
        }
        Some(channel)
    }
}

/// Algorithm 1 for a single pair: the max-rate channel between users `a`
/// and `b` under `capacity`, or `None` when infeasible.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
/// use muerp_core::algorithms::max_rate_channel;
///
/// let net = NetworkSpec::paper_default().build(7);
/// let cap = CapacityMap::new(&net);
/// let (a, b) = (net.users()[0], net.users()[1]);
/// if let Some(ch) = max_rate_channel(&net, &cap, a, b) {
///     assert!(ch.rate.value() > 0.0);
///     assert_eq!(ch.user_pair(), if a <= b { (a, b) } else { (b, a) });
/// }
/// ```
pub fn max_rate_channel(
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
) -> Option<Channel> {
    ChannelFinder::from_source(net, capacity, a).channel_to(b)
}

/// In-place delta repair of a memoized Algorithm-1 run: reloads `run`
/// into the workspace and patches it for the given newly-blocked relay
/// set instead of re-running the search from scratch.
///
/// The configuration is the exact Algorithm-1 cost/relay pair of
/// [`run_algorithm1_quiet`] minus the mask branch (repairs only serve
/// unmasked entries) and the rejection tally (a repair consults only
/// the shrunken region, so its tally would not be comparable to a full
/// run's); `capacity` must already reflect the blocked nodes, which is
/// guaranteed because the blocked set is derived by diffing relay
/// states against that same map.
fn repair_algorithm1(
    ws: &mut DijkstraWorkspace,
    scratch: &mut RepairScratch,
    csr: &CsrGraph,
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    run: &mut DijkstraRun,
    blocked: &[NodeId],
) -> qnet_graph::RepairStats {
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;
    let neg_ln_q = if q > 0.0 { -(q.ln()) } else { 0.0 };
    let swaps_possible = q > 0.0;
    let cfg = DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: |v: NodeId| swaps_possible && net.kind(v).is_switch() && capacity.can_relay(v),
    };
    let mut delta = SsspDelta::new();
    for &v in blocked {
        delta.block_node(v);
    }
    ws.load_run(run);
    let (view, stats) = dijkstra_repair_into(ws, scratch, csr, net.graph(), &cfg, &delta);
    view.write_run(run);
    stats
}

/// `true` when letting `v` relay again could change the stored run —
/// i.e. some neighbor `u` would receive an offer `dist(v) + w(v,u)` no
/// worse than its current label. `<=` (not `<`) is deliberate: an
/// exactly-equal offer cannot improve a distance, but it can flip a
/// predecessor tie depending on heap order, and the cache promises
/// *bitwise* fidelity, so ties force a recompute too.
fn improvement_possible(
    net: &QuantumNetwork,
    run: &DijkstraRun,
    v: NodeId,
    alpha: f64,
    neg_ln_q: f64,
) -> bool {
    let Some(dv) = run.distance(v) else {
        // A vertex the source cannot even reach helps nobody as a relay.
        return false;
    };
    for &(u, e) in net.graph().neighbor_slice(v) {
        let w = alpha * net.length(e) + neg_ln_q;
        let du = run.distance(u).unwrap_or(f64::INFINITY);
        if dv + w <= du {
            return true;
        }
    }
    false
}

/// How a cache entry must be brought up to date with the capacity map,
/// as derived from the relay-state diffs observed since the entry was
/// last validated. `Clean` entries are revalidated in O(1);
/// `Repair(nodes)` entries get an in-place SSSP repair for exactly
/// those newly-blocked relays; `Recompute` entries (improving deltas,
/// masked entries) fall back to a full search.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Pending {
    Clean,
    Repair(Vec<NodeId>),
    Recompute,
}

/// One memoized single-source run plus its staleness bookkeeping.
struct Entry<'n> {
    /// `(capacity epoch, mask hash)` the run was last validated at.
    key: (u64, u64),
    /// What the next lookup at a different epoch must do.
    pending: Pending,
    finder: ChannelFinder<'n>,
}

/// Memoizes single-source Algorithm-1 runs across solver rounds.
///
/// Greedy solvers (Prim-based, Algorithm 3/4, beam search, local search)
/// re-run the same sources many times between capacity changes. Each
/// cache entry is keyed by `(source, capacity epoch, mask hash)`: a
/// lookup whose stored key matches returns the memoized finder with no
/// search at all.
///
/// A key mismatch no longer voids the entry wholesale. The cache keeps
/// a *relay mirror* — the per-node relay predicate of the last capacity
/// map it observed — and diffs it against every new epoch (DESIGN.md
/// §15). Only nodes whose relay bit actually flipped dirty anything,
/// and only the entries their flip can reach:
///
/// * no flip (capacity moved but stayed on the same side of the ≥ 2
///   threshold everywhere): every entry is revalidated in O(1) —
///   `graph.delta.clean`;
/// * a relay revoked (worsening): affected entries (same component,
///   node reachable in the stored run) get an in-place SSSP repair via
///   [`dijkstra_repair_into`] — `graph.delta.repaired`;
/// * a relay restored (improving): entries where the restored node
///   could offer a no-worse label to any neighbor fall back to a full
///   search — `graph.delta.recomputed` (in-place decrease-propagation
///   can flip floating-point predecessor ties, and the cache promises
///   bitwise fidelity);
/// * masked entries always fall back to a full search on any flip (the
///   cache stores only the mask's hash, not its dead set).
///
/// The epoch key is retained purely as the correctness *backstop*: a
/// lookup whose epoch matches needs no reasoning at all, and any bug in
/// the dirty-set derivation is bounded by the differential battery
/// (`tests/delta_cache.rs`, qnet-conformance `--delta` oracle), not by
/// silent reuse — entries are never served on an epoch mismatch without
/// passing through the observe/classify step first.
///
/// Correctness rests on these invariants (see DESIGN.md):
///
/// * epochs are process-globally unique per mutation, so epoch equality
///   implies content equality even across diverged clones — and the
///   relay mirror can be diffed by *content* against any successor map,
///   which is what makes clone ping-pong (trial maps in the stream
///   scenario) cheap instead of cache-hostile;
/// * a [`SearchMask`]'s hash is an order-independent digest of its dead
///   set, `0` for the empty mask, so a masked run can never be served
///   to an unmasked query at the same epoch (or vice versa) — the
///   "stale mask poisons the cache" failure mode;
/// * Algorithm 1's result depends only on (network, relay predicate,
///   mask, source) — the network is fixed per cache, the relay
///   predicate by the mirror diff, the mask by its hash.
///
/// Hits and misses are observable as `core.channel.cache_hits` /
/// `core.channel.cache_misses`; [`search_count`] tallies the full
/// searches this cache actually executed (the repair engine's latency
/// metric — in-place repairs are tallied separately in
/// [`CacheEfficiency::repairs`]).
///
/// [`epoch`]: CapacityMap::epoch
/// [`search_count`]: ChannelFinderCache::search_count
pub struct ChannelFinderCache<'n> {
    net: &'n QuantumNetwork,
    /// The network graph's adjacency frozen into CSR form at cache
    /// construction: every search this cache runs — sequential misses
    /// and pooled [`warm`](ChannelFinderCache::warm) batches alike —
    /// iterates this flat, thread-shareable layout instead of chasing
    /// the graph's per-node `Vec`s.
    csr: CsrGraph,
    /// Fans [`warm`](ChannelFinderCache::warm) batches out over worker
    /// threads; sized by `MUERP_THREADS`/available parallelism. Results
    /// are merged in source order, so the cache's observable state is
    /// identical at every thread count.
    pool: Pool,
    ws: DijkstraWorkspace,
    /// Indexed by source node; each entry stores the (epoch, mask hash)
    /// key its run was computed under plus its pending dirty state.
    entries: Vec<Option<Entry<'n>>>,
    /// Static component/bridge analysis of the network graph, used to
    /// pre-filter which sources a relay flip can possibly affect.
    classifier: DeltaClassifier,
    /// Reusable marking buffers for [`dijkstra_repair_into`].
    scratch: RepairScratch,
    /// Per-node relay predicate of the capacity map last observed
    /// (`swaps possible && switch && free ≥ 2`), diffed by content
    /// against each newly observed map.
    mirror: Vec<bool>,
    /// Epoch [`mirror`](Self::mirror) reflects; `None` before the first
    /// observation.
    mirror_epoch: Option<u64>,
    /// Full searches actually executed (misses), monotone.
    searches: u64,
    /// Per-instance hit/miss/refresh/repair tallies (see
    /// [`ChannelFinderCache::efficiency`]).
    efficiency: CacheEfficiency,
}

/// Deterministic per-cache lookup tallies, split by how each miss was
/// served. Unlike the global `core.channel.cache_*` counters these are
/// scoped to one cache instance, so a profile run can report the exact
/// efficiency of the solver under measurement even while other threads
/// run their own caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheEfficiency {
    /// Lookups answered from a memoized run (no search).
    pub hits: u64,
    /// Misses that re-ran the search *in place* over an existing
    /// entry's buffers (steady state: zero allocation).
    pub refreshes: u64,
    /// Misses that populated a previously empty entry (first touch of a
    /// source; materializes a fresh run).
    pub fills: u64,
    /// Misses served by an in-place SSSP delta repair instead of a full
    /// search (the delta engine's win column; not counted in
    /// [`ChannelFinderCache::search_count`]).
    pub repairs: u64,
}

impl CacheEfficiency {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.refreshes + self.fills + self.repairs
    }

    /// Hits over lookups, 1.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<'n> ChannelFinderCache<'n> {
    /// An empty cache for `net`; entries populate lazily per source.
    /// The pool width comes from `MUERP_THREADS`/available parallelism
    /// (see [`qnet_pool::threads_from_env`]).
    pub fn new(net: &'n QuantumNetwork) -> Self {
        Self::with_pool(net, Pool::from_env())
    }

    /// [`ChannelFinderCache::new`] with an explicit pool — the hook the
    /// thread-scaling bench and the determinism tests use to pin the
    /// worker count regardless of environment.
    pub fn with_pool(net: &'n QuantumNetwork, pool: Pool) -> Self {
        let nodes = net.graph().node_count();
        ChannelFinderCache {
            net,
            csr: CsrGraph::from_graph(net.graph()),
            pool,
            ws: DijkstraWorkspace::with_capacity(nodes),
            entries: (0..nodes).map(|_| None).collect(),
            classifier: DeltaClassifier::new(net.graph()),
            scratch: RepairScratch::new(),
            mirror: Vec::new(),
            mirror_epoch: None,
            searches: 0,
            efficiency: CacheEfficiency::default(),
        }
    }

    /// Synchronizes the relay mirror with `capacity` and reclassifies
    /// every entry's pending state against the relay flips the diff
    /// reveals. Every lookup and warm passes through here exactly once
    /// per new epoch, *before* any key comparison — that single coherent
    /// snapshot is what makes "delta landed between snapshot and
    /// install" impossible (the satellite-4 hazard): keys installed
    /// later in the same call are always keyed to the observed epoch,
    /// and the map cannot mutate while borrowed.
    fn observe(&mut self, capacity: &CapacityMap) {
        let epoch = capacity.epoch();
        if self.mirror_epoch == Some(epoch) {
            // Epochs are globally unique per mutation: same epoch means
            // the map content is bit-identical to the mirror.
            return;
        }
        let net = self.net;
        let q = net.physics().swap_success;
        let swaps_possible = q > 0.0;
        let relay_now: Vec<bool> = net
            .graph()
            .node_ids()
            .map(|v| swaps_possible && net.kind(v).is_switch() && capacity.can_relay(v))
            .collect();
        if self.mirror_epoch.is_some() {
            let alpha = net.physics().attenuation;
            let neg_ln_q = if q > 0.0 { -(q.ln()) } else { 0.0 };
            for (i, (&now, &before)) in relay_now.iter().zip(self.mirror.iter()).enumerate() {
                if now == before {
                    continue;
                }
                let v = NodeId::new(i);
                let worsened = !now;
                for entry in self.entries.iter_mut().flatten() {
                    if entry.pending == Pending::Recompute {
                        continue;
                    }
                    if entry.key.1 != 0 {
                        // Only the mask's hash is stored, so masked
                        // entries cannot be classified — conservative.
                        entry.pending = Pending::Recompute;
                        continue;
                    }
                    let source = entry.finder.run.source();
                    match (&mut entry.pending, worsened) {
                        (Pending::Clean, true) => {
                            if self.classifier.node_may_affect(source, v)
                                && entry.finder.run.distance(v).is_some()
                            {
                                entry.pending = Pending::Repair(vec![v]);
                            }
                        }
                        (Pending::Repair(nodes), true) => {
                            if !nodes.contains(&v)
                                && self.classifier.node_may_affect(source, v)
                                && entry.finder.run.distance(v).is_some()
                            {
                                nodes.push(v);
                            }
                        }
                        (Pending::Clean, false) => {
                            if improvement_possible(net, &entry.finder.run, v, alpha, neg_ln_q) {
                                entry.pending = Pending::Recompute;
                            }
                        }
                        (Pending::Repair(nodes), false) => {
                            // An improving flip that exactly cancels a
                            // pending worsening flip nets out to nothing;
                            // any other improvement over a stale run is
                            // unclassifiable (the run's labels predate
                            // the pending repairs).
                            if let Some(pos) = nodes.iter().position(|&x| x == v) {
                                nodes.swap_remove(pos);
                                if nodes.is_empty() {
                                    entry.pending = Pending::Clean;
                                }
                            } else {
                                entry.pending = Pending::Recompute;
                            }
                        }
                        (Pending::Recompute, _) => unreachable!("filtered above"),
                    }
                }
            }
        }
        self.mirror = relay_now;
        self.mirror_epoch = Some(epoch);
    }

    /// The Algorithm-1 run from `source` under `capacity`, reused when
    /// `capacity` has not changed since the entry was computed.
    pub fn finder(&mut self, capacity: &CapacityMap, source: NodeId) -> &ChannelFinder<'n> {
        self.finder_masked(capacity, None, source)
    }

    /// [`ChannelFinderCache::finder`] under a failure mask: the entry is
    /// keyed by `(source, epoch, mask hash)`, so masked and unmasked
    /// runs at the same epoch never alias.
    pub fn finder_masked(
        &mut self,
        capacity: &CapacityMap,
        mask: Option<&SearchMask>,
        source: NodeId,
    ) -> &ChannelFinder<'n> {
        self.observe(capacity);
        let idx = source.index();
        let epoch = capacity.epoch();
        let key = (epoch, mask.map_or(0, |m| m.hash()));
        match &mut self.entries[idx] {
            Some(entry) if entry.key == key => {
                qnet_obs::counter!("core.channel.cache_hits");
                self.efficiency.hits += 1;
            }
            Some(entry) if entry.key.1 == key.1 && entry.pending == Pending::Clean => {
                // Capacity moved, but no relay flip can reach this run:
                // revalidate in O(1), no search.
                qnet_obs::counter!("core.channel.cache_hits");
                qnet_obs::counter!("graph.delta.clean");
                self.efficiency.hits += 1;
                entry.key = key;
                entry.finder.epoch = epoch;
            }
            Some(entry)
                if entry.key.1 == key.1
                    && key.1 == 0
                    && matches!(entry.pending, Pending::Repair(_)) =>
            {
                let Pending::Repair(blocked) =
                    std::mem::replace(&mut entry.pending, Pending::Clean)
                else {
                    unreachable!("guard matched Repair");
                };
                qnet_obs::counter!("core.channel.cache_repairs");
                self.efficiency.repairs += 1;
                repair_algorithm1(
                    &mut self.ws,
                    &mut self.scratch,
                    &self.csr,
                    self.net,
                    capacity,
                    &mut entry.finder.run,
                    &blocked,
                );
                entry.key = key;
                entry.finder.epoch = epoch;
            }
            Some(entry) => {
                qnet_obs::counter!("core.channel.cache_misses");
                qnet_obs::counter!("core.channel.cache_refreshes");
                if entry.key.1 == key.1 {
                    // Same mask, stale capacity: this full search is the
                    // delta engine declining to repair (improving flip
                    // or masked entry), not a key change.
                    qnet_obs::counter!("graph.delta.recomputed");
                }
                self.efficiency.refreshes += 1;
                let (view, rejected) =
                    run_algorithm1_quiet(&mut self.ws, &self.csr, self.net, capacity, source, mask);
                view.write_run(&mut entry.finder.run);
                entry.finder.epoch = epoch;
                finish_finder_run(source, rejected, epoch);
                entry.key = key;
                entry.pending = Pending::Clean;
                self.searches += 1;
            }
            entry @ None => {
                qnet_obs::counter!("core.channel.cache_misses");
                self.efficiency.fills += 1;
                let (view, rejected) =
                    run_algorithm1_quiet(&mut self.ws, &self.csr, self.net, capacity, source, mask);
                let finder = ChannelFinder {
                    net: self.net,
                    run: view.to_run(),
                    epoch,
                };
                finish_finder_run(source, rejected, epoch);
                *entry = Some(Entry {
                    key,
                    pending: Pending::Clean,
                    finder,
                });
                self.searches += 1;
            }
        }
        &self.entries[idx]
            .as_ref()
            .expect("entry just populated")
            .finder
    }

    /// Batch-refreshes the entries for `sources` under `(capacity,
    /// mask)` — **Algorithm 1 as a multi-source batch**. Sources whose
    /// entry is already fresh are skipped; the rest are searched
    /// concurrently on the cache's [`Pool`] over the frozen CSR
    /// adjacency, each stale entry's result buffers recycled as the
    /// staging target. Subsequent [`finder`](ChannelFinderCache::finder)
    /// calls for these sources at the same epoch are then cache hits.
    ///
    /// Determinism: results are installed — and their trace events
    /// emitted — in `sources` order on the calling thread, so cache
    /// state, counters tied to search results, and the flight recorder
    /// are bitwise identical for every pool width (the property
    /// `tests/parallel_equivalence.rs` locks in). Warm searches tally
    /// as misses (refresh or fill) exactly like the lazy path.
    pub fn warm(&mut self, capacity: &CapacityMap, sources: &[NodeId]) {
        self.warm_masked(capacity, None, sources)
    }

    /// [`ChannelFinderCache::warm`] under a failure mask.
    pub fn warm_masked(
        &mut self,
        capacity: &CapacityMap,
        mask: Option<&SearchMask>,
        sources: &[NodeId],
    ) {
        // One coherent snapshot *before* any classification or fan-out.
        // Every key installed below — including by the pooled merge — is
        // keyed to this observed epoch, and `capacity` cannot mutate
        // while the call borrows it, so a delta can never land between
        // the snapshot and the install (the warm staleness hazard
        // `tests/delta_cache.rs` locks down).
        self.observe(capacity);
        let epoch = capacity.epoch();
        let key = (epoch, mask.map_or(0, |m| m.hash()));
        // Resolve delta-classified entries inline, in source order and
        // on the calling thread (repairs share the cache's workspace and
        // are cheap); collect the remaining stale sources in input order
        // (first occurrence wins), recycling each stale entry's run as
        // the staging buffer for the pooled searches.
        let mut jobs: Vec<(NodeId, DijkstraRun)> = Vec::new();
        for &src in sources {
            let entry_slot = &mut self.entries[src.index()];
            match entry_slot {
                Some(entry) if entry.key == key => {}
                Some(entry) if entry.key.1 == key.1 && entry.pending == Pending::Clean => {
                    qnet_obs::counter!("graph.delta.clean");
                    entry.key = key;
                    entry.finder.epoch = epoch;
                }
                Some(entry)
                    if entry.key.1 == key.1
                        && key.1 == 0
                        && matches!(entry.pending, Pending::Repair(_)) =>
                {
                    let Pending::Repair(blocked) =
                        std::mem::replace(&mut entry.pending, Pending::Clean)
                    else {
                        unreachable!("guard matched Repair");
                    };
                    qnet_obs::counter!("core.channel.cache_repairs");
                    self.efficiency.repairs += 1;
                    repair_algorithm1(
                        &mut self.ws,
                        &mut self.scratch,
                        &self.csr,
                        self.net,
                        capacity,
                        &mut entry.finder.run,
                        &blocked,
                    );
                    entry.key = key;
                    entry.finder.epoch = epoch;
                }
                taken => {
                    if jobs.iter().any(|(s, _)| *s == src) {
                        continue;
                    }
                    let run = match taken.take() {
                        Some(entry) => {
                            qnet_obs::counter!("core.channel.cache_misses");
                            qnet_obs::counter!("core.channel.cache_refreshes");
                            if entry.key.1 == key.1 {
                                qnet_obs::counter!("graph.delta.recomputed");
                            }
                            self.efficiency.refreshes += 1;
                            entry.finder.run
                        }
                        None => {
                            qnet_obs::counter!("core.channel.cache_misses");
                            self.efficiency.fills += 1;
                            DijkstraRun::default()
                        }
                    };
                    jobs.push((src, run));
                }
            }
        }
        if jobs.is_empty() {
            return;
        }
        self.searches += jobs.len() as u64;

        let results: Vec<(NodeId, DijkstraRun, u64)> = if self.pool.is_sequential() {
            // Inline path: reuse the cache's own workspace, no spawns.
            let mut out = Vec::with_capacity(jobs.len());
            for (src, mut run) in jobs {
                let (view, rejected) =
                    run_algorithm1_quiet(&mut self.ws, &self.csr, self.net, capacity, src, mask);
                view.write_run(&mut run);
                out.push((src, run, rejected));
            }
            out
        } else {
            let net = self.net;
            let csr = &self.csr;
            let order = csr.node_count();
            self.pool.map(
                jobs,
                || DijkstraWorkspace::with_capacity(order),
                |ws, (src, mut run), _| {
                    let (view, rejected) = run_algorithm1_quiet(ws, csr, net, capacity, src, mask);
                    view.write_run(&mut run);
                    (src, run, rejected)
                },
            )
        };

        // Merge on the calling thread, in source order: install entries
        // and emit the deferred per-run events deterministically.
        for (src, run, rejected) in results {
            finish_finder_run(src, rejected, epoch);
            self.entries[src.index()] = Some(Entry {
                key,
                pending: Pending::Clean,
                finder: ChannelFinder {
                    net: self.net,
                    run,
                    epoch,
                },
            });
        }
    }

    /// Eagerly synchronizes the cache with `capacity` without serving a
    /// lookup: the relay mirror is diffed and every entry's pending
    /// state reclassified *now* instead of at the next finder call.
    ///
    /// This is the departure hook the streaming/serving session loops
    /// call. Releasing a departed group's channels flips its relays
    /// back on; absorbing that delta immediately cancels the pending
    /// repairs queued for exactly those relays (the `(Repair,
    /// improving)` netting-out arm of the classifier) while the kill
    /// and the restore are still adjacent deltas. Left to the lazy
    /// path, the restore would only be reconciled at the next lookup,
    /// where it can sit interleaved with unrelated flips and an
    /// unclassifiable improvement escalates the whole entry to a full
    /// recompute.
    pub fn absorb(&mut self, capacity: &CapacityMap) {
        self.observe(capacity);
    }

    /// [`max_rate_channel`] through the cache.
    pub fn channel(&mut self, capacity: &CapacityMap, a: NodeId, b: NodeId) -> Option<Channel> {
        self.finder(capacity, a).channel_to(b)
    }

    /// [`ChannelFinderCache::channel`] under a failure mask.
    pub fn channel_masked(
        &mut self,
        capacity: &CapacityMap,
        mask: Option<&SearchMask>,
        a: NodeId,
        b: NodeId,
    ) -> Option<Channel> {
        self.finder_masked(capacity, mask, a).channel_to(b)
    }

    /// Number of *full* Algorithm-1 searches this cache has actually
    /// run (cache misses); hits, O(1) revalidations, and in-place delta
    /// repairs are all excluded (repairs are tallied in
    /// [`CacheEfficiency::repairs`]). This is the deterministic
    /// per-cache cost metric the repair engine reports as latency —
    /// unlike the global obs counters it is unaffected by concurrent
    /// work elsewhere in the process.
    pub fn search_count(&self) -> u64 {
        self.searches
    }

    /// This cache's lookup tallies, split hit/refresh/fill. Fully
    /// deterministic for a fixed query sequence (unlike wall time), so
    /// `repro profile` byte-compares them across runs.
    pub fn efficiency(&self) -> CacheEfficiency {
        self.efficiency
    }

    /// Drops every memoized entry (the frozen CSR adjacency, pool, and
    /// tallies are kept): the next lookup per source is a *fill*, not a
    /// refresh. This is how the search-core bench measures the fill path
    /// in isolation — refreshes and fills run the identical search; only
    /// the result buffers differ (recycled vs freshly allocated).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NodeKind, PhysicsParams, QuantumNetwork};
    use qnet_graph::Graph;

    /// Two parallel routes between users a and b:
    ///   a —1000— s1 —1000— b        (2 links, 1 swap)
    ///   a —————— 2500 ——————— b     (1 link, 0 swaps)
    /// With α = 1e-4, q = 0.9: via s1: e^{-0.2}·0.9 ≈ 0.7369;
    /// direct: e^{-0.25} ≈ 0.7788 → direct wins.
    fn two_route_net(q: f64) -> (QuantumNetwork, [NodeId; 3]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 4 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s1, 1000.0);
        g.add_edge(s1, b, 1000.0);
        g.add_edge(a, b, 2500.0);
        let physics = PhysicsParams {
            swap_success: q,
            attenuation: 1e-4,
        };
        (QuantumNetwork::from_graph(g, physics), [a, s1, b])
    }

    #[test]
    fn picks_route_with_best_rate_not_fewest_hops_or_shortest_length() {
        // q = 0.9: the direct (longer but swap-free) route wins.
        let (net, [a, _s1, b]) = two_route_net(0.9);
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(c.link_count(), 1);
        assert!((c.rate.value() - (-0.25f64).exp()).abs() < 1e-12);

        // q = 0.99: the relayed route (shorter fibers) wins.
        let (net, [a, s1, b]) = two_route_net(0.99);
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(c.link_count(), 2);
        assert_eq!(c.interior_switches(), &[s1]);
        assert!((c.rate.value() - (-0.2f64).exp() * 0.99).abs() < 1e-12);
    }

    #[test]
    fn respects_residual_capacity() {
        let (net, [a, _s1, b]) = two_route_net(0.99);
        let mut cap = CapacityMap::new(&net);
        let via_switch = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(via_switch.link_count(), 2);
        cap.reserve(&via_switch);
        cap.reserve(&via_switch); // 4 qubits gone
        let fallback = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(fallback.link_count(), 1, "switch exhausted → direct fiber");
    }

    #[test]
    fn users_never_relay() {
        // a — u — b where u is a *user*: no channel may pass through u,
        // so a and b are unconnectable.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let u = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, u, 100.0);
        g.add_edge(u, b, 100.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let cap = CapacityMap::new(&net);
        assert!(max_rate_channel(&net, &cap, a, b).is_none());
        // …but a–u itself is routable (u is an endpoint there).
        assert!(max_rate_channel(&net, &cap, a, u).is_some());
    }

    #[test]
    fn switch_with_one_qubit_cannot_relay() {
        let (net, ids) = two_route_net(0.99);
        let mut g = net.graph().clone();
        *g.node_mut(ids[1]) = NodeKind::Switch { qubits: 1 };
        let net = QuantumNetwork::from_graph(g, *net.physics());
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, ids[0], ids[2]).unwrap();
        assert_eq!(c.link_count(), 1, "1-qubit switch unusable, direct route");
    }

    #[test]
    fn single_source_run_matches_pairwise_calls() {
        let net = crate::model::NetworkSpec::paper_default().build(11);
        let cap = CapacityMap::new(&net);
        let users = net.users().to_vec();
        let finder = ChannelFinder::from_source(&net, &cap, users[0]);
        for &dst in &users[1..] {
            let via_run = finder.channel_to(dst);
            let via_pair = max_rate_channel(&net, &cap, users[0], dst);
            match (via_run, via_pair) {
                (Some(x), Some(y)) => {
                    assert!((x.rate.value() - y.rate.value()).abs() < 1e-12)
                }
                (None, None) => {}
                other => panic!("disagreement for {dst}: {other:?}"),
            }
        }
    }

    #[test]
    fn no_channel_to_self() {
        let (net, [a, ..]) = two_route_net(0.9);
        let cap = CapacityMap::new(&net);
        assert!(max_rate_channel(&net, &cap, a, a).is_none());
    }

    #[test]
    fn masked_search_routes_around_failures() {
        // q = 0.99: best route is via s1. Kill the a–s1 edge → direct.
        let (net, [a, s1, b]) = two_route_net(0.99);
        let cap = CapacityMap::new(&net);
        let e_as1 = net.graph().find_edge(a, s1).unwrap();
        let mut mask = SearchMask::new();
        mask.kill_edge(e_as1);
        let mut ws = DijkstraWorkspace::new();
        let c = ChannelFinder::from_source_masked_in(&mut ws, &net, &cap, a, Some(&mask))
            .channel_to(b)
            .unwrap();
        assert_eq!(c.link_count(), 1, "masked edge forces the direct fiber");

        // Kill the switch instead: same outcome, and s1 is untouchable.
        let mut mask = SearchMask::new();
        mask.kill_node(s1);
        let finder = ChannelFinder::from_source_masked_in(&mut ws, &net, &cap, a, Some(&mask));
        let c = finder.channel_to(b).unwrap();
        assert_eq!(c.link_count(), 1);
        assert!(finder.channel_to(s1).is_none(), "dead vertex unreachable");
    }

    #[test]
    fn stale_mask_never_poisons_the_cache() {
        // Regression: the cache used to key entries by epoch alone, so a
        // masked search left a poisoned entry that an unmasked query at
        // the same epoch would happily reuse.
        let (net, [a, s1, b]) = two_route_net(0.99);
        let cap = CapacityMap::new(&net);
        let mut mask = SearchMask::new();
        mask.kill_node(s1);
        let mut cache = ChannelFinderCache::new(&net);

        // Masked query first: detour around the dead switch.
        let masked = cache.channel_masked(&cap, Some(&mask), a, b).unwrap();
        assert_eq!(masked.link_count(), 1);
        // Unmasked query at the SAME epoch must re-search, not reuse the
        // masked run: the via-switch route is alive and better.
        let unmasked = cache.channel(&cap, a, b).unwrap();
        assert_eq!(unmasked.link_count(), 2, "stale-mask cache hit");
        assert_eq!(unmasked.interior_switches(), &[s1]);
        // And flipping back must not reuse the unmasked run either.
        let masked_again = cache.channel_masked(&cap, Some(&mask), a, b).unwrap();
        assert_eq!(masked_again.link_count(), 1);
        assert_eq!(cache.search_count(), 3, "three distinct keys, no hits");

        // Same mask twice at the same epoch *is* a hit.
        let repeat = cache.channel_masked(&cap, Some(&mask), a, b).unwrap();
        assert_eq!(repeat.link_count(), 1);
        assert_eq!(cache.search_count(), 3, "identical key must hit");

        // An equal-content mask built in a different order hits too.
        let mut mask2 = SearchMask::new();
        mask2.kill_node(s1);
        let again = cache.channel_masked(&cap, Some(&mask2), a, b).unwrap();
        assert_eq!(again.link_count(), 1);
        assert_eq!(cache.search_count(), 3);
    }

    #[test]
    fn cache_efficiency_tallies_hits_refreshes_fills_and_repairs() {
        let (net, [a, s1, b]) = two_route_net(0.99);
        let mut cap = CapacityMap::new(&net);
        let mut cache = ChannelFinderCache::new(&net);
        assert_eq!(cache.efficiency().hit_rate(), 1.0, "vacuous before use");

        cache.channel(&cap, a, b); // first touch of source a → fill
        cache.channel(&cap, a, b); // same key → hit
        cache.channel(&cap, b, a); // first touch of source b → fill
        let ch = cache.channel(&cap, a, b).unwrap(); // hit again
        assert_eq!(ch.interior_switches(), &[s1]);

        // Epoch bump without a relay flip (s1: 4 → 2 free qubits): the
        // delta engine revalidates in O(1) — a hit, not a refresh.
        cap.reserve(&ch);
        cache.channel(&cap, a, b);

        // Second reservation exhausts s1 (2 → 0): a worsening flip, so
        // the stale entry gets an in-place repair, not a full search.
        cap.reserve(&ch);
        let detour = cache.channel(&cap, a, b).unwrap();
        assert_eq!(detour.link_count(), 1, "repair must route around s1");

        // Releasing restores the relay (0 → 2): improving deltas cannot
        // be repaired in place, so the next lookup is a full recompute.
        cap.release(&ch);
        let back = cache.channel(&cap, a, b).unwrap();
        assert_eq!(back.interior_switches(), &[s1], "recompute sees s1 again");

        let eff = cache.efficiency();
        assert_eq!(
            eff,
            CacheEfficiency {
                hits: 3,
                refreshes: 1,
                fills: 2,
                repairs: 1,
            }
        );
        assert_eq!(eff.lookups(), 7);
        assert!((eff.hit_rate() - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(
            cache.search_count(),
            eff.refreshes + eff.fills,
            "searches are the full-search misses; repairs are not searches"
        );

        // clear() drops the entries but keeps the tallies: the next
        // lookup at an unchanged epoch is a fill again, not a hit.
        cache.clear();
        let ch2 = cache.channel(&cap, a, b).unwrap();
        assert_eq!(ch2, back, "clear must not change results, only reuse");
        assert_eq!(cache.efficiency().fills, 3, "post-clear lookup is a fill");
    }

    #[test]
    fn perfect_swap_rate_prefers_short_fibers() {
        let (net, [a, s1, b]) = two_route_net(1.0);
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(c.interior_switches(), &[s1]);
        assert!((c.rate.value() - (-0.2f64).exp()).abs() < 1e-12);
    }
}
