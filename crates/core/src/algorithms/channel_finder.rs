//! **Algorithm 1** — maximum entanglement-rate channel between two users.
//!
//! The paper's Eq. 1 objective is a product, so §IV-A applies the `−ln`
//! transform: traversing edge `e` costs `α·L(e) − ln q` and the best
//! channel is the min-cost path. The pseudocode's line 27 recovers the
//! rate as `exp(−(−ln q) − Dist) = q^(l−1)·exp(−α·ΣL)` — one `−ln q` is
//! refunded because a channel of `l` links performs only `l − 1` swaps.
//!
//! Capacity awareness: only a switch with at least 2 free qubits may relay
//! (the pseudocode's line 11 guard `Q ≥ 2`); users never relay — a channel
//! passes "through vertices in R" (Definition 2).

use std::cell::Cell;

use qnet_graph::paths::{dijkstra_into, DijkstraConfig, DijkstraRun, DijkstraWorkspace};
use qnet_graph::{EdgeRef, NodeId};

use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;

/// Runs the Algorithm-1 search from `source` and leaves the result in
/// `ws`; the caller materializes it however it likes (fresh
/// [`DijkstraRun`] or in-place refresh of an existing one).
///
/// This is the one place the `α·L − ln q` cost and the capacity-aware
/// relay filter are defined; [`ChannelFinder`] and
/// [`ChannelFinderCache`] both route through it.
fn run_algorithm1<'w>(
    ws: &'w mut DijkstraWorkspace,
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    source: NodeId,
) -> qnet_graph::DijkstraView<'w> {
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;
    // Edge cost α·L − ln q (non-negative since q ≤ 1). A degenerate
    // q = 0 makes every swap impossible; only direct user-user fibers
    // (zero swaps) remain usable, which we express by forbidding all
    // relaying while keeping single edges finite.
    let neg_ln_q = if q > 0.0 { -(q.ln()) } else { 0.0 };
    let swaps_possible = q > 0.0;
    // Dijkstra consults the relay filter at most once per vertex per run
    // (settled vertices are never re-queried), so this tally counts
    // *distinct* full switches for this run — flushed once below instead
    // of paying an atomic per rejection inside the search.
    let rejected_full = Cell::new(0u64);
    let cfg = DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: |v: NodeId| {
            if !(swaps_possible && net.kind(v).is_switch()) {
                return false;
            }
            if !capacity.can_relay(v) {
                rejected_full.set(rejected_full.get() + 1);
                return false;
            }
            true
        },
    };
    qnet_obs::counter!("core.channel.finder_runs");
    let view = dijkstra_into(ws, net.graph(), source, &cfg);
    let n = rejected_full.get();
    if n > 0 {
        qnet_obs::counter!("core.channel.rejected", reason = "qubit_capacity"; n);
    }
    if qnet_obs::trace_enabled() {
        qnet_obs::record_event(qnet_obs::TraceEvent::FinderRun {
            source: source.index() as u32,
            rejected_full: n,
            epoch: capacity.epoch(),
        });
    }
    view
}

/// A single-source Algorithm-1 run: max-rate channels from one user to
/// every other reachable user, under a residual capacity map.
///
/// The paper's complexity discussion (§IV-B) notes that running the
/// search once per *source* and recovering all destinations through the
/// `Prev` array saves a factor of `|U|`; this type is that optimization.
pub struct ChannelFinder<'n> {
    net: &'n QuantumNetwork,
    run: DijkstraRun,
    /// Epoch of the capacity map the run was computed under; stamped
    /// onto the trace events [`ChannelFinder::channel_to`] emits so a
    /// flight-recorder reader can line decisions up with reservations.
    epoch: u64,
}

impl<'n> ChannelFinder<'n> {
    /// Runs Algorithm 1 from `source` under `capacity`.
    ///
    /// Every interior vertex of any returned channel is a switch with at
    /// least 2 free qubits *in the given map*; the map is not mutated
    /// (reservation is the caller's decision).
    ///
    /// Allocates a private search workspace; callers in a loop should
    /// hold a [`DijkstraWorkspace`] and use
    /// [`ChannelFinder::from_source_in`] — or better, a
    /// [`ChannelFinderCache`].
    pub fn from_source(net: &'n QuantumNetwork, capacity: &CapacityMap, source: NodeId) -> Self {
        let mut ws = DijkstraWorkspace::new();
        Self::from_source_in(&mut ws, net, capacity, source)
    }

    /// [`ChannelFinder::from_source`] on a caller-provided workspace: the
    /// search itself allocates nothing, only the materialized run does.
    pub fn from_source_in(
        ws: &mut DijkstraWorkspace,
        net: &'n QuantumNetwork,
        capacity: &CapacityMap,
        source: NodeId,
    ) -> Self {
        let run = run_algorithm1(ws, net, capacity, source).to_run();
        ChannelFinder {
            net,
            run,
            epoch: capacity.epoch(),
        }
    }

    /// Re-runs the search from this finder's source under a (possibly
    /// changed) capacity map, overwriting the stored run in place — the
    /// steady-state refresh path of [`ChannelFinderCache`], free of
    /// allocation once buffers have reached graph size.
    fn refresh_in(&mut self, ws: &mut DijkstraWorkspace, capacity: &CapacityMap) {
        let source = self.run.source();
        run_algorithm1(ws, self.net, capacity, source).write_run(&mut self.run);
        self.epoch = capacity.epoch();
    }

    /// The source user of this run.
    pub fn source(&self) -> NodeId {
        self.run.source()
    }

    /// The max-rate channel from the source to `destination`, or `None`
    /// when no capacity-respecting channel exists.
    ///
    /// The channel's rate is recomputed exactly from Eq. 1 (not from the
    /// search cost), so no floating-point drift accumulates.
    pub fn channel_to(&self, destination: NodeId) -> Option<Channel> {
        if destination == self.run.source() {
            return None;
        }
        let Some(path) = self.run.path_to(destination) else {
            qnet_obs::counter!("core.channel.rejected", reason = "disconnected");
            if qnet_obs::trace_enabled() {
                qnet_obs::record_event(qnet_obs::TraceEvent::Candidate {
                    source: self.run.source().index() as u32,
                    destination: destination.index() as u32,
                    accepted: false,
                    reason: "disconnected",
                    cost: 0.0,
                    epoch: self.epoch,
                });
            }
            return None;
        };
        qnet_obs::counter!("core.channel.found");
        let channel = Channel::from_path(self.net, path);
        if qnet_obs::trace_enabled() {
            qnet_obs::record_event(qnet_obs::TraceEvent::Candidate {
                source: self.run.source().index() as u32,
                destination: destination.index() as u32,
                accepted: true,
                reason: "ok",
                cost: channel.rate.value(),
                epoch: self.epoch,
            });
        }
        Some(channel)
    }
}

/// Algorithm 1 for a single pair: the max-rate channel between users `a`
/// and `b` under `capacity`, or `None` when infeasible.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
/// use muerp_core::algorithms::max_rate_channel;
///
/// let net = NetworkSpec::paper_default().build(7);
/// let cap = CapacityMap::new(&net);
/// let (a, b) = (net.users()[0], net.users()[1]);
/// if let Some(ch) = max_rate_channel(&net, &cap, a, b) {
///     assert!(ch.rate.value() > 0.0);
///     assert_eq!(ch.user_pair(), if a <= b { (a, b) } else { (b, a) });
/// }
/// ```
pub fn max_rate_channel(
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
) -> Option<Channel> {
    ChannelFinder::from_source(net, capacity, a).channel_to(b)
}

/// Memoizes single-source Algorithm-1 runs across solver rounds.
///
/// Greedy solvers (Prim-based, Algorithm 3/4, beam search, local search)
/// re-run the same sources many times between capacity changes. Each
/// cache entry is keyed by the capacity map's [`epoch`]: a lookup whose
/// stored epoch matches the current map returns the memoized finder with
/// no search at all; a mismatch re-runs the search *in place* over the
/// entry's buffers (and the cache's shared [`DijkstraWorkspace`]), so
/// steady-state misses allocate nothing either.
///
/// Correctness rests on two invariants (see DESIGN.md):
///
/// * epochs are process-globally unique per mutation, so epoch equality
///   implies content equality even across diverged clones;
/// * Algorithm 1's result depends only on (network, capacity, source) —
///   the network is fixed per cache, capacity is pinned by the epoch.
///
/// Hits and misses are observable as `core.channel.cache_hits` /
/// `core.channel.cache_misses`.
///
/// [`epoch`]: CapacityMap::epoch
pub struct ChannelFinderCache<'n> {
    net: &'n QuantumNetwork,
    ws: DijkstraWorkspace,
    /// Indexed by source node; each entry stores the epoch its run was
    /// computed under.
    entries: Vec<Option<(u64, ChannelFinder<'n>)>>,
}

impl<'n> ChannelFinderCache<'n> {
    /// An empty cache for `net`; entries populate lazily per source.
    pub fn new(net: &'n QuantumNetwork) -> Self {
        let nodes = net.graph().node_count();
        ChannelFinderCache {
            net,
            ws: DijkstraWorkspace::with_capacity(nodes),
            entries: (0..nodes).map(|_| None).collect(),
        }
    }

    /// The Algorithm-1 run from `source` under `capacity`, reused when
    /// `capacity` has not changed since the entry was computed.
    pub fn finder(&mut self, capacity: &CapacityMap, source: NodeId) -> &ChannelFinder<'n> {
        let idx = source.index();
        let epoch = capacity.epoch();
        match &mut self.entries[idx] {
            Some((cached, _)) if *cached == epoch => {
                qnet_obs::counter!("core.channel.cache_hits");
            }
            Some((cached, finder)) => {
                qnet_obs::counter!("core.channel.cache_misses");
                finder.refresh_in(&mut self.ws, capacity);
                *cached = epoch;
            }
            entry @ None => {
                qnet_obs::counter!("core.channel.cache_misses");
                *entry = Some((
                    epoch,
                    ChannelFinder::from_source_in(&mut self.ws, self.net, capacity, source),
                ));
            }
        }
        &self.entries[idx].as_ref().expect("entry just populated").1
    }

    /// [`max_rate_channel`] through the cache.
    pub fn channel(&mut self, capacity: &CapacityMap, a: NodeId, b: NodeId) -> Option<Channel> {
        self.finder(capacity, a).channel_to(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NodeKind, PhysicsParams, QuantumNetwork};
    use qnet_graph::Graph;

    /// Two parallel routes between users a and b:
    ///   a —1000— s1 —1000— b        (2 links, 1 swap)
    ///   a —————— 2500 ——————— b     (1 link, 0 swaps)
    /// With α = 1e-4, q = 0.9: via s1: e^{-0.2}·0.9 ≈ 0.7369;
    /// direct: e^{-0.25} ≈ 0.7788 → direct wins.
    fn two_route_net(q: f64) -> (QuantumNetwork, [NodeId; 3]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 4 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s1, 1000.0);
        g.add_edge(s1, b, 1000.0);
        g.add_edge(a, b, 2500.0);
        let physics = PhysicsParams {
            swap_success: q,
            attenuation: 1e-4,
        };
        (QuantumNetwork::from_graph(g, physics), [a, s1, b])
    }

    #[test]
    fn picks_route_with_best_rate_not_fewest_hops_or_shortest_length() {
        // q = 0.9: the direct (longer but swap-free) route wins.
        let (net, [a, _s1, b]) = two_route_net(0.9);
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(c.link_count(), 1);
        assert!((c.rate.value() - (-0.25f64).exp()).abs() < 1e-12);

        // q = 0.99: the relayed route (shorter fibers) wins.
        let (net, [a, s1, b]) = two_route_net(0.99);
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(c.link_count(), 2);
        assert_eq!(c.interior_switches(), &[s1]);
        assert!((c.rate.value() - (-0.2f64).exp() * 0.99).abs() < 1e-12);
    }

    #[test]
    fn respects_residual_capacity() {
        let (net, [a, _s1, b]) = two_route_net(0.99);
        let mut cap = CapacityMap::new(&net);
        let via_switch = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(via_switch.link_count(), 2);
        cap.reserve(&via_switch);
        cap.reserve(&via_switch); // 4 qubits gone
        let fallback = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(fallback.link_count(), 1, "switch exhausted → direct fiber");
    }

    #[test]
    fn users_never_relay() {
        // a — u — b where u is a *user*: no channel may pass through u,
        // so a and b are unconnectable.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let u = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, u, 100.0);
        g.add_edge(u, b, 100.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let cap = CapacityMap::new(&net);
        assert!(max_rate_channel(&net, &cap, a, b).is_none());
        // …but a–u itself is routable (u is an endpoint there).
        assert!(max_rate_channel(&net, &cap, a, u).is_some());
    }

    #[test]
    fn switch_with_one_qubit_cannot_relay() {
        let (net, ids) = two_route_net(0.99);
        let mut g = net.graph().clone();
        *g.node_mut(ids[1]) = NodeKind::Switch { qubits: 1 };
        let net = QuantumNetwork::from_graph(g, *net.physics());
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, ids[0], ids[2]).unwrap();
        assert_eq!(c.link_count(), 1, "1-qubit switch unusable, direct route");
    }

    #[test]
    fn single_source_run_matches_pairwise_calls() {
        let net = crate::model::NetworkSpec::paper_default().build(11);
        let cap = CapacityMap::new(&net);
        let users = net.users().to_vec();
        let finder = ChannelFinder::from_source(&net, &cap, users[0]);
        for &dst in &users[1..] {
            let via_run = finder.channel_to(dst);
            let via_pair = max_rate_channel(&net, &cap, users[0], dst);
            match (via_run, via_pair) {
                (Some(x), Some(y)) => {
                    assert!((x.rate.value() - y.rate.value()).abs() < 1e-12)
                }
                (None, None) => {}
                other => panic!("disagreement for {dst}: {other:?}"),
            }
        }
    }

    #[test]
    fn no_channel_to_self() {
        let (net, [a, ..]) = two_route_net(0.9);
        let cap = CapacityMap::new(&net);
        assert!(max_rate_channel(&net, &cap, a, a).is_none());
    }

    #[test]
    fn perfect_swap_rate_prefers_short_fibers() {
        let (net, [a, s1, b]) = two_route_net(1.0);
        let cap = CapacityMap::new(&net);
        let c = max_rate_channel(&net, &cap, a, b).unwrap();
        assert_eq!(c.interior_switches(), &[s1]);
        assert!((c.rate.value() - (-0.2f64).exp()).abs() < 1e-12);
    }
}
