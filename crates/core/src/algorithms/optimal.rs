//! **Algorithm 2** — optimal routing under the sufficient condition
//! `Q_r ≥ 2·|U|` for every switch `r` (paper §IV-B, Theorem 3).
//!
//! Two steps:
//!
//! 1. Find the maximum-rate channel for every user pair (one Algorithm-1
//!    run per source user — the paper's own complexity optimization).
//! 2. Sort all channels by rate descending and select greedily with a
//!    union-find, exactly like Kruskal's algorithm on the "user graph"
//!    whose edge weights are channel rates.
//!
//! Under the sufficient condition the channels never contend for qubits
//! (any switch can host all `≤ |U|·(|U|−1)/2 ≤ |U|` tree channels… more
//! precisely, all `|U| − 1` selected channels need at most `2·(|U|−1) <
//! 2·|U|` qubits even if they all cross one switch), so the Kruskal
//! exchange argument of Theorem 3 gives optimality. Without the
//! condition the output may violate capacity — that is Algorithm 3's
//! starting point, and the experiments of Fig. 8(a) always grant
//! Algorithm 2 switches with `2·|U|` qubits.

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;
use qnet_graph::UnionFind;

use super::channel_finder::ChannelFinder;

/// All-pairs maximum-rate channels among the users, sorted by rate
/// descending (ties broken by user-pair id for determinism).
///
/// Channels are computed against the *static* capacity map (a switch must
/// merely own ≥ 2 qubits to appear as a relay); nothing is reserved.
pub fn all_pairs_best_channels(net: &QuantumNetwork, capacity: &CapacityMap) -> Vec<Channel> {
    let _span = qnet_obs::span!("core.optimal.all_pairs");
    let users = net.users();
    let mut channels = Vec::with_capacity(users.len() * (users.len().saturating_sub(1)) / 2);
    // Every source runs exactly once (capacity is static here), so a
    // shared workspace is all the reuse available.
    let mut ws = qnet_graph::DijkstraWorkspace::with_capacity(net.graph().node_count());
    for (i, &src) in users.iter().enumerate() {
        let finder = ChannelFinder::from_source_in(&mut ws, net, capacity, src);
        for &dst in &users[i + 1..] {
            if let Some(c) = finder.channel_to(dst) {
                channels.push(c);
            }
        }
    }
    channels.sort_by(|a, b| {
        b.rate
            .cmp(&a.rate)
            .then_with(|| a.user_pair().cmp(&b.user_pair()))
    });
    channels
}

/// The paper's **Algorithm 2**.
///
/// Produces the optimal entanglement tree whenever every switch satisfies
/// `Q ≥ 2·|U|`; in general it ignores capacity *interaction* between
/// channels (each channel alone is feasible, their union may not be).
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
///
/// let mut spec = NetworkSpec::paper_default();
/// spec.qubits_per_switch = 2 * spec.users as u32; // sufficient condition
/// let net = spec.build(5);
/// let sol = OptimalSufficient.solve(&net)?;
/// validate_solution(&net, &sol)?; // optimal AND capacity-clean
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimalSufficient;

impl RoutingAlgorithm for OptimalSufficient {
    fn name(&self) -> &'static str {
        "Alg-2"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let _span = qnet_obs::span!("core.optimal.solve");
        qnet_obs::counter!("core.optimal.solves");
        if net.user_count() < 2 {
            return Err(RoutingError::TooFewUsers {
                got: net.user_count(),
            });
        }
        let capacity = CapacityMap::new(net);
        let channels = all_pairs_best_channels(net, &capacity);

        let mut uf = UnionFind::new(net.graph().node_count());
        let mut tree = EntanglementTree::new();
        for c in channels {
            if uf.union_nodes(c.source(), c.destination()) {
                tree.push(c);
                if tree.channels.len() + 1 == net.user_count() {
                    break;
                }
            }
        }
        if tree.channels.len() + 1 != net.user_count() {
            // Some users unreachable even without capacity contention.
            let users = net.users();
            let root = uf.find_node(users[0]);
            let stranded = users
                .iter()
                .copied()
                .find(|&u| uf.find_node(u) != root)
                .expect("tree incomplete implies a stranded user");
            return Err(RoutingError::NoFeasibleChannel {
                a: users[0],
                b: stranded,
            });
        }
        Ok(Solution::from_tree(tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use qnet_graph::Graph;

    fn sufficient_net(seed: u64) -> QuantumNetwork {
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = 2 * spec.users as u32;
        spec.build(seed)
    }

    #[test]
    fn produces_spanning_tree_with_correct_count() {
        let net = sufficient_net(1);
        let sol = OptimalSufficient.solve(&net).unwrap();
        assert_eq!(sol.channels.len(), net.user_count() - 1);
        assert!(crate::solver::validate_solution(&net, &sol).is_ok());
    }

    #[test]
    fn all_pairs_channels_are_sorted_descending() {
        let net = sufficient_net(2);
        let cap = CapacityMap::new(&net);
        let channels = all_pairs_best_channels(&net, &cap);
        for w in channels.windows(2) {
            assert!(w[0].rate >= w[1].rate);
        }
        // Complete user graph: all pairs present in a connected network.
        let n = net.user_count();
        assert_eq!(channels.len(), n * (n - 1) / 2);
    }

    #[test]
    fn tree_uses_the_maximum_rate_channel() {
        // Kruskal always takes the globally best channel first.
        let net = sufficient_net(3);
        let cap = CapacityMap::new(&net);
        let best = all_pairs_best_channels(&net, &cap)
            .into_iter()
            .next()
            .unwrap();
        let sol = OptimalSufficient.solve(&net).unwrap();
        assert!(sol
            .channels
            .iter()
            .any(|c| c.user_pair() == best.user_pair()));
    }

    #[test]
    fn optimality_by_exchange_on_line_instance() {
        // Users u0, u1, u2 in a line of switches; the unique optimal tree
        // is {u0–u1, u1–u2}; a naive star at u0 would be worse.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let s0 = g.add_node(NodeKind::Switch { qubits: 20 });
        let u1 = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 20 });
        let u2 = g.add_node(NodeKind::User);
        g.add_edge(u0, s0, 1000.0);
        g.add_edge(s0, u1, 1000.0);
        g.add_edge(u1, s1, 1000.0);
        g.add_edge(s1, u2, 1000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let sol = OptimalSufficient.solve(&net).unwrap();
        let pairs: Vec<_> = sol.channels.iter().map(|c| c.user_pair()).collect();
        assert!(pairs.contains(&(u0, u1)));
        assert!(pairs.contains(&(u1, u2)));
        // Rate = (p²q)² with p = e^{-0.1}, q = 0.9.
        let p = (-0.1f64).exp();
        let expected = (p * p * 0.9f64).powi(2);
        assert!((sol.rate.value() - expected).abs() < 1e-12);
        let _ = (s0, s1);
    }

    #[test]
    fn disconnected_users_error() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u0 = g.add_node(NodeKind::User);
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        g.add_edge(u0, u1, 100.0);
        // u2 isolated.
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let err = OptimalSufficient.solve(&net).unwrap_err();
        assert!(matches!(err, RoutingError::NoFeasibleChannel { b, .. } if b == u2));
    }

    #[test]
    fn single_user_error() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        g.add_node(NodeKind::User);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        assert_eq!(
            OptimalSufficient.solve(&net).unwrap_err(),
            RoutingError::TooFewUsers { got: 1 }
        );
    }

    #[test]
    fn deterministic() {
        let net = sufficient_net(4);
        let a = OptimalSufficient.solve(&net).unwrap();
        let b = OptimalSufficient.solve(&net).unwrap();
        assert_eq!(a, b);
    }
}
