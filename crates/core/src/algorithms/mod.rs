//! The paper's routing algorithms (§IV) and comparison baselines (§V-A).
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 — maximum entanglement-rate channel | [`max_rate_channel`], [`ChannelFinder`] |
//! | Algorithm 2 — optimal under `Q ≥ 2·\|U\|` | [`OptimalSufficient`] |
//! | Algorithm 3 — conflict-free heuristic | [`ConflictFree`] |
//! | Algorithm 4 — Prim-based heuristic | [`PrimBased`] |
//! | E-Q-CAST (extended \[12\]) | [`baselines::EQCast`] |
//! | N-FUSION (MP-P \[32\] with capacity) | [`baselines::NFusion`] |

pub mod baselines;
mod beam;
mod channel_finder;
mod conflict_free;
mod k_channels;
pub mod local_search;
mod optimal;
mod prim_based;

pub use beam::BeamSearch;
pub use channel_finder::{max_rate_channel, CacheEfficiency, ChannelFinder, ChannelFinderCache};
pub use conflict_free::{ConflictFree, RetentionPolicy};
pub use k_channels::{
    k_best_channels, k_best_channels_in, k_best_channels_pooled_in, YEN_POOL_MIN_NODES,
};
pub use local_search::{refine, LocalSearchOptions, Refined};
pub use optimal::{all_pairs_best_channels, OptimalSufficient};
pub use prim_based::{PrimBased, SeedChoice};
