//! Beam search over entanglement-tree growth — a tunable middle ground
//! between Algorithm 4 (beam width 1) and the exponential oracle.
//!
//! The NP-hardness of MUERP (Theorem 2) means greedy growth can commit
//! to a channel that exhausts a contended switch and strands a later
//! user on a poor detour. Beam search hedges: it carries the `width`
//! best *partial trees* (connected user set + residual capacity +
//! accumulated rate) through the `|U| − 1` growth rounds, expanding each
//! with its top candidate channels and re-pruning. Width 1 reproduces
//! Algorithm 4 exactly; already width 2–3 escapes the canonical greedy
//! trap (see the tests and `tests/hardness_witness.rs`).

use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;

use super::channel_finder::ChannelFinderCache;

/// Beam-search tree growth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeamSearch {
    /// Number of partial trees carried per round (≥ 1).
    pub width: usize,
    /// Candidate channels expanded per partial tree per round (≥ 1);
    /// the top `branch` channels by rate among all cross pairs.
    pub branch: usize,
}

impl Default for BeamSearch {
    /// Width 3, branch 3 — enough to escape 2-channel traps at roughly
    /// 9× Algorithm 4's cost.
    fn default() -> Self {
        BeamSearch {
            width: 3,
            branch: 3,
        }
    }
}

#[derive(Clone)]
struct State {
    in_tree: Vec<bool>,
    capacity: CapacityMap,
    tree: EntanglementTree,
    rate: Rate,
}

impl RoutingAlgorithm for BeamSearch {
    fn name(&self) -> &'static str {
        "Beam"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        assert!(self.width >= 1, "beam width must be at least 1");
        assert!(self.branch >= 1, "branch factor must be at least 1");
        let beam_result = self.solve_beam(net);
        if self.width == 1 && self.branch == 1 {
            return beam_result;
        }
        // Anytime guarantee: rate-based pruning can drop the greedy
        // lineage (the classic beam anomaly), so a wide beam is not
        // automatically ≥ greedy. Run the width-1 beam (== Algorithm 4
        // from the first user) and keep the better of the two.
        let greedy_result = BeamSearch {
            width: 1,
            branch: 1,
        }
        .solve_beam(net);
        match (beam_result, greedy_result) {
            (Ok(b), Ok(g)) => Ok(if b.rate >= g.rate { b } else { g }),
            (Ok(b), Err(_)) => Ok(b),
            (Err(_), Ok(g)) => Ok(g),
            (Err(e), Err(_)) => Err(e),
        }
    }
}

impl BeamSearch {
    fn solve_beam(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let _span = qnet_obs::span!("core.beam.solve");
        qnet_obs::counter!("core.beam.solves");
        let users = net.users();
        if users.len() < 2 {
            return Err(RoutingError::TooFewUsers { got: users.len() });
        }

        let mut in_tree = vec![false; net.graph().node_count()];
        in_tree[users[0].index()] = true;
        let mut beam = vec![State {
            in_tree,
            capacity: CapacityMap::new(net),
            tree: EntanglementTree::new(),
            rate: Rate::ONE,
        }];
        // States carry diverged capacity clones, so a (source, epoch)
        // entry hits only for states sharing an unmutated lineage — but
        // even a miss refreshes in place, keeping the search
        // allocation-free across the whole beam.
        let mut cache = ChannelFinderCache::new(net);

        for round in 1..users.len() {
            let mut expansions: Vec<State> = Vec::new();
            for state in &beam {
                // Top candidate channels crossing this state's cut.
                let mut candidates: Vec<Channel> = Vec::new();
                for &src in users.iter().filter(|u| state.in_tree[u.index()]) {
                    let finder = cache.finder(&state.capacity, src);
                    for &dst in users.iter().filter(|u| !state.in_tree[u.index()]) {
                        if let Some(c) = finder.channel_to(dst) {
                            candidates.push(c);
                        }
                    }
                }
                candidates.sort_by_key(|c| std::cmp::Reverse(c.rate));
                if candidates.len() > self.branch {
                    qnet_obs::counter!("core.channel.rejected", reason = "width";
                        (candidates.len() - self.branch) as u64);
                }
                candidates.truncate(self.branch);
                for c in candidates {
                    let mut next = state.clone();
                    next.capacity.reserve(&c);
                    let newcomer = if next.in_tree[c.source().index()] {
                        c.destination()
                    } else {
                        c.source()
                    };
                    next.in_tree[newcomer.index()] = true;
                    next.rate *= c.rate;
                    next.tree.push(c);
                    expansions.push(next);
                }
            }
            if expansions.is_empty() {
                let stranded = users
                    .iter()
                    .copied()
                    .find(|u| !beam[0].in_tree[u.index()])
                    .expect("rounds run only while users remain");
                return Err(RoutingError::NoFeasibleChannel {
                    a: users[0],
                    b: stranded,
                });
            }
            // Prune to the best `width` states. Dedup by covered user set
            // keeping the best rate, so the beam holds *diverse* cuts.
            let expanded = expansions.len();
            expansions.sort_by_key(|s| std::cmp::Reverse(s.rate));
            let mut kept: Vec<State> = Vec::with_capacity(self.width);
            let mut seen_sets: Vec<Vec<bool>> = Vec::new();
            for s in expansions {
                let user_set: Vec<bool> = users.iter().map(|u| s.in_tree[u.index()]).collect();
                if seen_sets.contains(&user_set) {
                    continue;
                }
                seen_sets.push(user_set);
                kept.push(s);
                if kept.len() == self.width {
                    break;
                }
            }
            if qnet_obs::trace_enabled() {
                qnet_obs::record_event(qnet_obs::TraceEvent::BeamRound {
                    round: round as u32,
                    expanded: expanded as u32,
                    kept: kept.len() as u32,
                });
            }
            beam = kept;
        }

        let best = beam
            .into_iter()
            .max_by(|a, b| a.rate.cmp(&b.rate))
            .expect("beam never empties after a successful round");
        Ok(Solution::from_tree(best.tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PrimBased;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::solver::validate_solution;
    use qnet_graph::Graph;

    fn trap() -> QuantumNetwork {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        let u3 = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        let d12 = g.add_node(NodeKind::Switch { qubits: 2 });
        let d13 = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(u1, hub, 500.0);
        g.add_edge(hub, u2, 500.0);
        g.add_edge(hub, u3, 600.0);
        g.add_edge(u1, d12, 600.0);
        g.add_edge(d12, u2, 600.0);
        g.add_edge(u1, d13, 5000.0);
        g.add_edge(d13, u3, 5000.0);
        let _ = (u2, u3);
        QuantumNetwork::from_graph(g, PhysicsParams::paper_default())
    }

    #[test]
    fn width_one_is_exactly_prim() {
        for seed in 0..6u64 {
            let net = NetworkSpec::paper_default().build(seed);
            let beam = BeamSearch {
                width: 1,
                branch: 1,
            }
            .solve(&net);
            let prim = PrimBased::default().solve(&net);
            match (beam, prim) {
                (Ok(b), Ok(p)) => {
                    assert!(
                        (b.rate.value() - p.rate.value()).abs() <= 1e-12 * p.rate.value(),
                        "seed {seed}: beam-1 {} vs prim {}",
                        b.rate,
                        p.rate
                    );
                }
                (Err(_), Err(_)) => {}
                other => panic!("seed {seed}: {other:?}"),
            }
        }
    }

    #[test]
    fn escapes_the_greedy_trap() {
        let net = trap();
        let prim = PrimBased::default().solve(&net).unwrap();
        let beam = BeamSearch::default().solve(&net).unwrap();
        validate_solution(&net, &beam).unwrap();
        // Greedy lands on 0.8143 × 0.3311; beam finds ≈ 0.8063 × 0.7982.
        assert!(
            beam.rate.value() > prim.rate.value() * 2.0,
            "beam {} should double greedy {}",
            beam.rate,
            prim.rate
        );
        let near_optimal = 0.9 * (-0.11f64).exp() * 0.9 * (-0.12f64).exp();
        assert!(beam.rate.value() >= near_optimal * (1.0 - 1e-9));
    }

    #[test]
    fn wider_beams_never_do_worse_instancewise() {
        // The anytime guarantee: a wide beam falls back to its width-1
        // (greedy) trajectory whenever rate pruning would have lost it.
        for seed in 0..8u64 {
            let net = NetworkSpec::paper_default().build(seed);
            let narrow = BeamSearch {
                width: 1,
                branch: 1,
            }
            .solve(&net)
            .map_or(0.0, |s| s.rate.value());
            let wide = BeamSearch {
                width: 4,
                branch: 3,
            }
            .solve(&net)
            .map_or(0.0, |s| s.rate.value());
            assert!(
                wide >= narrow * (1.0 - 1e-12),
                "seed {seed}: wide beam {wide} lost to greedy {narrow}"
            );
        }
    }

    #[test]
    fn solutions_validate_on_paper_default() {
        for seed in 0..6u64 {
            let net = NetworkSpec::paper_default().build(seed);
            if let Ok(sol) = BeamSearch::default().solve(&net) {
                validate_solution(&net, &sol).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert_eq!(sol.channels.len(), net.user_count() - 1);
            }
        }
    }

    #[test]
    fn never_beats_the_oracle_on_the_trap() {
        use crate::feasibility::exhaustive_optimal;
        let net = trap();
        let oracle = exhaustive_optimal(&net, 4).unwrap().rate().value();
        let beam = BeamSearch {
            width: 8,
            branch: 5,
        }
        .solve(&net)
        .unwrap();
        assert!(beam.rate.value() <= oracle * (1.0 + 1e-9));
    }

    #[test]
    fn infeasible_instances_error_cleanly() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let _a = g.add_node(NodeKind::User);
        let _b = g.add_node(NodeKind::User);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        assert!(matches!(
            BeamSearch::default().solve(&net),
            Err(RoutingError::NoFeasibleChannel { .. })
        ));
    }
}
