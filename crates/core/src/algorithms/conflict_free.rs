//! **Algorithm 3** — the conflict-free heuristic (paper §IV-C).
//!
//! Takes Algorithm 2's (capacity-oblivious) optimal tree and repairs the
//! switch-capacity conflicts:
//!
//! 1. Admit Algorithm 2's channels in descending rate order, reserving 2
//!    qubits per interior switch; channels that no longer fit are dropped
//!    (their users stay in separate unions).
//! 2. While users remain in different unions, compute the maximum-rate
//!    channel on *residual* capacity between every cross-union user pair,
//!    admit the globally best one, merge the unions; fail (rate 0) when
//!    no cross-union channel exists.
//!
//! Both decision points use the greedy max-rate policy the paper
//! motivates: keep the channels with the maximum entanglement rate, and
//! reconnect unions with the maximum-rate channels.

use qnet_graph::UnionFind;
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;

use super::channel_finder::ChannelFinderCache;
use super::optimal::OptimalSufficient;

/// The paper's **Algorithm 3**.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
///
/// let net = NetworkSpec::paper_default().build(3); // Q = 4: conflicts likely
/// match ConflictFree::default().solve(&net) {
///     Ok(sol) => {
///         validate_solution(&net, &sol)?; // never violates capacity
///     }
///     Err(e) => println!("infeasible: {e}"), // scored as rate 0
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictFree {
    /// Which of the conflicting channels phase 1 prefers to keep.
    pub retention: RetentionPolicy,
}

/// Phase-1 admission order when channels contend for switch qubits.
///
/// The paper adopts the greedy max-rate policy; the alternative exists
/// for the ablation study (a channel through fewer switches frees more
/// capacity for later channels, trading individual rate for feasibility).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetentionPolicy {
    /// Keep channels in descending entanglement-rate order (the paper's
    /// choice).
    #[default]
    MaxRateFirst,
    /// Keep channels using the fewest interior switches first, breaking
    /// ties by rate.
    FewestSwitchesFirst,
}

impl RoutingAlgorithm for ConflictFree {
    fn name(&self) -> &'static str {
        "Alg-3"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let _span = qnet_obs::span!("core.conflict_free.solve");
        qnet_obs::counter!("core.conflict_free.solves");
        // Phase 0: Algorithm 2's unconstrained optimal tree, already in
        // descending rate order by construction; order per policy.
        let base = OptimalSufficient.solve(net)?;
        let mut seed_channels = base.channels;
        match self.retention {
            RetentionPolicy::MaxRateFirst => {
                seed_channels.sort_by_key(|c| std::cmp::Reverse(c.rate));
            }
            RetentionPolicy::FewestSwitchesFirst => {
                seed_channels.sort_by(|a, b| {
                    a.interior_switches()
                        .len()
                        .cmp(&b.interior_switches().len())
                        .then_with(|| b.rate.cmp(&a.rate))
                });
            }
        }

        let mut capacity = CapacityMap::new(net);
        let mut uf = UnionFind::new(net.graph().node_count());
        let mut tree = EntanglementTree::new();

        // Phase 1: keep whatever fits, in descending rate order.
        {
            let _phase1 = qnet_obs::span!("core.conflict_free.admit");
            for c in seed_channels {
                let admitted = capacity.admits(&c);
                if qnet_obs::trace_enabled() {
                    qnet_obs::record_event(qnet_obs::TraceEvent::Admission {
                        algo: "alg3",
                        accepted: admitted,
                        rate: c.rate.value(),
                        epoch: capacity.epoch(),
                    });
                }
                if admitted {
                    capacity.reserve(&c);
                    let merged = uf.union_nodes(c.source(), c.destination());
                    debug_assert!(merged, "Algorithm 2's tree is acyclic");
                    qnet_obs::counter!("core.conflict_free.admitted");
                    tree.push(c);
                } else {
                    qnet_obs::counter!("core.channel.rejected", reason = "qubit_capacity");
                    qnet_obs::counter!("core.conflict_free.dropped");
                }
            }
        }

        // Phase 2: reconnect the unions greedily on residual capacity.
        let _phase2 = qnet_obs::span!("core.conflict_free.reconnect");
        let users = net.users();
        // Sources repeat across reconnection rounds; the cache re-runs a
        // source only after a reservation changed capacity.
        let mut cache = ChannelFinderCache::new(net);
        let mut round = 0u32;
        while !all_connected(&mut uf, users) {
            round += 1;
            qnet_obs::counter!("core.conflict_free.reconnections");
            // Batch-refresh all user sources on the cache's pool before
            // the pairwise scan (which then hits on every lookup).
            cache.warm(&capacity, users);
            let mut best: Option<Channel> = None;
            for (i, &src) in users.iter().enumerate() {
                // One Algorithm-1 run per source covers all destinations.
                let finder = cache.finder(&capacity, src);
                for &dst in &users[i + 1..] {
                    if uf.same_set_nodes(src, dst) {
                        continue;
                    }
                    if let Some(c) = finder.channel_to(dst) {
                        if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                            best = Some(c);
                        }
                    }
                }
            }
            let Some(c) = best else {
                let (a, b) = first_split_pair(&mut uf, users);
                return Err(RoutingError::NoFeasibleChannel { a, b });
            };
            if qnet_obs::trace_enabled() {
                qnet_obs::record_event(qnet_obs::TraceEvent::TreeStep {
                    algo: "alg3",
                    round,
                    source: c.source().index() as u32,
                    destination: c.destination().index() as u32,
                    rate: c.rate.value(),
                    epoch: capacity.epoch(),
                });
            }
            capacity.reserve(&c);
            uf.union_nodes(c.source(), c.destination());
            tree.push(c);
        }

        Ok(Solution::from_tree(tree))
    }
}

fn all_connected(uf: &mut UnionFind, users: &[qnet_graph::NodeId]) -> bool {
    uf.all_same_set(users.iter().map(|u| u.index()))
}

fn first_split_pair(
    uf: &mut UnionFind,
    users: &[qnet_graph::NodeId],
) -> (qnet_graph::NodeId, qnet_graph::NodeId) {
    let root = uf.find_node(users[0]);
    let other = users
        .iter()
        .copied()
        .find(|&u| uf.find_node(u) != root)
        .expect("called only when users are split");
    (users[0], other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams, QuantumNetwork};
    use crate::solver::validate_solution;
    use qnet_graph::{Graph, NodeId};

    #[test]
    fn never_violates_capacity_on_paper_default() {
        for seed in 0..10 {
            let net = NetworkSpec::paper_default().build(seed);
            if let Ok(sol) = ConflictFree::default().solve(&net) {
                validate_solution(&net, &sol)
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid solution: {e}"));
            }
        }
    }

    /// The paper's Fig. 4: three users, one central 2-qubit switch, plus a
    /// long detour. Phase 1 can keep only one central channel; phase 2
    /// must route the other user around the detour.
    fn fig4_with_detour() -> (QuantumNetwork, [NodeId; 5]) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let alice = g.add_node(NodeKind::User);
        let bob = g.add_node(NodeKind::User);
        let carol = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        let detour = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(alice, hub, 1000.0);
        g.add_edge(bob, hub, 1000.0);
        g.add_edge(carol, hub, 1000.0);
        g.add_edge(alice, detour, 3000.0);
        g.add_edge(detour, carol, 3000.0);
        (
            QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
            [alice, bob, carol, hub, detour],
        )
    }

    #[test]
    fn reconnects_via_detour_when_hub_is_full() {
        let (net, [_alice, _bob, _carol, hub, detour]) = fig4_with_detour();
        let sol = ConflictFree::default().solve(&net).unwrap();
        assert_eq!(sol.channels.len(), 2);
        validate_solution(&net, &sol).unwrap();
        // One channel through the hub, one through the detour.
        let interiors: Vec<_> = sol
            .channels
            .iter()
            .flat_map(|c| c.interior_switches().iter().copied())
            .collect();
        assert!(interiors.contains(&hub));
        assert!(interiors.contains(&detour));
    }

    #[test]
    fn fails_cleanly_when_capacity_cannot_span() {
        // Same Fig. 4 topology but NO detour: the 2-qubit hub can host
        // one channel, the third user is stranded → rate 0.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let alice = g.add_node(NodeKind::User);
        let bob = g.add_node(NodeKind::User);
        let carol = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(alice, hub, 1000.0);
        g.add_edge(bob, hub, 1000.0);
        g.add_edge(carol, hub, 1000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        assert!(matches!(
            ConflictFree::default().solve(&net),
            Err(RoutingError::NoFeasibleChannel { .. })
        ));
    }

    #[test]
    fn agrees_with_alg2_when_capacity_sufficient() {
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = 2 * spec.users as u32;
        for seed in 0..5 {
            let net = spec.build(seed);
            let a2 = OptimalSufficient.solve(&net).unwrap();
            let a3 = ConflictFree::default().solve(&net).unwrap();
            assert!(
                (a2.rate.value() - a3.rate.value()).abs() <= 1e-12 * a2.rate.value(),
                "seed {seed}: alg3 {} vs alg2 {}",
                a3.rate,
                a2.rate
            );
        }
    }

    #[test]
    fn never_beats_alg2_unconstrained_bound() {
        // Algorithm 2 without capacity interaction is an upper bound on
        // any feasible tree's rate.
        for seed in 0..10 {
            let net = NetworkSpec::paper_default().build(seed);
            let bound = OptimalSufficient.solve(&net).map(|s| s.rate);
            if let (Ok(sol), Ok(bound)) = (ConflictFree::default().solve(&net), bound) {
                assert!(
                    sol.rate.value() <= bound.value() * (1.0 + 1e-9),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let net = NetworkSpec::paper_default().build(8);
        assert_eq!(
            ConflictFree::default().solve(&net),
            ConflictFree::default().solve(&net)
        );
    }
}
