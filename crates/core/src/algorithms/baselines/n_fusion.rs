//! The **N-FUSION** baseline (paper §V-A).
//!
//! Models the MP-P protocol of Sutcliffe & Beghelli \[32\] under limited
//! switch capacity: one *fusion center* connects all users star-wise
//! ("like Tree B in Figure 3 of Ref. \[32\]"). Each user establishes a
//! swapped path to the center; the center then performs a single n-qubit
//! GHZ projective measurement (n-fusion) to entangle everyone.
//!
//! Per the paper's §I discussion, n-fusion is *less reliable* than BSM
//! chains: GHZ measurements manipulate n fragile qubits at once
//! \[38\]–\[40\]. We model the fusion success as `q^(n−1)` by default — the
//! n-fusion generalizes the BSM (`n = 2` recovers exactly `q`), and each
//! additional fused qubit multiplies in another failure opportunity —
//! and expose [`FusionSuccess`] so experiments can substitute other
//! models.
//!
//! The center is chosen greedily: every node (user or switch with at
//! least `|U|` spare qubits for the incoming paths) is tried, and the
//! center yielding the best total rate wins.

use qnet_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::solver::{RoutingAlgorithm, Solution, SolutionStyle};

use crate::algorithms::channel_finder::ChannelFinder;

/// Success model of the n-qubit GHZ projective measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum FusionSuccess {
    /// `q^(n−1)`: the BSM success rate compounded per fused qubit beyond
    /// the first; `n = 2` recovers plain BSM swapping.
    #[default]
    PowerLaw,
    /// A fixed per-measurement success probability, independent of `n`.
    Fixed(f64),
}

impl FusionSuccess {
    /// Success rate of fusing `n` qubits when the BSM rate is `q`.
    pub fn rate(self, q: f64, n: usize) -> Rate {
        match self {
            FusionSuccess::PowerLaw => Rate::from_prob(q).powi(n.saturating_sub(1) as u32),
            FusionSuccess::Fixed(p) => Rate::from_prob(p),
        }
    }
}

/// The N-FUSION baseline: star routing to a fusion center plus one GHZ
/// measurement.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
///
/// let net = NetworkSpec::paper_default().build(4);
/// match NFusion::default().solve(&net) {
///     Ok(sol) => {
///         assert!(matches!(sol.style, SolutionStyle::FusionStar { .. }));
///         validate_solution(&net, &sol)?;
///     }
///     Err(e) => println!("no feasible fusion star: {e}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NFusion {
    /// GHZ measurement success model.
    pub fusion: FusionSuccess,
}

impl NFusion {
    /// Attempts to build the fusion star centered at `center`; returns
    /// the solution when all users can reach the center under capacity.
    fn try_center(&self, net: &QuantumNetwork, center: NodeId) -> Option<Solution> {
        let users = net.users();
        let is_user_center = net.is_user(center);
        let incoming = if is_user_center {
            users.len() - 1
        } else {
            users.len()
        };
        let mut capacity = CapacityMap::new(net);
        if !is_user_center {
            // Reserve one memory qubit per incoming path at the switch
            // center up front; a center that cannot hold them all is
            // infeasible. (Interior relaying through the center is then
            // automatically restricted to its remaining qubits.)
            let have = capacity.free(center);
            if (have as usize) < incoming {
                return None;
            }
            for _ in 0..incoming {
                // Modeled as one-qubit reservations: two per *relayed*
                // channel stays the CapacityMap invariant, so we emulate
                // single-qubit holds by direct arithmetic below.
            }
        }
        // Track the center's single-qubit holds separately from the
        // 2-qubit relay reservations CapacityMap manages.
        let mut center_holds: u32 = 0;

        let mut channels: Vec<Channel> = Vec::with_capacity(incoming);
        let mut ws = qnet_graph::DijkstraWorkspace::with_capacity(net.graph().node_count());
        for &u in users {
            if u == center {
                continue;
            }
            // Re-run the finder per user on *current* residual capacity.
            let finder = ChannelFinder::from_source_in(&mut ws, net, &capacity, u);
            let c = finder.channel_to(center)?;
            // Reject paths relaying through the center's remaining
            // qubits when those are pledged to incoming holds: interior
            // visits cost 2 qubits that must coexist with the holds.
            if !is_user_center {
                let interior_at_center = c
                    .interior_switches()
                    .iter()
                    .filter(|&&s| s == center)
                    .count();
                debug_assert_eq!(interior_at_center, 0, "center is the path endpoint");
            }
            capacity.reserve(&c);
            if !is_user_center {
                center_holds += 1;
                // The hold shrinks what relays may use at the center.
                // CapacityMap has no single-qubit API (channels always
                // cost 2), so check the combined budget explicitly.
                let used_by_relays = net.kind(center).qubits() - capacity.free(center);
                if used_by_relays + center_holds > net.kind(center).qubits() {
                    return None;
                }
            }
            channels.push(c);
        }

        let arity = users.len();
        let fusion_rate = self.fusion.rate(net.physics().swap_success, arity);
        let rate = channels.iter().map(|c| c.rate).product::<Rate>() * fusion_rate;
        if rate.is_zero() {
            return None;
        }
        Some(Solution {
            channels,
            rate,
            style: SolutionStyle::FusionStar {
                center,
                fusion_rate,
            },
        })
    }
}

impl RoutingAlgorithm for NFusion {
    fn name(&self) -> &'static str {
        "N-Fusion"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let _span = qnet_obs::span!("core.n_fusion.solve");
        qnet_obs::counter!("core.n_fusion.solves");
        let users = net.users();
        if users.len() < 2 {
            return Err(RoutingError::TooFewUsers { got: users.len() });
        }
        let mut best: Option<Solution> = None;
        for center in net.graph().node_ids() {
            if let Some(sol) = self.try_center(net, center) {
                if best.as_ref().is_none_or(|b| sol.rate > b.rate) {
                    best = Some(sol);
                }
            }
        }
        best.ok_or(RoutingError::NoFusionCenter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::solver::validate_solution;
    use qnet_graph::Graph;

    fn star(qubits: u32, users: usize) -> (QuantumNetwork, Vec<NodeId>, NodeId) {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let us: Vec<NodeId> = (0..users).map(|_| g.add_node(NodeKind::User)).collect();
        let hub = g.add_node(NodeKind::Switch { qubits });
        for &u in &us {
            g.add_edge(u, hub, 1000.0);
        }
        (
            QuantumNetwork::from_graph(g, PhysicsParams::paper_default()),
            us,
            hub,
        )
    }

    #[test]
    fn fusion_star_on_hub() {
        let (net, users, hub) = star(4, 3);
        let sol = NFusion::default().solve(&net).unwrap();
        let SolutionStyle::FusionStar { center, .. } = sol.style else {
            panic!("expected a fusion star");
        };
        assert_eq!(center, hub);
        assert_eq!(sol.channels.len(), 3);
        validate_solution(&net, &sol).unwrap();
        // Rate = p³ (three 1-link paths, no interior swaps) × q².
        let p = (-0.1f64).exp();
        let expected = p.powi(3) * 0.9f64.powi(users.len() as i32 - 1);
        assert!((sol.rate.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn hub_capacity_gates_fusion() {
        // 3 users need 3 qubits at the hub; 2 are not enough and there
        // is no user-centered alternative (users interconnect only
        // through the hub, which cannot both hold and relay).
        let (net, _users, _hub) = star(2, 3);
        assert_eq!(
            NFusion::default().solve(&net).unwrap_err(),
            RoutingError::NoFusionCenter
        );
    }

    #[test]
    fn user_center_when_switches_are_weak() {
        // Users a,b,c; b has direct fibers to a and c; tiny switch
        // elsewhere. Center = b (a user) works: two incoming paths.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        let c = g.add_node(NodeKind::User);
        g.add_edge(a, b, 1000.0);
        g.add_edge(b, c, 1000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let sol = NFusion::default().solve(&net).unwrap();
        let SolutionStyle::FusionStar { center, .. } = sol.style else {
            panic!()
        };
        assert_eq!(center, b);
        assert_eq!(sol.channels.len(), 2);
        validate_solution(&net, &sol).unwrap();
    }

    #[test]
    fn power_law_fusion_model() {
        assert!((FusionSuccess::PowerLaw.rate(0.9, 2).value() - 0.9).abs() < 1e-12);
        assert!((FusionSuccess::PowerLaw.rate(0.9, 4).value() - 0.9f64.powi(3)).abs() < 1e-12);
        assert!((FusionSuccess::Fixed(0.5).rate(0.9, 10).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fusion_loses_to_bsm_tree_on_paper_default() {
        // The headline comparison: across seeds, N-FUSION must usually
        // lose to the proposed algorithms (Fig. 5).
        use crate::algorithms::ConflictFree;
        use crate::solver::RoutingAlgorithm as _;
        let mut fusion_wins = 0;
        let mut both = 0;
        for seed in 0..20 {
            let net = NetworkSpec::paper_default().build(seed);
            if let (Ok(f), Ok(t)) = (
                NFusion::default().solve(&net),
                ConflictFree::default().solve(&net),
            ) {
                both += 1;
                if f.rate > t.rate {
                    fusion_wins += 1;
                }
            }
        }
        assert!(
            fusion_wins * 4 <= both.max(1),
            "fusion won {fusion_wins}/{both}"
        );
    }

    #[test]
    fn validates_on_paper_default() {
        for seed in 0..10 {
            let net = NetworkSpec::paper_default().build(seed);
            if let Ok(sol) = NFusion::default().solve(&net) {
                validate_solution(&net, &sol)
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid: {e}"));
            }
        }
    }
}
