//! The **E-Q-CAST** baseline (paper §V-A).
//!
//! Q-CAST (Shi & Qian, SIGCOMM 2020) routes entanglement for *pairs* of
//! users. The paper extends it to the multi-user setting by adding pair
//! channels along a chain — "we establish entanglement channels
//! `<u₁,u₂>, <u₂,u₃>, <u₃,u₄>` to entangle `{u₁, u₂, u₃, u₄}`" — which is
//! an entanglement tree whose shape is fixed to a path, rather than chosen
//! by the optimizer.
//!
//! Each consecutive pair is routed sequentially with the best available
//! channel on residual capacity (we grant the baseline our Algorithm-1
//! routing, strictly stronger than Q-CAST's original hop-based `EXT`
//! metric, so the comparison isolates the *tree-shape* decision — this is
//! the generous-baseline reading of the paper's setup). Any unroutable
//! pair makes the whole entanglement fail (rate 0).

use crate::channel::CapacityMap;
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;

use crate::algorithms::channel_finder::max_rate_channel;

/// The extended Q-CAST baseline: a chain-shaped entanglement tree over
/// the users in their listed order.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
///
/// let net = NetworkSpec::paper_default().build(2);
/// if let Ok(sol) = EQCast::default().solve(&net) {
///     // Chain shape: |U| − 1 channels, each joining consecutive users.
///     assert_eq!(sol.channels.len(), net.user_count() - 1);
/// }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EQCast;

impl RoutingAlgorithm for EQCast {
    fn name(&self) -> &'static str {
        "E-Q-CAST"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let _span = qnet_obs::span!("core.e_q_cast.solve");
        qnet_obs::counter!("core.e_q_cast.solves");
        let users = net.users();
        if users.len() < 2 {
            return Err(RoutingError::TooFewUsers { got: users.len() });
        }
        let mut capacity = CapacityMap::new(net);
        let mut tree = EntanglementTree::new();
        for pair in users.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let Some(c) = max_rate_channel(net, &capacity, a, b) else {
                return Err(RoutingError::NoFeasibleChannel { a, b });
            };
            capacity.reserve(&c);
            tree.push(c);
        }
        Ok(Solution::from_tree(tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ConflictFree, OptimalSufficient};
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::solver::validate_solution;
    use qnet_graph::Graph;

    #[test]
    fn chain_shape_and_validity() {
        for seed in 0..10 {
            let net = NetworkSpec::paper_default().build(seed);
            if let Ok(sol) = EQCast.solve(&net) {
                validate_solution(&net, &sol)
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid: {e}"));
                let users = net.users();
                for (i, c) in sol.channels.iter().enumerate() {
                    let want = if users[i] <= users[i + 1] {
                        (users[i], users[i + 1])
                    } else {
                        (users[i + 1], users[i])
                    };
                    assert_eq!(c.user_pair(), want, "chain order broken");
                }
            }
        }
    }

    #[test]
    fn chain_is_dominated_by_free_tree_shape() {
        // Statistically, over several seeds, the optimizing algorithms
        // must do at least as well as the forced chain (they may tie on
        // easy instances).
        let mut chain_worse = 0;
        let mut total = 0;
        for seed in 0..20 {
            let net = NetworkSpec::paper_default().build(seed);
            let (Ok(qcast), Ok(alg3)) = (EQCast.solve(&net), ConflictFree::default().solve(&net))
            else {
                continue;
            };
            total += 1;
            // Alg-3 is not a strict upper bound on E-Q-CAST instance-wise
            // (both are heuristics), but the unconstrained Alg-2 bound is.
            let bound = OptimalSufficient.solve(&net).unwrap();
            assert!(qcast.rate.value() <= bound.rate.value() * (1.0 + 1e-9));
            if qcast.rate < alg3.rate {
                chain_worse += 1;
            }
        }
        assert!(total > 0);
        assert!(
            chain_worse * 2 >= total,
            "chain should usually lose: {chain_worse}/{total}"
        );
    }

    #[test]
    fn star_topology_defeats_the_chain() {
        // A hub with 4 qubits and 3 users: a star tree fits (4 qubits =
        // 2 channels), and so does a chain (a–b, b–c also needs 2
        // channels through the hub). Shrink to 3 users with a 2-qubit
        // hub plus direct a–b fiber: the chain a–b (direct), b–c (hub)
        // works, but chain a–c forced through… exercise both paths.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        let c = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(a, b, 1500.0);
        g.add_edge(a, hub, 1000.0);
        g.add_edge(b, hub, 1000.0);
        g.add_edge(c, hub, 1000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let sol = EQCast.solve(&net).unwrap();
        validate_solution(&net, &sol).unwrap();
        assert_eq!(sol.channels.len(), 2);
    }

    #[test]
    fn fails_when_chain_pair_unroutable() {
        // a–b connected, c reachable only through a *user* → chain a,b,c
        // fails at <b,c>.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        let c = g.add_node(NodeKind::User);
        g.add_edge(a, b, 100.0);
        g.add_edge(a, c, 100.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        // Chain order is users() order = [a, b, c]: needs b–c, which would
        // have to relay through user a — impossible.
        let err = EQCast.solve(&net).unwrap_err();
        assert!(matches!(err, RoutingError::NoFeasibleChannel { .. }));
    }

    #[test]
    fn deterministic() {
        let net = NetworkSpec::paper_default().build(13);
        assert_eq!(EQCast.solve(&net), EQCast.solve(&net));
    }
}
