//! Comparison baselines from §V-A of the paper.
//!
//! * [`EQCast`] — "Extended Q-CAST": the two-user routing algorithm of
//!   Shi & Qian (SIGCOMM 2020), extended to multi-user by chaining pair
//!   channels `<u₁,u₂>, <u₂,u₃>, …` exactly as the paper describes.
//! * [`NFusion`] — the MP-P protocol of Sutcliffe & Beghelli with limited
//!   switch capacity: a star of user-to-center paths fused into a GHZ
//!   state by one n-fusion measurement.

mod e_q_cast;
mod n_fusion;

pub use e_q_cast::EQCast;
pub use n_fusion::{FusionSuccess, NFusion};
