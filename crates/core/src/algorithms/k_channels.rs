//! k-best quantum channels between a user pair.
//!
//! Algorithm 1 returns *the* maximum-rate channel; the local-search
//! extension ([`super::local_search`]) needs ranked alternatives so a
//! capacity conflict can be resolved by "second-best here, best there".
//! This is Yen's algorithm under the MUERP edge cost and relay filter.

use qnet_graph::ksp::{k_shortest_paths_in, k_shortest_paths_pooled_in};
use qnet_graph::paths::{DijkstraConfig, DijkstraWorkspace};
use qnet_graph::{CsrGraph, EdgeRef, NodeId};
use qnet_pool::Pool;

use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;

/// Below this vertex count a pooled Yen run is all coordination and no
/// work (spur searches finish in microseconds), so
/// [`k_best_channels_pooled_in`] callers typically drop to a sequential
/// pool for smaller graphs. Parallel and sequential runs return bitwise
/// identical channels either way — the threshold is purely a
/// wall-clock heuristic, so flipping it never changes solver output.
pub const YEN_POOL_MIN_NODES: usize = 512;

/// The `k` highest-rate channels between users `a` and `b` under the
/// residual `capacity`, sorted by rate descending. Fewer are returned
/// when fewer admissible simple channels exist.
///
/// Allocates a private search workspace; callers in a loop should hold a
/// [`DijkstraWorkspace`] and use [`k_best_channels_in`].
pub fn k_best_channels(
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
    k: usize,
) -> Vec<Channel> {
    let mut ws = DijkstraWorkspace::new();
    k_best_channels_in(&mut ws, net, capacity, a, b, k)
}

/// [`k_best_channels`] on a caller-provided workspace: every spur search
/// of the underlying Yen run reuses the same buffers.
pub fn k_best_channels_in(
    ws: &mut DijkstraWorkspace,
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
    k: usize,
) -> Vec<Channel> {
    let q = net.physics().swap_success;
    if q <= 0.0 {
        // Only a direct fiber can work; delegate to the single-channel
        // finder which handles this degenerate case.
        return super::channel_finder::max_rate_channel(net, capacity, a, b)
            .into_iter()
            .collect();
    }
    let alpha = net.physics().attenuation;
    let neg_ln_q = -(q.ln());
    let cfg = DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: |v: NodeId| net.kind(v).is_switch() && capacity.can_relay(v),
    };
    let paths = k_shortest_paths_in(ws, net.graph(), a, b, k, &cfg);
    finish_k_best(net, capacity, a, b, paths)
}

/// [`k_best_channels_in`] with the spur searches of each Yen round
/// fanned out over `pool`, traversing the prebuilt CSR adjacency.
///
/// Returns exactly what [`k_best_channels_in`] returns — the pooled Yen
/// core merges speculative spur results in the sequential order, so the
/// channel list is bitwise identical at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn k_best_channels_pooled_in(
    pool: &Pool,
    ws: &mut DijkstraWorkspace,
    csr: &CsrGraph,
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
    k: usize,
) -> Vec<Channel> {
    let q = net.physics().swap_success;
    if q <= 0.0 {
        return super::channel_finder::max_rate_channel(net, capacity, a, b)
            .into_iter()
            .collect();
    }
    let alpha = net.physics().attenuation;
    let neg_ln_q = -(q.ln());
    let cfg = DijkstraConfig {
        edge_cost: move |e: EdgeRef<'_, f64>| alpha * *e.payload + neg_ln_q,
        can_relay: |v: NodeId| net.kind(v).is_switch() && capacity.can_relay(v),
    };
    let paths = k_shortest_paths_pooled_in(pool, ws, csr, net.graph(), a, b, k, &cfg);
    finish_k_best(net, capacity, a, b, paths)
}

fn finish_k_best(
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
    paths: Vec<qnet_graph::Path>,
) -> Vec<Channel> {
    let channels: Vec<Channel> = paths
        .into_iter()
        .map(|p| Channel::from_path(net, p))
        .collect();
    if qnet_obs::trace_enabled() {
        let epoch = capacity.epoch();
        if channels.is_empty() {
            qnet_obs::record_event(qnet_obs::TraceEvent::Candidate {
                source: a.index() as u32,
                destination: b.index() as u32,
                accepted: false,
                reason: "disconnected",
                cost: 0.0,
                epoch,
            });
        }
        for channel in &channels {
            qnet_obs::record_event(qnet_obs::TraceEvent::Candidate {
                source: a.index() as u32,
                destination: b.index() as u32,
                accepted: true,
                reason: "ksp",
                cost: channel.rate.value(),
                epoch,
            });
        }
    }
    channels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::max_rate_channel;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use qnet_graph::Graph;

    #[test]
    fn first_of_k_matches_algorithm_1() {
        let net = NetworkSpec::paper_default().build(77);
        let cap = CapacityMap::new(&net);
        let users = net.users();
        for &dst in &users[1..4] {
            let best = max_rate_channel(&net, &cap, users[0], dst);
            let top = k_best_channels(&net, &cap, users[0], dst, 3);
            match (best, top.first()) {
                (Some(a), Some(b)) => {
                    assert!((a.rate.value() - b.rate.value()).abs() < 1e-12)
                }
                (None, None) => {}
                other => panic!("disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn channels_are_sorted_and_valid() {
        let net = NetworkSpec::paper_default().build(78);
        let cap = CapacityMap::new(&net);
        let users = net.users();
        let channels = k_best_channels(&net, &cap, users[0], users[1], 5);
        for w in channels.windows(2) {
            assert!(w[0].rate >= w[1].rate);
        }
        for c in &channels {
            c.validate(&net).unwrap();
        }
    }

    #[test]
    fn enumerates_both_routes_of_a_diamond() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 2 });
        let s2 = g.add_node(NodeKind::Switch { qubits: 2 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s1, 500.0);
        g.add_edge(s1, b, 500.0);
        g.add_edge(a, s2, 800.0);
        g.add_edge(s2, b, 800.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let cap = CapacityMap::new(&net);
        let channels = k_best_channels(&net, &cap, a, b, 5);
        assert_eq!(channels.len(), 2);
        assert_eq!(channels[0].interior_switches(), &[s1]);
        assert_eq!(channels[1].interior_switches(), &[s2]);
    }

    #[test]
    fn exhausted_switches_disappear_from_alternatives() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s1 = g.add_node(NodeKind::Switch { qubits: 2 });
        let s2 = g.add_node(NodeKind::Switch { qubits: 2 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s1, 500.0);
        g.add_edge(s1, b, 500.0);
        g.add_edge(a, s2, 800.0);
        g.add_edge(s2, b, 800.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let mut cap = CapacityMap::new(&net);
        let channels = k_best_channels(&net, &cap, a, b, 5);
        cap.reserve(&channels[0]); // exhaust s1
        let remaining = k_best_channels(&net, &cap, a, b, 5);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].interior_switches(), &[s2]);
    }
}
