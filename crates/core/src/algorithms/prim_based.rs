//! **Algorithm 4** — the Prim-based heuristic (paper §IV-D).
//!
//! Unlike Algorithm 3, no precomputed channel set is needed: the tree is
//! grown directly. Starting from a seed user, `U₁ = {u₀}`,
//! `U₂ = U \ {u₀}`, each of the `|U| − 1` rounds finds the maximum-rate
//! channel on residual capacity between any `u ∈ U₁` and `w ∈ U₂`,
//! reserves its qubits, and moves `w` into `U₁`. Channels through
//! switches without 2 free qubits are excluded by construction.

use qnet_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;

use super::channel_finder::ChannelFinderCache;

/// How Algorithm 4 picks its seed user `u₀`.
///
/// The paper picks uniformly at random; the extra strategies exist for
/// the seed-sensitivity ablation bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedChoice {
    /// The first user in the network's user list (deterministic default).
    #[default]
    FirstUser,
    /// The user at `seed % |U|` — the paper's "randomly pick u₀" with an
    /// explicit, reproducible seed.
    Random(u64),
    /// Run once per possible seed user and keep the best tree
    /// (`|U|×` the cost; ablation only).
    BestOfAll,
}

/// The paper's **Algorithm 4**.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
///
/// let net = NetworkSpec::paper_default().build(1);
/// if let Ok(sol) = PrimBased::default().solve(&net) {
///     assert_eq!(sol.channels.len(), net.user_count() - 1);
///     validate_solution(&net, &sol)?;
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrimBased {
    /// Seed-user strategy.
    pub seed: SeedChoice,
}

impl PrimBased {
    /// Algorithm 4 with the paper's random seed user, reproducible from
    /// `seed`.
    pub fn with_seed(seed: u64) -> Self {
        PrimBased {
            seed: SeedChoice::Random(seed),
        }
    }

    fn solve_from(&self, net: &QuantumNetwork, u0: NodeId) -> Result<Solution, RoutingError> {
        let _span = qnet_obs::span!("core.prim_based.solve");
        qnet_obs::counter!("core.prim_based.solves");
        let users = net.users();
        let mut capacity = CapacityMap::new(net);
        let mut in_tree = vec![false; net.graph().node_count()];
        in_tree[u0.index()] = true;
        let mut tree = EntanglementTree::new();
        // Sources repeat across rounds; the cache re-runs a source's
        // search only after a reservation actually changed capacity.
        let mut cache = ChannelFinderCache::new(net);

        for round in 1..users.len() {
            let _round_span = qnet_obs::span!("core.prim_based.round");
            qnet_obs::counter!("core.prim_based.rounds");
            // Batch-refresh every in-tree source first: the stale runs
            // execute concurrently on the cache's pool (Algorithm 1 as a
            // multi-source batch), then the per-pair scan below is all
            // cache hits.
            let sources: Vec<NodeId> = users
                .iter()
                .copied()
                .filter(|u| in_tree[u.index()])
                .collect();
            cache.warm(&capacity, &sources);
            let mut best: Option<Channel> = None;
            for &src in &sources {
                let finder = cache.finder(&capacity, src);
                for &dst in users.iter().filter(|u| !in_tree[u.index()]) {
                    if let Some(c) = finder.channel_to(dst) {
                        if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                            best = Some(c);
                        }
                    }
                }
            }
            let Some(c) = best else {
                let stranded = users
                    .iter()
                    .copied()
                    .find(|u| !in_tree[u.index()])
                    .expect("round runs only while U₂ is non-empty");
                return Err(RoutingError::NoFeasibleChannel { a: u0, b: stranded });
            };
            if qnet_obs::trace_enabled() {
                qnet_obs::record_event(qnet_obs::TraceEvent::TreeStep {
                    algo: "alg4",
                    round: round as u32,
                    source: c.source().index() as u32,
                    destination: c.destination().index() as u32,
                    rate: c.rate.value(),
                    epoch: capacity.epoch(),
                });
            }
            capacity.reserve(&c);
            // The destination is whichever endpoint was still in U₂.
            let newcomer = if in_tree[c.source().index()] {
                c.destination()
            } else {
                c.source()
            };
            in_tree[newcomer.index()] = true;
            tree.push(c);
        }
        Ok(Solution::from_tree(tree))
    }
}

impl RoutingAlgorithm for PrimBased {
    fn name(&self) -> &'static str {
        "Alg-4"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let users = net.users();
        if users.len() < 2 {
            return Err(RoutingError::TooFewUsers { got: users.len() });
        }
        match self.seed {
            SeedChoice::FirstUser => self.solve_from(net, users[0]),
            SeedChoice::Random(seed) => {
                let u0 = users[(seed % users.len() as u64) as usize];
                self.solve_from(net, u0)
            }
            SeedChoice::BestOfAll => {
                let mut best: Option<Solution> = None;
                for &u0 in users {
                    if let Ok(sol) = self.solve_from(net, u0) {
                        if best.as_ref().is_none_or(|b| sol.rate > b.rate) {
                            best = Some(sol);
                        }
                    }
                }
                best.ok_or(RoutingError::NoFeasibleChannel {
                    a: users[0],
                    b: users[1],
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::OptimalSufficient;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::solver::validate_solution;
    use qnet_graph::Graph;

    #[test]
    fn solutions_validate_on_paper_default() {
        for seed in 0..10 {
            let net = NetworkSpec::paper_default().build(seed);
            if let Ok(sol) = PrimBased::default().solve(&net) {
                validate_solution(&net, &sol)
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid: {e}"));
                assert_eq!(sol.channels.len(), net.user_count() - 1);
            }
        }
    }

    #[test]
    fn respects_capacity_by_construction() {
        // One 2-qubit hub and a detour: Prim must route around the hub
        // for the second channel.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        let c = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        let detour = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(a, hub, 1000.0);
        g.add_edge(b, hub, 1000.0);
        g.add_edge(c, hub, 1000.0);
        g.add_edge(b, detour, 2000.0);
        g.add_edge(detour, c, 2000.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let sol = PrimBased::default().solve(&net).unwrap();
        validate_solution(&net, &sol).unwrap();
        assert_eq!(sol.channels.len(), 2);
    }

    #[test]
    fn never_beats_the_unconstrained_bound() {
        for seed in 0..10 {
            let net = NetworkSpec::paper_default().build(seed);
            let bound = OptimalSufficient.solve(&net).map(|s| s.rate);
            if let (Ok(sol), Ok(bound)) = (PrimBased::default().solve(&net), bound) {
                assert!(
                    sol.rate.value() <= bound.value() * (1.0 + 1e-9),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn matches_alg2_under_sufficient_capacity_on_small_instances() {
        // With ample capacity Prim on channel rates is Prim's MST = the
        // same weight as Kruskal's (Algorithm 2) when pairwise best
        // channels don't interact — exact agreement is not guaranteed in
        // general (Prim picks from the grown side only), but the rate
        // must match the MST rate on instances with unique channel costs.
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = 2 * spec.users as u32;
        for seed in 0..5 {
            let net = spec.build(seed);
            let a2 = OptimalSufficient.solve(&net).unwrap();
            let a4 = PrimBased::default().solve(&net).unwrap();
            let ratio = a4.rate.ratio(a2.rate);
            assert!(
                (0.999..=1.0 + 1e-9).contains(&ratio),
                "seed {seed}: prim {} vs kruskal {} (ratio {ratio})",
                a4.rate,
                a2.rate
            );
        }
    }

    #[test]
    fn seed_strategies() {
        let net = NetworkSpec::paper_default().build(5);
        let first = PrimBased::default().solve(&net);
        let random = PrimBased::with_seed(3).solve(&net);
        let best = PrimBased {
            seed: SeedChoice::BestOfAll,
        }
        .solve(&net);
        // BestOfAll dominates any fixed seed.
        if let (Ok(f), Ok(b)) = (&first, &best) {
            assert!(b.rate >= f.rate);
        }
        if let (Ok(r), Ok(b)) = (&random, &best) {
            assert!(b.rate >= r.rate);
        }
    }

    #[test]
    fn too_few_users() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        g.add_node(NodeKind::User);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        assert_eq!(
            PrimBased::default().solve(&net).unwrap_err(),
            RoutingError::TooFewUsers { got: 1 }
        );
    }

    #[test]
    fn stranded_user_is_reported() {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let b = g.add_node(NodeKind::User);
        let c = g.add_node(NodeKind::User);
        g.add_edge(a, b, 100.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let err = PrimBased::default().solve(&net).unwrap_err();
        assert!(matches!(err, RoutingError::NoFeasibleChannel { b: s, .. } if s == c));
    }
}
