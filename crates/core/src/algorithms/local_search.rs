//! Local-search refinement of entanglement trees — an optimization pass
//! beyond the paper's greedy heuristics.
//!
//! The greedy Algorithms 3/4 can be trapped: grabbing the single best
//! channel may exhaust a contended switch and force a terrible channel
//! elsewhere (the NP-hardness in action; `tests/hardness_witness.rs`
//! exhibits a concrete instance). This pass performs *exchange moves*:
//!
//! * **1-moves**: remove one tree channel, re-route that user-pair cut
//!   optimally over the freed capacity;
//! * **2-moves**: remove a *pair* of channels, splitting the users into
//!   up to three components, then re-solve the 2-channel reconnection
//!   exactly — enumerating every spanning shape over the components with
//!   the k best candidate channels per component pair under shared
//!   capacity. 2-moves fix the traps 1-moves cannot (both channels must
//!   change simultaneously).
//!
//! The rate never decreases and the loop terminates (each accepted move
//! strictly improves the product, which is bounded above). This realizes
//! the paper's closing suggestion that its algorithms "can serve as a
//! foundation" for refined designs.

use std::collections::HashSet;

use qnet_graph::{CsrGraph, DijkstraWorkspace, NodeId, UnionFind};
use qnet_pool::Pool;
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::solver::{RoutingAlgorithm, Solution, SolutionStyle};
use crate::tree::EntanglementTree;

use super::k_channels::{k_best_channels_pooled_in, YEN_POOL_MIN_NODES};

/// Shared search state for every k-best-channels query of a refine run:
/// one reusable Dijkstra workspace, the CSR adjacency snapshot, and the
/// worker pool the Yen spur searches fan out on.
struct SearchCtx {
    ws: DijkstraWorkspace,
    csr: CsrGraph,
    pool: Pool,
}

impl SearchCtx {
    fn new(net: &QuantumNetwork) -> Self {
        let n = net.graph().node_count();
        SearchCtx {
            ws: DijkstraWorkspace::with_capacity(n),
            csr: CsrGraph::from_graph(net.graph()),
            // Spur searches on small graphs finish faster than a task
            // hand-off; keep those sequential. Output is identical either
            // way (the pooled Yen merge is order-deterministic).
            pool: if n >= YEN_POOL_MIN_NODES {
                Pool::from_env()
            } else {
                Pool::with_threads(1)
            },
        }
    }

    fn k_best(
        &mut self,
        net: &QuantumNetwork,
        capacity: &CapacityMap,
        a: NodeId,
        b: NodeId,
        k: usize,
    ) -> Vec<Channel> {
        k_best_channels_pooled_in(&self.pool, &mut self.ws, &self.csr, net, capacity, a, b, k)
    }
}

/// Local-search configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalSearchOptions {
    /// Alternative channels considered per user pair in a move.
    pub k_candidates: usize,
    /// Maximum improvement rounds (each round scans all moves once).
    pub max_rounds: usize,
    /// Enable the quadratic 2-moves (pairs of channels re-solved jointly).
    pub pair_moves: bool,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            k_candidates: 3,
            max_rounds: 8,
            pair_moves: true,
        }
    }
}

/// Refines a BSM-tree solution in place; returns the (possibly improved)
/// solution. Non-tree solutions are returned unchanged.
pub fn refine(net: &QuantumNetwork, solution: Solution, options: LocalSearchOptions) -> Solution {
    if solution.style != SolutionStyle::BsmTree {
        return solution;
    }
    let _span = qnet_obs::span!("core.local_search.refine");
    qnet_obs::counter!("core.local_search.refines");
    let mut tree = EntanglementTree {
        channels: solution.channels,
    };
    // One search context (workspace + CSR + pool) serves every
    // k-best-channels query of every move.
    let mut ctx = SearchCtx::new(net);
    for _ in 0..options.max_rounds {
        let _round = qnet_obs::span!("core.local_search.round");
        qnet_obs::counter!("core.local_search.rounds");
        let mut improved = improve_once(net, &mut tree, 1, options.k_candidates, &mut ctx);
        if options.pair_moves {
            improved |= improve_once(net, &mut tree, 2, options.k_candidates, &mut ctx);
        }
        if !improved {
            break;
        }
    }
    Solution::from_tree(tree)
}

/// One scan of all `arity`-moves; `true` when any move improved the tree.
fn improve_once(
    net: &QuantumNetwork,
    tree: &mut EntanglementTree,
    arity: usize,
    k: usize,
    ctx: &mut SearchCtx,
) -> bool {
    let n = tree.channels.len();
    if n < arity {
        return false;
    }
    let mut improved = false;

    // Enumerate index sets of the requested arity (1 or 2).
    let index_sets: Vec<Vec<usize>> = match arity {
        1 => (0..n).map(|i| vec![i]).collect(),
        2 => {
            let mut v = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    v.push(vec![i, j]);
                }
            }
            v
        }
        _ => unreachable!("only 1- and 2-moves are implemented"),
    };

    for removal in index_sets {
        if let Some(better) = try_move(net, tree, &removal, k, ctx) {
            if qnet_obs::trace_enabled() {
                let old_rate: Rate = removal.iter().map(|&i| tree.channels[i].rate).product();
                let new_rate: Rate = better.iter().map(|c| c.rate).product();
                qnet_obs::record_event(qnet_obs::TraceEvent::MoveAccepted {
                    arity: arity as u32,
                    old_rate: old_rate.value(),
                    new_rate: new_rate.value(),
                });
            }
            // Apply: drop the removed channels, add the replacements.
            let removed: HashSet<usize> = removal.iter().copied().collect();
            let mut channels: Vec<Channel> = tree
                .channels
                .iter()
                .enumerate()
                .filter(|(i, _)| !removed.contains(i))
                .map(|(_, c)| c.clone())
                .collect();
            channels.extend(better);
            tree.channels = channels;
            qnet_obs::counter!("core.local_search.moves_accepted");
            improved = true;
        }
    }
    improved
}

/// Attempts to replace the channels at `removal` with a strictly better
/// reconnection; returns the replacement channels on success.
fn try_move(
    net: &QuantumNetwork,
    tree: &EntanglementTree,
    removal: &[usize],
    k: usize,
    ctx: &mut SearchCtx,
) -> Option<Vec<Channel>> {
    let removed: HashSet<usize> = removal.iter().copied().collect();
    let kept: Vec<&Channel> = tree
        .channels
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed.contains(i))
        .map(|(_, c)| c)
        .collect();
    let old_rate: Rate = removal.iter().map(|&i| tree.channels[i].rate).product();

    // Residual capacity with only the kept channels reserved.
    let mut capacity = CapacityMap::new(net);
    for c in &kept {
        if !capacity.admits(c) {
            return None; // tree wasn't feasible to begin with; bail out
        }
        capacity.reserve(c);
    }

    // Components of the users under the kept channels.
    let users = net.users();
    let mut uf = UnionFind::new(net.graph().node_count());
    for c in &kept {
        uf.union_nodes(c.source(), c.destination());
    }
    let mut comp_of_root: std::collections::HashMap<usize, usize> = Default::default();
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for &u in users {
        let root = uf.find_node(u);
        let idx = *comp_of_root.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[idx].push(u);
    }
    let r = components.len();
    debug_assert_eq!(
        r,
        removal.len() + 1,
        "removing e channels splits into e+1 parts"
    );

    // Candidate channels per component pair: the k best per user pair,
    // merged and truncated.
    let mut pair_candidates: Vec<Vec<Vec<Channel>>> = vec![vec![Vec::new(); r]; r];
    for x in 0..r {
        for y in (x + 1)..r {
            let mut all = Vec::new();
            for &a in &components[x] {
                for &b in &components[y] {
                    all.extend(ctx.k_best(net, &capacity, a, b, k));
                }
            }
            all.sort_by_key(|p| std::cmp::Reverse(p.rate));
            all.truncate(2 * k);
            pair_candidates[x][y] = all;
        }
    }

    // Exactly re-solve the (r−1)-channel reconnection over the component
    // graph: enumerate spanning shapes (r ≤ 3 ⇒ at most 3 shapes) and
    // assign candidates DFS-style under shared capacity.
    let shapes: Vec<Vec<(usize, usize)>> = match r {
        2 => vec![vec![(0, 1)]],
        3 => vec![
            vec![(0, 1), (0, 2)],
            vec![(0, 1), (1, 2)],
            vec![(0, 2), (1, 2)],
        ],
        _ => return None,
    };

    let mut best: Option<(Rate, Vec<Channel>)> = None;
    for shape in shapes {
        assign_shape(
            &pair_candidates,
            &shape,
            0,
            &mut capacity.clone(),
            &mut Vec::new(),
            Rate::ONE,
            &mut best,
        );
    }
    let (new_rate, replacement) = best?;
    // Accept only strict improvement (with a tolerance to avoid cycling).
    if new_rate.value() > old_rate.value() * (1.0 + 1e-12) {
        Some(replacement)
    } else {
        None
    }
}

fn assign_shape(
    candidates: &[Vec<Vec<Channel>>],
    shape: &[(usize, usize)],
    idx: usize,
    capacity: &mut CapacityMap,
    chosen: &mut Vec<Channel>,
    product: Rate,
    best: &mut Option<(Rate, Vec<Channel>)>,
) {
    if idx == shape.len() {
        if best.as_ref().is_none_or(|(r, _)| product > *r) {
            *best = Some((product, chosen.clone()));
        }
        return;
    }
    let (x, y) = shape[idx];
    for c in &candidates[x][y] {
        if !capacity.admits(c) {
            continue;
        }
        capacity.reserve(c);
        chosen.push(c.clone());
        assign_shape(
            candidates,
            shape,
            idx + 1,
            capacity,
            chosen,
            product * c.rate,
            best,
        );
        let c = chosen.pop().expect("just pushed");
        capacity.release(&c);
    }
}

/// A routing algorithm wrapped with local-search refinement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Refined<A> {
    /// The base algorithm producing the initial tree.
    pub inner: A,
    /// Search options.
    pub options: LocalSearchOptions,
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for Refined<A> {
    fn name(&self) -> &'static str {
        "Refined"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let base = self.inner.solve(net)?;
        Ok(refine(net, base, self.options))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ConflictFree, PrimBased};
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::solver::validate_solution;
    use qnet_graph::Graph;

    /// The trap from `tests/hardness_witness.rs`: greedy lands ~0.270,
    /// the optimum is ~0.644 and needs a simultaneous 2-exchange.
    fn trap() -> QuantumNetwork {
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let u1 = g.add_node(NodeKind::User);
        let u2 = g.add_node(NodeKind::User);
        let u3 = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        let d12 = g.add_node(NodeKind::Switch { qubits: 2 });
        let d13 = g.add_node(NodeKind::Switch { qubits: 2 });
        g.add_edge(u1, hub, 500.0);
        g.add_edge(hub, u2, 500.0);
        g.add_edge(hub, u3, 600.0);
        g.add_edge(u1, d12, 600.0);
        g.add_edge(d12, u2, 600.0);
        g.add_edge(u1, d13, 5000.0);
        g.add_edge(d13, u3, 5000.0);
        QuantumNetwork::from_graph(g, PhysicsParams::paper_default())
    }

    #[test]
    fn two_moves_escape_the_greedy_trap() {
        let net = trap();
        let greedy = ConflictFree::default().solve(&net).unwrap();
        let refined = refine(&net, greedy.clone(), LocalSearchOptions::default());
        validate_solution(&net, &refined).unwrap();
        let optimal = 0.9 * (-0.11f64).exp() * 0.9 * (-0.12f64).exp();
        assert!(
            (refined.rate.value() - optimal).abs() < 1e-9,
            "refined {} should reach the optimum {optimal}",
            refined.rate.value()
        );
        assert!(refined.rate > greedy.rate);
    }

    #[test]
    fn one_moves_alone_cannot_escape_it() {
        // Documents *why* 2-moves exist: the trap needs both channels
        // exchanged at once.
        let net = trap();
        let greedy = ConflictFree::default().solve(&net).unwrap();
        let options = LocalSearchOptions {
            pair_moves: false,
            ..LocalSearchOptions::default()
        };
        let refined = refine(&net, greedy.clone(), options);
        assert!(
            (refined.rate.value() - greedy.rate.value()).abs() < 1e-12,
            "1-moves must be stuck on the trap"
        );
    }

    #[test]
    fn never_decreases_and_stays_valid() {
        for seed in 0..8u64 {
            let net = NetworkSpec::paper_default().build(seed);
            for base in [
                ConflictFree::default().solve(&net),
                PrimBased::with_seed(seed).solve(&net),
            ] {
                let Ok(base) = base else { continue };
                let refined = refine(&net, base.clone(), LocalSearchOptions::default());
                validate_solution(&net, &refined).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert!(
                    refined.rate.value() >= base.rate.value() * (1.0 - 1e-12),
                    "seed {seed}: refinement decreased the rate"
                );
            }
        }
    }

    #[test]
    fn refined_wrapper_solves_end_to_end() {
        let net = trap();
        let refined = Refined {
            inner: PrimBased::default(),
            options: LocalSearchOptions::default(),
        }
        .solve(&net)
        .unwrap();
        let plain = PrimBased::default().solve(&net).unwrap();
        assert!(refined.rate >= plain.rate);
        validate_solution(&net, &refined).unwrap();
    }

    #[test]
    fn fusion_solutions_pass_through_unchanged() {
        use crate::algorithms::baselines::NFusion;
        let net = NetworkSpec::paper_default().build(2);
        if let Ok(sol) = NFusion::default().solve(&net) {
            let out = refine(&net, sol.clone(), LocalSearchOptions::default());
            assert_eq!(out, sol);
        }
    }

    #[test]
    fn never_beats_the_exhaustive_oracle() {
        use crate::feasibility::exhaustive_optimal;
        let net = trap();
        let oracle = exhaustive_optimal(&net, 4).unwrap().rate().value();
        let refined = Refined {
            inner: ConflictFree::default(),
            options: LocalSearchOptions::default(),
        }
        .solve(&net)
        .unwrap();
        assert!(refined.rate.value() <= oracle * (1.0 + 1e-9));
    }
}
