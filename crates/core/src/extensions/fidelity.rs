//! Fidelity-aware routing — the paper's first named extension.
//!
//! The base model maximizes the entanglement *rate*; real deployments
//! also need the delivered pairs to be *good* (fidelity above a
//! threshold). Following the standard Werner-state model used by the
//! fidelity-aware literature the paper cites (\[15\], \[18\], \[19\]):
//!
//! * each quantum link delivers a Werner pair with fidelity `F_link`;
//! * swapping two Werner pairs of fidelities `F₁`, `F₂` yields fidelity
//!   `F₁·F₂ + (1−F₁)(1−F₂)/3` ([`werner_swap_fidelity`]);
//! * a channel of `l` links therefore has a fidelity that depends only on
//!   `l` (uniform links), strictly decreasing in `l` — so a fidelity
//!   floor is exactly a *hop bound* on channels
//!   ([`FidelityModel::max_links`]).
//!
//! [`FidelityAwarePrim`] grows the entanglement tree like Algorithm 4 but
//! restricts every channel to the hop bound, using a hop-layered variant
//! of Algorithm 1 (Dijkstra over `(node, hops)` states).

use qnet_graph::paths::Path;
use qnet_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;

/// Fidelity of the Werner pair produced by swapping two Werner pairs of
/// fidelities `f1` and `f2` under a BSM.
///
/// # Example
///
/// ```
/// use muerp_core::extensions::werner_swap_fidelity;
/// let f = werner_swap_fidelity(1.0, 1.0);
/// assert!((f - 1.0).abs() < 1e-12, "perfect pairs swap perfectly");
/// assert!(werner_swap_fidelity(0.9, 0.9) < 0.9, "fidelity decays");
/// ```
pub fn werner_swap_fidelity(f1: f64, f2: f64) -> f64 {
    f1 * f2 + (1.0 - f1) * (1.0 - f2) / 3.0
}

/// The uniform-link Werner fidelity model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FidelityModel {
    /// Fidelity of a fresh link-level Werner pair.
    pub link_fidelity: f64,
    /// Minimum acceptable end-to-end channel fidelity.
    pub min_fidelity: f64,
}

impl FidelityModel {
    /// End-to-end fidelity of a channel of `links` uniform links joined
    /// by BSM swaps.
    ///
    /// # Panics
    ///
    /// Panics if `links == 0`.
    pub fn channel_fidelity(&self, links: usize) -> f64 {
        assert!(links > 0, "a channel has at least one link");
        let mut f = self.link_fidelity;
        for _ in 1..links {
            f = werner_swap_fidelity(f, self.link_fidelity);
        }
        f
    }

    /// The largest channel length (in links) whose fidelity still meets
    /// `min_fidelity`, or `None` when even one link falls short.
    ///
    /// For `link_fidelity > 1/2` the fidelity is strictly decreasing in
    /// length, so this is a simple scan with a hard cap.
    pub fn max_links(&self) -> Option<usize> {
        if self.link_fidelity < self.min_fidelity {
            return None;
        }
        let mut l = 1;
        // Werner fidelity converges to 1/4 from above; cap the scan.
        while l < 64 && self.channel_fidelity(l + 1) >= self.min_fidelity {
            l += 1;
        }
        Some(l)
    }
}

/// Maximum-rate channel between `a` and `b` with at most `max_links`
/// links — the hop-layered Algorithm 1 used by fidelity-aware routing.
///
/// Dynamic program over `(hops, node)`: `cost[h][v]` is the cheapest
/// admissible path of exactly ≤ h links, with the same relay rule as
/// Algorithm 1 (interior = switch with ≥ 2 free qubits).
pub fn max_rate_channel_bounded(
    net: &QuantumNetwork,
    capacity: &CapacityMap,
    a: NodeId,
    b: NodeId,
    max_links: usize,
) -> Option<Channel> {
    let n = net.graph().node_count();
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;
    if q <= 0.0 || a == b {
        return None;
    }
    let neg_ln_q = -(q.ln());
    let edge_cost = |e: EdgeId| alpha * net.length(e) + neg_ln_q;

    const INF: f64 = f64::INFINITY;
    // cost[h][v], prev[h][v] = (prev_node, edge)
    let mut cost = vec![vec![INF; n]; max_links + 1];
    let mut prev: Vec<Vec<Option<(NodeId, EdgeId)>>> = vec![vec![None; n]; max_links + 1];
    cost[0][a.index()] = 0.0;

    for h in 0..max_links {
        for v in net.graph().node_ids() {
            let c = cost[h][v.index()];
            if c.is_infinite() {
                continue;
            }
            // Extend only from the source or a capable switch.
            if v != a && !(net.kind(v).is_switch() && capacity.can_relay(v)) {
                continue;
            }
            for (next, eid) in net.graph().neighbors(v) {
                let cand = c + edge_cost(eid);
                if cand < cost[h + 1][next.index()] {
                    cost[h + 1][next.index()] = cand;
                    prev[h + 1][next.index()] = Some((v, eid));
                }
            }
        }
    }

    // Best arrival layer at b.
    let (best_h, _) = (1..=max_links)
        .map(|h| (h, cost[h][b.index()]))
        .filter(|(_, c)| c.is_finite())
        .min_by(|x, y| x.1.partial_cmp(&y.1).expect("costs are not NaN"))?;

    // Reconstruct. The layered DP may in principle revisit a node across
    // layers; reject non-simple reconstructions (they are never optimal
    // for positive edge costs, but guard anyway).
    let mut nodes = vec![b];
    let mut edges = Vec::new();
    let (mut h, mut cur) = (best_h, b);
    while h > 0 {
        let (p, e) = prev[h][cur.index()].expect("finite cost has a predecessor");
        nodes.push(p);
        edges.push(e);
        cur = p;
        h -= 1;
    }
    debug_assert_eq!(cur, a);
    nodes.reverse();
    edges.reverse();
    let mut seen = std::collections::HashSet::new();
    if !nodes.iter().all(|v| seen.insert(*v)) {
        return None;
    }
    Some(Channel::from_path(
        net,
        Path {
            nodes,
            edges,
            cost: 0.0,
        },
    ))
}

/// Fidelity-aware Prim-based routing: Algorithm 4 with every channel
/// restricted to the hop bound implied by the fidelity floor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FidelityAwarePrim {
    /// The Werner fidelity model supplying the hop bound.
    pub model: FidelityModel,
}

impl RoutingAlgorithm for FidelityAwarePrim {
    fn name(&self) -> &'static str {
        "Alg-4-Fid"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let users = net.users();
        if users.len() < 2 {
            return Err(RoutingError::TooFewUsers { got: users.len() });
        }
        let Some(max_links) = self.model.max_links() else {
            return Err(RoutingError::NoFeasibleChannel {
                a: users[0],
                b: users[1],
            });
        };
        let mut capacity = CapacityMap::new(net);
        let mut in_tree = vec![false; net.graph().node_count()];
        in_tree[users[0].index()] = true;
        let mut tree = EntanglementTree::new();
        for _ in 1..users.len() {
            let mut best: Option<Channel> = None;
            for &src in users.iter().filter(|u| in_tree[u.index()]) {
                for &dst in users.iter().filter(|u| !in_tree[u.index()]) {
                    if let Some(c) = max_rate_channel_bounded(net, &capacity, src, dst, max_links) {
                        if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                            best = Some(c);
                        }
                    }
                }
            }
            let Some(c) = best else {
                let stranded = users
                    .iter()
                    .copied()
                    .find(|u| !in_tree[u.index()])
                    .expect("some user remains");
                return Err(RoutingError::NoFeasibleChannel {
                    a: users[0],
                    b: stranded,
                });
            };
            capacity.reserve(&c);
            let newcomer = if in_tree[c.source().index()] {
                c.destination()
            } else {
                c.source()
            };
            in_tree[newcomer.index()] = true;
            tree.push(c);
        }
        Ok(Solution::from_tree(tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PrimBased;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams};
    use crate::solver::validate_solution;
    use qnet_graph::Graph;

    #[test]
    fn werner_swap_basics() {
        assert!((werner_swap_fidelity(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Two maximally mixed pairs (F = 1/4) stay near 1/4.
        let f = werner_swap_fidelity(0.25, 0.25);
        assert!((f - 0.25).abs() < 1e-12);
        // Monotone in each argument above the fixed point.
        assert!(werner_swap_fidelity(0.95, 0.9) > werner_swap_fidelity(0.9, 0.9));
    }

    #[test]
    fn channel_fidelity_decreases_with_length() {
        let m = FidelityModel {
            link_fidelity: 0.95,
            min_fidelity: 0.8,
        };
        let mut last = 1.0;
        for l in 1..10 {
            let f = m.channel_fidelity(l);
            assert!(f < last || l == 1);
            last = f;
        }
    }

    #[test]
    fn max_links_matches_threshold() {
        let m = FidelityModel {
            link_fidelity: 0.95,
            min_fidelity: 0.85,
        };
        let l = m.max_links().unwrap();
        assert!(m.channel_fidelity(l) >= 0.85);
        assert!(m.channel_fidelity(l + 1) < 0.85);
        // Impossible floor.
        let impossible = FidelityModel {
            link_fidelity: 0.7,
            min_fidelity: 0.9,
        };
        assert_eq!(impossible.max_links(), None);
    }

    #[test]
    fn bounded_channel_respects_hop_limit() {
        // Line of 3 switches between two users: only route has 4 links.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s: Vec<NodeId> = (0..3)
            .map(|_| g.add_node(NodeKind::Switch { qubits: 4 }))
            .collect();
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s[0], 500.0);
        g.add_edge(s[0], s[1], 500.0);
        g.add_edge(s[1], s[2], 500.0);
        g.add_edge(s[2], b, 500.0);
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let cap = CapacityMap::new(&net);
        assert!(max_rate_channel_bounded(&net, &cap, a, b, 3).is_none());
        let c = max_rate_channel_bounded(&net, &cap, a, b, 4).unwrap();
        assert_eq!(c.link_count(), 4);
        assert!(c.validate(&net).is_ok());
    }

    #[test]
    fn bounded_matches_unbounded_when_loose() {
        let net = NetworkSpec::paper_default().build(6);
        let cap = CapacityMap::new(&net);
        let users = net.users();
        let unbounded = crate::algorithms::max_rate_channel(&net, &cap, users[0], users[1]);
        let bounded = max_rate_channel_bounded(&net, &cap, users[0], users[1], 60);
        match (unbounded, bounded) {
            (Some(u), Some(b)) => {
                assert!((u.rate.value() - b.rate.value()).abs() < 1e-9 * u.rate.value())
            }
            (None, None) => {}
            other => panic!("disagreement: {other:?}"),
        }
    }

    #[test]
    fn fidelity_floor_shrinks_or_preserves_rate() {
        let model = FidelityModel {
            link_fidelity: 0.99,
            min_fidelity: 0.93,
        };
        let mut wins = 0usize;
        let mut total = 0usize;
        for seed in 0..5 {
            let net = NetworkSpec::paper_default().build(seed);
            let free = PrimBased::default().solve(&net);
            let tight = FidelityAwarePrim { model }.solve(&net);
            if let (Ok(f), Ok(t)) = (free, tight) {
                validate_solution(&net, &t).unwrap();
                // Both are greedy heuristics, so the constrained run can
                // occasionally luck into a better tree; statistically it
                // must not win more often than it loses/ties.
                total += 1;
                if t.rate.value() > f.rate.value() * (1.0 + 1e-9) {
                    wins += 1;
                }
                // Every channel honors the hop bound — the hard invariant.
                let bound = model.max_links().unwrap();
                for c in &t.channels {
                    assert!(c.link_count() <= bound);
                }
            }
        }
        assert!(wins * 2 <= total, "constrained won {wins}/{total}");
    }
}
