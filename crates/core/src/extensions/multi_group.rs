//! Concurrent routing of multiple independent entanglement groups — the
//! paper's second named extension (§II-D: "concurrent routing of multiple
//! independent entanglement groups").
//!
//! Several disjoint user sets want to be internally entangled at the same
//! time, sharing the switches' qubits. Two strategies:
//!
//! * [`GroupStrategy::Sequential`] — groups are routed one after another
//!   in priority order (earlier groups see more capacity).
//! * [`GroupStrategy::RoundRobin`] — groups grow their trees one channel
//!   at a time in turn, sharing capacity more evenly (a fairness knob).
//!
//! Both grow each group's tree Prim-style (Algorithm 4) over the shared
//! [`CapacityMap`]; members of *any* group are users and therefore never
//! relay foreign channels.

use qnet_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::tree::EntanglementTree;

use crate::algorithms::ChannelFinderCache;

/// Scheduling strategy across groups.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupStrategy {
    /// Route groups one at a time, in the given order.
    #[default]
    Sequential,
    /// Interleave: each round, every unfinished group adds one channel.
    RoundRobin,
}

/// The result for one group.
#[derive(Clone, Debug)]
pub struct GroupOutcome {
    /// The group's members, as passed in.
    pub members: Vec<NodeId>,
    /// The routed tree, or the error that stopped it (scored rate 0).
    pub tree: Result<EntanglementTree, RoutingError>,
}

impl GroupOutcome {
    /// The group's entanglement rate ([`Rate::ZERO`] on failure).
    pub fn rate(&self) -> Rate {
        self.tree.as_ref().map_or(Rate::ZERO, |t| t.rate())
    }
}

/// Per-group Prim state.
struct GroupState {
    members: Vec<NodeId>,
    in_tree: Vec<bool>, // indexed by graph node id
    tree: EntanglementTree,
    failed: Option<RoutingError>,
}

impl GroupState {
    fn new(net: &QuantumNetwork, members: &[NodeId]) -> Self {
        let mut in_tree = vec![false; net.graph().node_count()];
        in_tree[members[0].index()] = true;
        GroupState {
            members: members.to_vec(),
            in_tree,
            tree: EntanglementTree::new(),
            failed: None,
        }
    }

    fn done(&self) -> bool {
        self.failed.is_some() || self.tree.channels.len() + 1 == self.members.len()
    }

    /// Adds the best cross channel for this group on shared capacity;
    /// marks the group failed when none exists.
    fn grow_once(&mut self, capacity: &mut CapacityMap, cache: &mut ChannelFinderCache<'_>) {
        debug_assert!(!self.done());
        let mut best: Option<Channel> = None;
        for &src in self.members.iter().filter(|u| self.in_tree[u.index()]) {
            let finder = cache.finder(capacity, src);
            for &dst in self.members.iter().filter(|u| !self.in_tree[u.index()]) {
                if let Some(c) = finder.channel_to(dst) {
                    if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                        best = Some(c);
                    }
                }
            }
        }
        match best {
            Some(c) => {
                capacity.reserve(&c);
                let newcomer = if self.in_tree[c.source().index()] {
                    c.destination()
                } else {
                    c.source()
                };
                self.in_tree[newcomer.index()] = true;
                self.tree.push(c);
            }
            None => {
                let stranded = self
                    .members
                    .iter()
                    .copied()
                    .find(|u| !self.in_tree[u.index()])
                    .expect("grow_once called on an unfinished group");
                self.failed = Some(RoutingError::NoFeasibleChannel {
                    a: self.members[0],
                    b: stranded,
                });
            }
        }
    }
}

/// Routes several disjoint entanglement groups over shared switch
/// capacity.
///
/// Every node in any group must be a [`crate::model::NodeKind::User`] of
/// `net`; groups must be pairwise disjoint and have ≥ 2 members.
///
/// # Panics
///
/// Panics when groups overlap, are empty/singleton, or contain
/// non-users.
///
/// # Example
///
/// ```
/// use muerp_core::prelude::*;
/// use muerp_core::extensions::{route_groups, GroupStrategy};
///
/// let net = NetworkSpec::paper_default().build(11);
/// let users = net.users();
/// let groups = [users[..5].to_vec(), users[5..].to_vec()];
/// let outcomes = route_groups(&net, &groups, GroupStrategy::Sequential);
/// assert_eq!(outcomes.len(), 2);
/// ```
pub fn route_groups(
    net: &QuantumNetwork,
    groups: &[Vec<NodeId>],
    strategy: GroupStrategy,
) -> Vec<GroupOutcome> {
    let mut seen = std::collections::HashSet::new();
    for g in groups {
        assert!(g.len() >= 2, "every group needs at least 2 members");
        for &u in g {
            assert!(net.is_user(u), "group member {u} is not a user");
            assert!(seen.insert(u), "groups must be disjoint, {u} repeats");
        }
    }

    let mut capacity = CapacityMap::new(net);
    let mut states: Vec<GroupState> = groups.iter().map(|g| GroupState::new(net, g)).collect();
    // Shared across groups: capacity only changes on reservations, so
    // interleaved (round-robin) growth still reuses runs within a round.
    let mut cache = ChannelFinderCache::new(net);

    match strategy {
        GroupStrategy::Sequential => {
            for st in &mut states {
                while !st.done() {
                    st.grow_once(&mut capacity, &mut cache);
                }
            }
        }
        GroupStrategy::RoundRobin => loop {
            let mut progressed = false;
            for st in &mut states {
                if !st.done() {
                    st.grow_once(&mut capacity, &mut cache);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        },
    }

    states
        .into_iter()
        .map(|st| GroupOutcome {
            members: st.members,
            tree: match st.failed {
                Some(e) => Err(e),
                None => Ok(st.tree),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetworkSpec, NodeKind, PhysicsParams, QuantumNetwork};

    fn split_groups(net: &QuantumNetwork) -> [Vec<NodeId>; 2] {
        let users = net.users();
        [users[..5].to_vec(), users[5..].to_vec()]
    }

    #[test]
    fn sequential_routes_both_groups_when_capacity_allows() {
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = 20;
        let net = spec.build(1);
        let groups = split_groups(&net);
        let out = route_groups(&net, &groups, GroupStrategy::Sequential);
        assert_eq!(out.len(), 2);
        for (i, o) in out.iter().enumerate() {
            let tree = o.tree.as_ref().unwrap_or_else(|e| panic!("group {i}: {e}"));
            assert_eq!(tree.channels.len(), o.members.len() - 1);
            assert!(o.rate().value() > 0.0);
        }
    }

    #[test]
    fn group_trees_span_their_members_only() {
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = 20;
        let net = spec.build(2);
        let groups = split_groups(&net);
        let out = route_groups(&net, &groups, GroupStrategy::Sequential);
        for (o, g) in out.iter().zip(&groups) {
            if let Ok(tree) = &o.tree {
                let members: std::collections::HashSet<_> = g.iter().copied().collect();
                for c in &tree.channels {
                    assert!(members.contains(&c.source()));
                    assert!(members.contains(&c.destination()));
                    // Foreign users never relay.
                    for &mid in c.interior_switches() {
                        assert!(net.kind(mid).is_switch());
                    }
                }
            }
        }
    }

    #[test]
    fn shared_capacity_is_never_exceeded() {
        let net = NetworkSpec::paper_default().build(3); // tight: Q = 4
        let groups = split_groups(&net);
        for strategy in [GroupStrategy::Sequential, GroupStrategy::RoundRobin] {
            let out = route_groups(&net, &groups, strategy);
            let mut demand = std::collections::HashMap::new();
            for o in &out {
                if let Ok(tree) = &o.tree {
                    for (s, d) in tree.qubit_demand() {
                        *demand.entry(s).or_insert(0u32) += d;
                    }
                }
            }
            for (s, d) in demand {
                assert!(
                    d <= net.kind(s).qubits(),
                    "{strategy:?}: switch {s} over capacity"
                );
            }
        }
    }

    #[test]
    fn sequential_favors_the_first_group() {
        // Under tight capacity the first group should do at least as well
        // as it would in any fair schedule; specifically its rate under
        // Sequential ≥ its rate under RoundRobin (statistically; assert
        // over several seeds to avoid flakiness).
        let mut first_seq_better = 0;
        let mut comparisons = 0;
        for seed in 0..8 {
            let net = NetworkSpec::paper_default().build(seed);
            let groups = split_groups(&net);
            let seq = route_groups(&net, &groups, GroupStrategy::Sequential);
            let rr = route_groups(&net, &groups, GroupStrategy::RoundRobin);
            comparisons += 1;
            if seq[0].rate() >= rr[0].rate() {
                first_seq_better += 1;
            }
        }
        assert!(
            first_seq_better * 2 >= comparisons,
            "sequential first-group advantage violated: {first_seq_better}/{comparisons}"
        );
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_rejected() {
        let net = NetworkSpec::paper_default().build(4);
        let users = net.users();
        let groups = [users[..5].to_vec(), users[4..].to_vec()];
        route_groups(&net, &groups, GroupStrategy::Sequential);
    }

    #[test]
    #[should_panic(expected = "not a user")]
    fn non_user_member_rejected() {
        let net = NetworkSpec::paper_default().build(5);
        let a_switch = net.switches().next().unwrap();
        let users = net.users();
        let groups = [vec![users[0], a_switch]];
        route_groups(&net, &groups, GroupStrategy::Sequential);
    }

    #[test]
    fn single_group_equals_prim() {
        use crate::algorithms::PrimBased;
        use crate::solver::RoutingAlgorithm;
        let net = NetworkSpec::paper_default().build(6);
        let groups = [net.users().to_vec()];
        let out = route_groups(&net, &groups, GroupStrategy::Sequential);
        let prim = PrimBased::default().solve(&net);
        match (&out[0].tree, prim) {
            (Ok(t), Ok(p)) => {
                assert!((t.rate().value() - p.rate.value()).abs() < 1e-12)
            }
            (Err(_), Err(_)) => {}
            other => panic!("disagreement: {other:?}"),
        }
    }

    #[test]
    fn failed_group_scores_zero() {
        // Two groups on a bottleneck: second group starves.
        use qnet_graph::Graph;
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a1 = g.add_node(NodeKind::User);
        let a2 = g.add_node(NodeKind::User);
        let b1 = g.add_node(NodeKind::User);
        let b2 = g.add_node(NodeKind::User);
        let hub = g.add_node(NodeKind::Switch { qubits: 2 });
        for &u in &[a1, a2, b1, b2] {
            g.add_edge(u, hub, 500.0);
        }
        let net = QuantumNetwork::from_graph(g, PhysicsParams::paper_default());
        let groups = [vec![a1, a2], vec![b1, b2]];
        let out = route_groups(&net, &groups, GroupStrategy::Sequential);
        assert!(out[0].tree.is_ok());
        assert!(out[1].tree.is_err());
        assert_eq!(out[1].rate(), Rate::ZERO);
    }
}
