//! The paper's two named extensions (§II-D, §VII): fidelity-aware
//! entanglement routing and concurrent routing of multiple independent
//! entanglement groups.

pub mod fidelity;
pub mod multi_group;
pub mod online;
pub mod purified;
pub mod stream;

pub use fidelity::{werner_swap_fidelity, FidelityAwarePrim, FidelityModel};
pub use multi_group::{route_groups, GroupOutcome, GroupStrategy};
pub use online::{simulate_online, OnlineConfig, OnlineStats};
pub use purified::{purification_plan, PurificationPlan, PurifiedPrim};
pub use stream::{
    route_group_cached, simulate_stream, Request, RequestStream, SloClass, StreamConfig,
    StreamOutcome, StreamStats,
};
