//! Purification-aware routing: meet a fidelity floor by *distilling*
//! instead of just forbidding long channels.
//!
//! [`super::fidelity::FidelityAwarePrim`] enforces a fidelity floor with
//! a hop bound — long channels are simply banned, and tight floors turn
//! instances infeasible. Entanglement purification (BBPSSW; the
//! mechanism behind the purification-based routing the paper cites as
//! ref. \[18\]) offers the alternative: deliver `2^k` low-fidelity pairs
//! over the same channel and distill them into one pair above the floor.
//!
//! Under the paper's synchronized-slot model, delivering `2^k` pairs in
//! one slot multiplies the channel's rate exponent by `2^k`, and each
//! distillation round succeeds only probabilistically — the *effective
//! rate* of a purified channel is
//!
//! ```text
//! r_eff = r^(2^k) · Π_{i<k} p_succ(F_i)^(2^(k-1-i))
//! ```
//!
//! where `F_i`, `p_succ` follow the BBPSSW recurrence. This module
//! computes that trade-off and routes with it: every candidate channel
//! is scored by its effective rate after the *cheapest sufficient*
//! number of purification rounds.

use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::error::RoutingError;
use crate::model::QuantumNetwork;
use crate::rate::Rate;
use crate::solver::{RoutingAlgorithm, Solution};
use crate::tree::EntanglementTree;

use super::fidelity::{werner_swap_fidelity, FidelityModel};
use crate::algorithms::ChannelFinderCache;

/// BBPSSW one-round statistics for two equal-fidelity Werner pairs
/// (mirrors `qnet_sim::fidelity::purify`; duplicated arithmetic keeps
/// the crates decoupled and is cross-checked in the integration tests).
fn purify_step(f: f64) -> (f64, f64) {
    let bad = (1.0 - f) / 3.0;
    let success = (f + bad) * (f + bad) + (2.0 * bad) * (2.0 * bad);
    ((f * f + bad * bad) / success, success)
}

/// The purification plan for one channel: rounds and the effective rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PurificationPlan {
    /// BBPSSW rounds (consuming `2^rounds` raw pairs).
    pub rounds: u32,
    /// Delivered fidelity after the rounds.
    pub delivered_fidelity: f64,
    /// Effective per-slot rate of one purified pair.
    pub effective_rate: Rate,
}

/// Computes the cheapest purification plan lifting a channel of
/// `links` links (raw rate `raw_rate`, uniform link fidelity from
/// `model`) to `model.min_fidelity`, or `None` when 16 rounds do not
/// suffice (or the raw fidelity is below the 1/2 distillation
/// threshold).
pub fn purification_plan(
    model: FidelityModel,
    links: usize,
    raw_rate: Rate,
) -> Option<PurificationPlan> {
    let mut f = model.link_fidelity;
    for _ in 1..links {
        f = werner_swap_fidelity(f, model.link_fidelity);
    }
    if f >= model.min_fidelity {
        return Some(PurificationPlan {
            rounds: 0,
            delivered_fidelity: f,
            effective_rate: raw_rate,
        });
    }
    if f <= 0.5 {
        return None;
    }
    let mut rounds = 0u32;
    let mut success_factor = Rate::ONE;
    while f < model.min_fidelity && rounds < 16 {
        let (f_next, p_succ) = purify_step(f);
        // Round i runs 2^(k-1-i) distillations in the final plan; we
        // account for it incrementally: the pair count doubles per round,
        // so previous success factors square.
        success_factor = success_factor * success_factor * Rate::from_prob(p_succ);
        f = f_next;
        rounds += 1;
    }
    if f < model.min_fidelity {
        return None;
    }
    // Raw pairs needed: 2^rounds, all in one synchronized slot.
    let effective_rate = raw_rate.powi(1u32 << rounds) * success_factor;
    Some(PurificationPlan {
        rounds,
        delivered_fidelity: f,
        effective_rate,
    })
}

/// Prim-style routing that scores channels by purified effective rate.
///
/// Capacity accounting stays per-channel (2 qubits per interior switch):
/// the `2^k` raw pairs are delivered sequentially through the same
/// reserved qubits in the synchronized-model idealization. The solution's
/// reported rate is the product of effective rates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PurifiedPrim {
    /// Fidelity model (link fidelity + floor).
    pub model: FidelityModel,
}

impl RoutingAlgorithm for PurifiedPrim {
    fn name(&self) -> &'static str {
        "Alg-4-Purify"
    }

    fn solve(&self, net: &QuantumNetwork) -> Result<Solution, RoutingError> {
        let users = net.users();
        if users.len() < 2 {
            return Err(RoutingError::TooFewUsers { got: users.len() });
        }
        let mut capacity = CapacityMap::new(net);
        let mut in_tree = vec![false; net.graph().node_count()];
        in_tree[users[0].index()] = true;
        let mut tree = EntanglementTree::new();
        let mut effective = Rate::ONE;
        let mut cache = ChannelFinderCache::new(net);

        for _ in 1..users.len() {
            let mut best: Option<(Channel, PurificationPlan)> = None;
            for &src in users.iter().filter(|u| in_tree[u.index()]) {
                let finder = cache.finder(&capacity, src);
                for &dst in users.iter().filter(|u| !in_tree[u.index()]) {
                    let Some(c) = finder.channel_to(dst) else {
                        continue;
                    };
                    let Some(plan) = purification_plan(self.model, c.link_count(), c.rate) else {
                        continue;
                    };
                    if best
                        .as_ref()
                        .is_none_or(|(_, b)| plan.effective_rate > b.effective_rate)
                    {
                        best = Some((c, plan));
                    }
                }
            }
            let Some((c, plan)) = best else {
                let stranded = users
                    .iter()
                    .copied()
                    .find(|u| !in_tree[u.index()])
                    .expect("some user remains");
                return Err(RoutingError::NoFeasibleChannel {
                    a: users[0],
                    b: stranded,
                });
            };
            capacity.reserve(&c);
            let newcomer = if in_tree[c.source().index()] {
                c.destination()
            } else {
                c.source()
            };
            in_tree[newcomer.index()] = true;
            effective *= plan.effective_rate;
            tree.push(c);
        }

        // Report the *effective* (purified) rate; the channel set itself
        // remains a structurally valid entanglement tree.
        Ok(Solution {
            channels: tree.channels,
            rate: effective,
            style: crate::solver::SolutionStyle::BsmTree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PrimBased;
    use crate::extensions::FidelityAwarePrim;
    use crate::model::NetworkSpec;

    fn model(floor: f64) -> FidelityModel {
        FidelityModel {
            link_fidelity: 0.97,
            min_fidelity: floor,
        }
    }

    #[test]
    fn no_rounds_needed_when_floor_is_loose() {
        let plan = purification_plan(model(0.9), 1, Rate::from_prob(0.5)).unwrap();
        assert_eq!(plan.rounds, 0);
        assert_eq!(plan.effective_rate, Rate::from_prob(0.5));
        assert!((plan.delivered_fidelity - 0.97).abs() < 1e-12);
    }

    #[test]
    fn rounds_lift_fidelity_at_exponential_rate_cost() {
        // 5 links at F_link = 0.97 fall below 0.93; purification fixes it.
        let raw = Rate::from_prob(0.4);
        let plan = purification_plan(model(0.93), 5, raw).expect("distillable");
        assert!(plan.rounds >= 1);
        assert!(plan.delivered_fidelity >= 0.93);
        // Effective rate collapses at least quadratically.
        assert!(plan.effective_rate.value() <= raw.value() * raw.value());
    }

    #[test]
    fn sub_threshold_fidelity_is_undistillable() {
        let hopeless = FidelityModel {
            link_fidelity: 0.55,
            min_fidelity: 0.95,
        };
        // Long chain pushes raw fidelity under 1/2.
        assert!(purification_plan(hopeless, 8, Rate::from_prob(0.3)).is_none());
    }

    #[test]
    fn purified_routing_succeeds_where_hop_bounds_fail() {
        // A floor so tight the hop bound is 1 link: FidelityAwarePrim
        // fails whenever some user pair has no direct fiber; PurifiedPrim
        // distills instead.
        let m = FidelityModel {
            link_fidelity: 0.97,
            min_fidelity: 0.969,
        };
        let mut solved_by_purify = 0;
        let mut solved_by_hops = 0;
        for seed in 0..6u64 {
            let net = NetworkSpec::paper_default().build(seed);
            if (FidelityAwarePrim { model: m }).solve(&net).is_ok() {
                solved_by_hops += 1;
            }
            if (PurifiedPrim { model: m }).solve(&net).is_ok() {
                solved_by_purify += 1;
            }
        }
        assert!(
            solved_by_purify > solved_by_hops,
            "purification must unlock instances: {solved_by_purify} vs {solved_by_hops}"
        );
    }

    #[test]
    fn effective_rate_never_exceeds_raw_routing() {
        for seed in 0..5u64 {
            let net = NetworkSpec::paper_default().build(seed);
            let raw = PrimBased::default().solve(&net);
            let purified = PurifiedPrim { model: model(0.95) }.solve(&net);
            if let (Ok(r), Ok(p)) = (raw, purified) {
                assert!(
                    p.rate.value() <= r.rate.value() * (1.0 + 1e-9),
                    "seed {seed}: purification cannot create rate"
                );
            }
        }
    }

    #[test]
    fn tree_structure_remains_valid() {
        // The channels themselves (ignoring the effective-rate relabel)
        // must form a capacity-respecting spanning tree.
        for seed in 0..5u64 {
            let net = NetworkSpec::paper_default().build(seed);
            if let Ok(sol) = (PurifiedPrim { model: model(0.93) }).solve(&net) {
                let tree = EntanglementTree {
                    channels: sol.channels,
                };
                tree.validate(&net).unwrap_or_else(|e| {
                    // Rate mismatch is expected (we report effective
                    // rate); any *structural* error is not.
                    panic!("seed {seed}: {e}");
                });
            }
        }
    }
}
